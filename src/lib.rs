pub use lp_experiments as experiments;
