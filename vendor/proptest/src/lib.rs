//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate re-implements the subset of proptest the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! ranges / tuples / [`Just`] / [`prop_oneof!`] / [`collection::vec`]
//! as strategies, [`any`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic by construction.** Cases are derived from a fixed
//!   per-test seed (FNV-1a of the test's module path and name), so a
//!   failure always reproduces. There is no persistence file.
//! * Default case count is 64 (real proptest: 256) to keep `cargo
//!   test` fast; `ProptestConfig::with_cases` overrides it per block.

#![warn(missing_docs)]

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies.
pub mod test_runner {
    /// A splitmix64 stream seeded from the test identity and case
    /// index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for case `case` of the test named `name`
        /// (use `module_path!()::name` for uniqueness).
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A value generator. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by [`prop_oneof!`] to unify arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy with erased concrete type.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The whole-domain strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// A weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec()`]: a range of lengths
    /// or an exact length (real proptest's `SizeRange`).
    pub trait IntoSizeRange {
        /// The `[lo, hi)` length interval.
        fn bounds(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> core::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> core::ops::Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    /// A `Vec` strategy with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let len = len.bounds();
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Builds a [`Union`] strategy from (optionally weighted) arms:
/// `prop_oneof![a, b]` or `prop_oneof![2 => a, 3 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

/// The proptest entry macro: wraps `fn name(inputs in strategies) {}`
/// items into deterministic multi-case `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        let s = (1u64..10, 0.0f64..1.0, 0usize..3);
        for _ in 0..1000 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!(c < 3);
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::test_runner::TestRng::for_case("w", 1);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 8_500 && hits < 9_500, "hits = {hits}");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::for_case("v", 2);
        let s = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_case() {
        let s = (0u64..1000, any::<bool>());
        let mut a = crate::test_runner::TestRng::for_case("d", 3);
        let mut b = crate::test_runner::TestRng::for_case("d", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple bindings, mut patterns, bodies
        /// with assertions.
        #[test]
        fn macro_smoke(mut xs in crate::collection::vec(0u64..100, 1..20), flip in any::<bool>()) {
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() >= 1);
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }
}
