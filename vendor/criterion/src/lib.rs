//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the benchmark-harness surface the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`] with
//! `bench_function` / `throughput` / `sample_size`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up,
//! then timed over enough iterations to cover a fixed measurement
//! window, and the mean ns/iter (plus derived throughput) is printed.
//! There is no statistical analysis, plotting, or baseline storage —
//! compare runs by diffing the printed table.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1_000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
            sample_override: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self.warmup, self.measurement, None, &mut f);
        println!("  {name:<40} {report}");
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by
    /// wall-clock budget, so the requested sample count only scales
    /// the measurement window down for very small values.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_override = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut measurement = self.criterion.measurement;
        if let Some(n) = self.sample_override {
            if n < 50 {
                measurement = measurement / 2;
            }
        }
        let report = run_bench(self.criterion.warmup, measurement, self.throughput, &mut f);
        println!("  {name:<40} {report}");
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`iter`](Self::iter) with the
/// code under test.
pub struct Bencher {
    mode: Mode,
    iters_done: u64,
    elapsed: Duration,
}

enum Mode {
    /// Run the routine a fixed number of times, accumulating time.
    Measure(u64),
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let Mode::Measure(n) = self.mode;
        let start = Instant::now();
        for _ in 0..n {
            let out = routine();
            std::hint::black_box(out);
        }
        self.elapsed += start.elapsed();
        self.iters_done += n;
    }
}

fn time_iters<F: FnMut(&mut Bencher)>(n: u64, f: &mut F) -> (u64, Duration) {
    let mut b = Bencher {
        mode: Mode::Measure(n),
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    assert!(
        b.iters_done > 0,
        "benchmark closure never called Bencher::iter"
    );
    (b.iters_done, b.elapsed)
}

fn run_bench<F: FnMut(&mut Bencher)>(
    warmup: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) -> String {
    // Warmup: double iterations until the warmup budget is spent, which
    // also calibrates how many iterations fill the measurement window.
    let mut n = 1u64;
    let mut spent = Duration::ZERO;
    let mut per_iter = Duration::from_nanos(1);
    while spent < warmup {
        let (iters, took) = time_iters(n, f);
        spent += took;
        per_iter = took.max(Duration::from_nanos(1)) / iters.max(1) as u32;
        if took > warmup {
            break;
        }
        n = n.saturating_mul(2);
    }
    let per_iter_ns = per_iter.as_nanos().max(1) as u64;
    let target = (measurement.as_nanos() as u64 / per_iter_ns).clamp(10, 10_000_000);
    let (iters, took) = time_iters(target, f);
    let ns = took.as_nanos() as f64 / iters as f64;
    let mut out = format!("{ns:>12.1} ns/iter ({iters} iters)");
    match throughput {
        Some(Throughput::Elements(e)) => {
            let eps = e as f64 / (ns / 1e9);
            out.push_str(&format!("  {:.2} Melem/s", eps / 1e6));
        }
        Some(Throughput::Bytes(by)) => {
            let bps = by as f64 / (ns / 1e9);
            out.push_str(&format!("  {:.2} MiB/s", bps / (1024.0 * 1024.0)));
        }
        None => {}
    }
    out
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    #[should_panic(expected = "never called")]
    fn empty_bench_panics() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
        };
        c.bench_function("bad", |_b| {});
    }
}
