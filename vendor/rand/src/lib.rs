//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through splitmix64, the
//!   same algorithm `rand 0.8` uses for `SmallRng` on 64-bit targets,
//!   so seeded streams are bit-compatible with the real crate;
//! * the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with
//!   `gen`, `gen_range`, `gen_bool`, and `fill_bytes`;
//! * uniform sampling over half-open and inclusive integer and float
//!   ranges.
//!
//! Everything is deterministic and allocation-free; no OS entropy
//! source exists here on purpose — the simulator derives every stream
//! from an experiment master seed.

#![warn(missing_docs)]

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via splitmix64, exactly like
    /// `rand 0.8`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a caller-supplied interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift: maps 64 random bits onto [0, span)
                // with bias below 2^-64 per unit of span.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample(rng);
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f32::sample(rng);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_below(rng, lo, hi + 1)
            }
        }
    )*};
}
impl_range_inclusive_uint!(u8, u16, u32, u64, usize);

/// High-level convenience methods, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++, as in `rand 0.8` on
    /// 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    const fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero is a fixed point of xoshiro; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u8 = r.gen_range(0..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gen_bool_rejects_bad_p() {
        let mut r = SmallRng::seed_from_u64(5);
        r.gen_bool(1.5);
    }
}
