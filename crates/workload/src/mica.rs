//! MICA key-value-store service-time model and the zlib best-effort job
//! (§V-C's colocation workloads).
//!
//! The paper runs MICA with a 5/95 SET/GET mix over a zipfian(0.99)
//! keyspace ("this yields a median request processing time of 1 us") as
//! the latency-critical job, colocated with zlib compressing 25 kB
//! chunks ("median latency is 100 us") as the best-effort job. Request
//! mix at the generator: 98% LC / 2% BE.

use lp_sim::SimDur;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::zipf::Zipf;
use lp_hw::jitter::standard_normal;

/// MICA request kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicaOp {
    /// Read.
    Get,
    /// Write.
    Set,
}

/// One sampled MICA request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicaRequest {
    /// Operation type.
    pub op: MicaOp,
    /// Key rank (0 = hottest).
    pub key: u64,
    /// Service time on the worker.
    pub service: SimDur,
}

/// Service-time model for MICA under skewed access.
///
/// Mechanism: hot keys hit the cache hierarchy near its top and take the
/// base cost; colder keys miss deeper (hash-bucket chain walks + memory
/// stalls). SETs pay a small constant extra over GETs. Calibrated so the
/// median lands at ~1 us per §V-C.
#[derive(Debug, Clone)]
pub struct MicaModel {
    zipf: Zipf,
    get_frac: f64,
    /// Cost of a hot (cache-resident) GET.
    hot_cost: SimDur,
    /// Additional cost of a cold miss.
    miss_cost: SimDur,
    /// Keys with rank below this fraction of the keyspace count as hot.
    hot_frac: f64,
    /// SET surcharge over GET.
    set_extra: SimDur,
    /// Multiplicative noise sigma.
    sigma: f64,
}

impl MicaModel {
    /// The paper's configuration: zipfian 0.99 skew, 5/95 SET/GET,
    /// ~1 us median.
    pub fn paper_config(keys: u64) -> Self {
        MicaModel {
            zipf: Zipf::new(keys, 0.99),
            get_frac: 0.95,
            hot_cost: SimDur::nanos(900),
            miss_cost: SimDur::nanos(1_400),
            hot_frac: 0.01,
            set_extra: SimDur::nanos(250),
            sigma: 0.12,
        }
    }

    /// Draws one request.
    pub fn sample(&self, rng: &mut SmallRng) -> MicaRequest {
        let op = if rng.gen_bool(self.get_frac) {
            MicaOp::Get
        } else {
            MicaOp::Set
        };
        let key = self.zipf.sample(rng);
        let hot_cut = (self.zipf.n() as f64 * self.hot_frac).max(1.0) as u64;
        let mut base = self.hot_cost;
        if key >= hot_cut {
            base += self.miss_cost;
        }
        if op == MicaOp::Set {
            base += self.set_extra;
        }
        let service = lp_hw::jitter::sample(rng, base, self.sigma);
        MicaRequest { op, key, service }
    }
}

/// The zlib best-effort compression job: lognormal around a 100 us
/// median (25 kB chunks; compression time varies with entropy).
#[derive(Debug, Clone)]
pub struct ZlibModel {
    median: SimDur,
    sigma: f64,
}

impl Default for ZlibModel {
    fn default() -> Self {
        Self::paper_config()
    }
}

impl ZlibModel {
    /// §V-C's configuration: 25 kB chunks, 100 us median.
    pub fn paper_config() -> Self {
        ZlibModel {
            median: SimDur::micros(100),
            sigma: 0.25,
        }
    }

    /// Draws one chunk-compression service time.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDur {
        let z = standard_normal(rng);
        self.median.mul_f64((self.sigma * z).exp())
    }
}

/// Class of a colocated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-critical (MICA).
    LatencyCritical,
    /// Best-effort (zlib).
    BestEffort,
}

/// Mixed LC/BE request source for the colocation experiments.
#[derive(Debug, Clone)]
pub struct ColocatedWorkload {
    mica: MicaModel,
    zlib: ZlibModel,
    /// Fraction of requests that are LC (paper: 0.98).
    lc_frac: f64,
}

impl ColocatedWorkload {
    /// §V-C's generator: 98% MICA / 2% zlib.
    pub fn paper_config() -> Self {
        ColocatedWorkload {
            mica: MicaModel::paper_config(1_000_000),
            zlib: ZlibModel::paper_config(),
            lc_frac: 0.98,
        }
    }

    /// Draws `(class, service_time)` for the next request.
    pub fn sample(&self, rng: &mut SmallRng) -> (JobClass, SimDur) {
        if rng.gen_bool(self.lc_frac) {
            (JobClass::LatencyCritical, self.mica.sample(rng).service)
        } else {
            (JobClass::BestEffort, self.zlib.sample(rng))
        }
    }

    /// Mean service time of the mixture (for load calculations).
    pub fn mean_service(&self) -> SimDur {
        // Estimate analytically: MICA mean ~ hot/miss mix; zlib mean =
        // median * exp(sigma^2/2).
        let zlib_mean = self.zlib.median.mul_f64((self.zlib.sigma * self.zlib.sigma / 2.0).exp());
        // MICA: approximate with hot mass at hot cost.
        let mica_mean = SimDur::nanos(1_600); // see tests for empirical check
        SimDur::from_micros_f64(
            mica_mean.as_micros_f64() * self.lc_frac
                + zlib_mean.as_micros_f64() * (1.0 - self.lc_frac),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn mica_median_near_1us() {
        let m = MicaModel::paper_config(1_000_000);
        let mut r = rng(1, 5);
        let mut xs: Vec<f64> = (0..50_000)
            .map(|_| m.sample(&mut r).service.as_micros_f64())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((0.7..1.4).contains(&median), "median = {median} us");
    }

    #[test]
    fn mica_mix_is_95_5() {
        let m = MicaModel::paper_config(10_000);
        let mut r = rng(2, 5);
        let n = 50_000;
        let sets = (0..n)
            .filter(|_| m.sample(&mut r).op == MicaOp::Set)
            .count();
        let frac = sets as f64 / n as f64;
        assert!((0.04..0.06).contains(&frac), "SET fraction = {frac}");
    }

    #[test]
    fn mica_hot_keys_are_faster() {
        let m = MicaModel::paper_config(1_000_000);
        let mut r = rng(3, 5);
        let (mut hot_tot, mut hot_n, mut cold_tot, mut cold_n) = (0.0, 0, 0.0, 0);
        for _ in 0..100_000 {
            let q = m.sample(&mut r);
            if q.key < 10_000 {
                hot_tot += q.service.as_micros_f64();
                hot_n += 1;
            } else {
                cold_tot += q.service.as_micros_f64();
                cold_n += 1;
            }
        }
        assert!(hot_n > 0 && cold_n > 0);
        assert!(hot_tot / hot_n as f64 + 0.5 < cold_tot / cold_n as f64);
    }

    #[test]
    fn zlib_median_near_100us() {
        let z = ZlibModel::paper_config();
        let mut r = rng(4, 5);
        let mut xs: Vec<f64> = (0..20_000).map(|_| z.sample(&mut r).as_micros_f64()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((90.0..110.0).contains(&median), "median = {median} us");
    }

    #[test]
    fn colocated_mix_is_98_2() {
        let w = ColocatedWorkload::paper_config();
        let mut r = rng(5, 5);
        let n = 50_000;
        let be = (0..n)
            .filter(|_| w.sample(&mut r).0 == JobClass::BestEffort)
            .count();
        let frac = be as f64 / n as f64;
        assert!((0.015..0.025).contains(&frac), "BE fraction = {frac}");
    }

    #[test]
    fn colocated_mean_service_close_to_empirical() {
        let w = ColocatedWorkload::paper_config();
        let mut r = rng(6, 5);
        let n = 200_000;
        let emp = (0..n).map(|_| w.sample(&mut r).1.as_micros_f64()).sum::<f64>() / n as f64;
        let th = w.mean_service().as_micros_f64();
        assert!(
            (emp - th).abs() / th < 0.15,
            "empirical {emp} vs modeled {th}"
        );
    }
}
