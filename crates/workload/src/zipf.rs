//! Zipfian key-popularity generator.
//!
//! The MICA experiment runs "the default zipfian generator from the
//! original MICA work" with skew 0.99. This is the standard YCSB/Gray et
//! al. rejection-free construction with precomputed zeta.

use rand::rngs::SmallRng;
use rand::Rng;

/// Zipfian distribution over `0..n` ranks (rank 0 most popular).
///
/// ```
/// use lp_workload::Zipf;
/// let z = Zipf::new(1_000, 0.99);
/// let mut r = lp_sim::rng::rng(1, 5);
/// let k = z.sample(&mut r);
/// assert!(k < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a generator over `n` items with skew `theta` (0 =
    /// uniform-ish, 0.99 = YCSB default, must be in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; Euler–Maclaurin tail approximation keeps
        // construction O(1)-ish for big keyspaces.
        const EXACT_LIMIT: u64 = 100_000;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral_{EXACT_LIMIT}^{n} x^-theta dx
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of rank `k`.
    pub fn prob(&self, k: u64) -> f64 {
        assert!(k < self.n);
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Probability mass of the two hottest keys (used by cache-hit
    /// modeling).
    pub fn hot_mass(&self) -> f64 {
        (1.0 + self.zeta2 - 1.0) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut r = rng(1, 5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 100);
        }
    }

    #[test]
    fn empirical_matches_theory_for_hot_keys() {
        let z = Zipf::new(10_000, 0.99);
        let mut r = rng(2, 5);
        let n = 200_000;
        let mut counts = vec![0u64; 10_000];
        for _ in 0..n {
            counts[z.sample(&mut r) as usize] += 1;
        }
        for k in 0..5u64 {
            let emp = counts[k as usize] as f64 / n as f64;
            let th = z.prob(k);
            let rel = (emp - th).abs() / th;
            // The YCSB construction is exact for the two hottest ranks
            // and a continuous approximation beyond, so allow more
            // slack there.
            let tol = if k < 2 { 0.1 } else { 0.3 };
            assert!(rel < tol, "rank {k}: emp {emp}, theory {th}");
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let mut r = rng(3, 5);
        let heavy = Zipf::new(1_000, 0.99);
        let light = Zipf::new(1_000, 0.2);
        let top10 = |z: &Zipf, r: &mut rand::rngs::SmallRng| {
            let n = 50_000;
            (0..n).filter(|_| z.sample(r) < 10).count() as f64 / n as f64
        };
        let h = top10(&heavy, &mut r);
        let l = top10(&light, &mut r);
        assert!(h > 2.0 * l, "heavy {h} vs light {l}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(500, 0.9);
        let total: f64 = (0..500).map(|k| z.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_keyspace_construction() {
        // Exercises the Euler–Maclaurin tail.
        let z = Zipf::new(10_000_000, 0.99);
        let mut r = rng(4, 5);
        let s = z.sample(&mut r);
        assert!(s < 10_000_000);
        // prob(0) of 10M keys at 0.99 skew is around 6%.
        assert!((0.03..0.12).contains(&z.prob(0)), "p0 = {}", z.prob(0));
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_theta_one() {
        Zipf::new(10, 1.0);
    }
}
