//! Arrival processes and time-varying schedules.
//!
//! The synthetic experiments use Poisson ("poison" in the paper text)
//! arrivals at a configured rate; the colocation experiments of Fig. 14
//! add a *bursty* open-loop generator whose QPS jumps between a base and
//! spike level ("our workload QPS changes from 40 to 110 kRPS").

use lp_sim::{SimDur, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// A (possibly time-varying) arrival-rate schedule in requests/second.
#[derive(Debug, Clone, PartialEq)]
pub enum RateSchedule {
    /// Constant rate.
    Constant(f64),
    /// Alternates `base_rps` for `base_for`, then `spike_rps` for
    /// `spike_for`, repeating — Fig. 14's bursty load.
    Square {
        /// Baseline rate.
        base_rps: f64,
        /// Duration at baseline per cycle.
        base_for: SimDur,
        /// Spike rate.
        spike_rps: f64,
        /// Duration at spike per cycle.
        spike_for: SimDur,
    },
    /// Piecewise-constant phases, each `(duration, rps)`; the last phase
    /// extends forever.
    Phases(Vec<(SimDur, f64)>),
}

impl RateSchedule {
    /// The rate at instant `t`.
    ///
    /// # Panics
    ///
    /// Panics if a `Phases` schedule is empty.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            RateSchedule::Constant(r) => *r,
            RateSchedule::Square {
                base_rps,
                base_for,
                spike_rps,
                spike_for,
            } => {
                let cycle = *base_for + *spike_for;
                let into = SimDur::nanos(t.as_nanos()) % cycle;
                if into < *base_for {
                    *base_rps
                } else {
                    *spike_rps
                }
            }
            RateSchedule::Phases(phases) => {
                assert!(!phases.is_empty(), "empty phase schedule");
                let mut elapsed = SimDur::ZERO;
                for (dur, rps) in phases {
                    elapsed += *dur;
                    if SimDur::nanos(t.as_nanos()) < elapsed {
                        return *rps;
                    }
                }
                phases.last().expect("non-empty").1
            }
        }
    }

    /// The maximum rate the schedule ever produces.
    pub fn peak_rate(&self) -> f64 {
        match self {
            RateSchedule::Constant(r) => *r,
            RateSchedule::Square {
                base_rps, spike_rps, ..
            } => base_rps.max(*spike_rps),
            RateSchedule::Phases(phases) => {
                phases.iter().map(|(_, r)| *r).fold(0.0, f64::max)
            }
        }
    }
}

/// Open-loop Poisson arrival generator driven by a [`RateSchedule`].
///
/// ```
/// use lp_workload::{ArrivalGen, RateSchedule};
/// use lp_sim::SimTime;
/// let mut gen = ArrivalGen::new(RateSchedule::Constant(1_000_000.0), lp_sim::rng::rng(1, 1));
/// let t1 = gen.next_arrival(SimTime::ZERO);
/// let t2 = gen.next_arrival(t1);
/// assert!(t2 > t1);
/// ```
#[derive(Debug)]
pub struct ArrivalGen {
    schedule: RateSchedule,
    rng: SmallRng,
}

impl ArrivalGen {
    /// Creates a generator with its own RNG substream.
    pub fn new(schedule: RateSchedule, rng: SmallRng) -> Self {
        ArrivalGen { schedule, rng }
    }

    /// The schedule driving this generator.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// Draws the next arrival instant strictly after `now`
    /// (exponential inter-arrival at the instantaneous rate; rates are
    /// re-sampled per arrival, which is accurate for schedules that
    /// change slowly relative to the inter-arrival gap).
    pub fn next_arrival(&mut self, now: SimTime) -> SimTime {
        let rate = self.schedule.rate_at(now);
        assert!(rate > 0.0, "arrival rate must be positive at {now}");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_s = -u.ln() / rate;
        let gap = SimDur::from_secs_f64(gap_s).max(SimDur::nanos(1));
        now + gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn constant_rate_matches_empirically() {
        let mut g = ArrivalGen::new(RateSchedule::Constant(100_000.0), rng(1, 1));
        let mut t = SimTime::ZERO;
        let n = 50_000;
        for _ in 0..n {
            t = g.next_arrival(t);
        }
        let measured = n as f64 / t.as_secs_f64();
        assert!(
            (measured - 100_000.0).abs() / 100_000.0 < 0.02,
            "measured rate {measured}"
        );
    }

    #[test]
    fn square_schedule_switches() {
        let s = RateSchedule::Square {
            base_rps: 40_000.0,
            base_for: SimDur::secs(8),
            spike_rps: 110_000.0,
            spike_for: SimDur::secs(2),
        };
        assert_eq!(s.rate_at(SimTime::from_nanos(0)), 40_000.0);
        assert_eq!(s.rate_at(SimTime::ZERO + SimDur::secs(9)), 110_000.0);
        // Periodicity.
        assert_eq!(s.rate_at(SimTime::ZERO + SimDur::secs(10)), 40_000.0);
        assert_eq!(s.rate_at(SimTime::ZERO + SimDur::secs(19)), 110_000.0);
        assert_eq!(s.peak_rate(), 110_000.0);
    }

    #[test]
    fn phased_schedule() {
        let s = RateSchedule::Phases(vec![
            (SimDur::secs(1), 10.0),
            (SimDur::secs(1), 20.0),
        ]);
        assert_eq!(s.rate_at(SimTime::ZERO), 10.0);
        assert_eq!(s.rate_at(SimTime::ZERO + SimDur::millis(1_500)), 20.0);
        // Past the end: last phase persists.
        assert_eq!(s.rate_at(SimTime::ZERO + SimDur::secs(100)), 20.0);
        assert_eq!(s.peak_rate(), 20.0);
    }

    #[test]
    fn bursty_generator_produces_more_arrivals_in_spike() {
        let s = RateSchedule::Square {
            base_rps: 10_000.0,
            base_for: SimDur::secs(1),
            spike_rps: 100_000.0,
            spike_for: SimDur::secs(1),
        };
        let mut g = ArrivalGen::new(s, rng(2, 1));
        let mut t = SimTime::ZERO;
        let (mut base_n, mut spike_n) = (0u64, 0u64);
        while t < SimTime::ZERO + SimDur::secs(2) {
            t = g.next_arrival(t);
            if t < SimTime::ZERO + SimDur::secs(1) {
                base_n += 1;
            } else if t < SimTime::ZERO + SimDur::secs(2) {
                spike_n += 1;
            }
        }
        assert!(
            spike_n > 7 * base_n,
            "spike {spike_n} vs base {base_n}"
        );
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut g = ArrivalGen::new(RateSchedule::Constant(10_000_000.0), rng(3, 1));
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            let next = g.next_arrival(t);
            assert!(next > t);
            t = next;
        }
    }
}
