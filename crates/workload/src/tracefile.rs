//! Empirical (trace-driven) service distributions.
//!
//! Production service times rarely match a textbook law; operators
//! have histograms. [`EmpiricalDist`] resamples from recorded service
//! times (bootstrap), so any measured workload can drive the runtime
//! and the experiments — the escape hatch the paper's "past request
//! information in a generic form" abstraction implies.

use lp_sim::SimDur;
use rand::rngs::SmallRng;
use rand::Rng;

/// A service-time distribution resampled from recorded observations.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDist {
    samples_ns: Vec<u64>,
    mean_ns: f64,
}

impl EmpiricalDist {
    /// Builds a distribution from recorded service times.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a zero (a request must
    /// represent work).
    pub fn new(samples: Vec<SimDur>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        let samples_ns: Vec<u64> = samples.iter().map(|d| d.as_nanos()).collect();
        assert!(
            samples_ns.iter().all(|&s| s > 0),
            "zero-length service time in trace"
        );
        let mean_ns = samples_ns.iter().map(|&s| s as f64).sum::<f64>() / samples_ns.len() as f64;
        EmpiricalDist { samples_ns, mean_ns }
    }

    /// Parses one service time per line (fractional microseconds),
    /// skipping blanks and `#` comments — the format of a typical
    /// exported latency column.
    ///
    /// # Errors
    ///
    /// Returns the offending line on parse failure.
    pub fn from_us_lines(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let us: f64 = line
                .parse()
                .map_err(|_| format!("bad service-time line: {line:?}"))?;
            if !(us > 0.0) {
                return Err(format!("non-positive service time: {line:?}"));
            }
            samples.push(SimDur::from_micros_f64(us).max(SimDur::nanos(1)));
        }
        if samples.is_empty() {
            return Err("trace contained no samples".to_string());
        }
        Ok(Self::new(samples))
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// `true` is impossible by construction, provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Bootstrap-resamples one service time.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDur {
        let i = rng.gen_range(0..self.samples_ns.len());
        SimDur::nanos(self.samples_ns[i])
    }

    /// The trace's mean service time.
    pub fn mean(&self) -> SimDur {
        SimDur::nanos(self.mean_ns.round() as u64)
    }

    /// Squared coefficient of variation of the trace.
    pub fn scv(&self) -> f64 {
        if self.samples_ns.len() < 2 || self.mean_ns == 0.0 {
            return 0.0;
        }
        let var = self
            .samples_ns
            .iter()
            .map(|&s| {
                let d = s as f64 - self.mean_ns;
                d * d
            })
            .sum::<f64>()
            / self.samples_ns.len() as f64;
        var / (self.mean_ns * self.mean_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn resamples_only_observed_values() {
        let d = EmpiricalDist::new(vec![
            SimDur::micros(1),
            SimDur::micros(10),
            SimDur::micros(100),
        ]);
        let mut r = rng(1, 0);
        for _ in 0..1_000 {
            let s = d.sample(&mut r).as_micros_f64();
            assert!(s == 1.0 || s == 10.0 || s == 100.0, "unexpected {s}");
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.mean(), SimDur::micros(37));
    }

    #[test]
    fn bootstrap_mean_converges() {
        let d = EmpiricalDist::new(vec![SimDur::micros(2), SimDur::micros(8)]);
        let mut r = rng(2, 0);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut r).as_micros_f64()).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn parses_lines() {
        let d = EmpiricalDist::from_us_lines("# header\n1.5\n\n0.5\n500\n").unwrap();
        assert_eq!(d.len(), 3);
        assert!(d.scv() > 1.0, "trace with a 500us outlier is dispersive");
    }

    #[test]
    fn rejects_garbage() {
        assert!(EmpiricalDist::from_us_lines("abc").is_err());
        assert!(EmpiricalDist::from_us_lines("-1.0").is_err());
        assert!(EmpiricalDist::from_us_lines("# only comments\n").is_err());
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_panics() {
        EmpiricalDist::new(vec![]);
    }
}
