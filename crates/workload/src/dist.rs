//! Request service-time distributions.
//!
//! §V-A of the paper evaluates on synthetic service-time distributions
//! "selected to match workloads found in object stores and databases":
//!
//! * **A1** — bimodal, 99.5% × 0.5 us + 0.5% × 500 us (heavy tail)
//! * **A2** — bimodal, 99.5% × 5 us + 0.5% × 500 us (heavy tail)
//! * **B**  — exponential, mean 5 us (light tail)
//! * **C**  — dynamic: first half A1, second half B (see
//!   [`PhasedService`](crate::PhasedService))
//!
//! plus the extra shapes used to rank dispersion in Fig. 1 (right).

use lp_sim::SimDur;
use rand::rngs::SmallRng;
use rand::Rng;

use lp_hw::jitter::standard_normal;

/// A service-time distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDist {
    /// Every request takes exactly this long.
    Constant(SimDur),
    /// Exponential with the given mean.
    Exponential {
        /// Mean service time.
        mean: SimDur,
    },
    /// Two-point mixture: with probability `p_long` the request takes
    /// `long`, otherwise `short`.
    Bimodal {
        /// Probability of the long mode, in `[0, 1]`.
        p_long: f64,
        /// Short-mode service time.
        short: SimDur,
        /// Long-mode service time.
        long: SimDur,
    },
    /// Lognormal parameterized by its median and shape sigma.
    Lognormal {
        /// Median service time.
        median: SimDur,
        /// Shape parameter (sigma of the underlying normal).
        sigma: f64,
    },
    /// Pareto with minimum `scale` and tail index `alpha`, truncated at
    /// `cap` to keep simulations finite.
    Pareto {
        /// Minimum value.
        scale: SimDur,
        /// Tail index; smaller is heavier.
        alpha: f64,
        /// Upper truncation.
        cap: SimDur,
    },
}

impl ServiceDist {
    /// Workload A1: bimodal 99.5% 0.5 us / 0.5% 500 us.
    pub fn workload_a1() -> Self {
        ServiceDist::Bimodal {
            p_long: 0.005,
            short: SimDur::nanos(500),
            long: SimDur::micros(500),
        }
    }

    /// Workload A2: bimodal 99.5% 5 us / 0.5% 500 us.
    pub fn workload_a2() -> Self {
        ServiceDist::Bimodal {
            p_long: 0.005,
            short: SimDur::micros(5),
            long: SimDur::micros(500),
        }
    }

    /// Workload B: exponential with mean 5 us.
    pub fn workload_b() -> Self {
        ServiceDist::Exponential {
            mean: SimDur::micros(5),
        }
    }

    /// Draws one service time. Never returns zero: samples quantize to
    /// at least 1 ns so a request always represents real work.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDur {
        self.sample_raw(rng).max(SimDur::nanos(1))
    }

    fn sample_raw(&self, rng: &mut SmallRng) -> SimDur {
        match *self {
            ServiceDist::Constant(d) => d,
            ServiceDist::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                mean.mul_f64(-u.ln())
            }
            ServiceDist::Bimodal { p_long, short, long } => {
                if rng.gen_bool(p_long) {
                    long
                } else {
                    short
                }
            }
            ServiceDist::Lognormal { median, sigma } => {
                let z = standard_normal(rng);
                median.mul_f64((sigma * z).exp())
            }
            ServiceDist::Pareto { scale, alpha, cap } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale.mul_f64(u.powf(-1.0 / alpha)).min(cap)
            }
        }
    }

    /// The distribution's theoretical mean (Pareto: of the *untruncated*
    /// law, used only for load computation where truncation is
    /// negligible).
    pub fn mean(&self) -> SimDur {
        match *self {
            ServiceDist::Constant(d) => d,
            ServiceDist::Exponential { mean } => mean,
            ServiceDist::Bimodal { p_long, short, long } => {
                SimDur::from_micros_f64(
                    short.as_micros_f64() * (1.0 - p_long) + long.as_micros_f64() * p_long,
                )
            }
            ServiceDist::Lognormal { median, sigma } => {
                median.mul_f64((sigma * sigma / 2.0).exp())
            }
            ServiceDist::Pareto { scale, alpha, cap } => {
                if alpha <= 1.0 {
                    cap // untruncated mean diverges; cap bounds it
                } else {
                    scale.mul_f64(alpha / (alpha - 1.0))
                }
            }
        }
    }

    /// Squared coefficient of variation — the dispersion measure of
    /// Fig. 1 (right). Exponential = 1, constant = 0, the bimodal
    /// workloads ≫ 1.
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDist::Constant(_) => 0.0,
            ServiceDist::Exponential { .. } => 1.0,
            ServiceDist::Bimodal { p_long, short, long } => {
                let s = short.as_micros_f64();
                let l = long.as_micros_f64();
                let m = s * (1.0 - p_long) + l * p_long;
                let m2 = s * s * (1.0 - p_long) + l * l * p_long;
                (m2 - m * m) / (m * m)
            }
            ServiceDist::Lognormal { sigma, .. } => (sigma * sigma).exp() - 1.0,
            ServiceDist::Pareto { alpha, .. } => {
                if alpha <= 2.0 {
                    f64::INFINITY
                } else {
                    alpha / ((alpha - 2.0) * (alpha - 1.0) * (alpha - 1.0))
                }
            }
        }
    }

    /// Offered load fraction at `rate_rps` requests/second across
    /// `workers` cores: lambda x mean-service / n.
    pub fn utilization(&self, rate_rps: f64, workers: usize) -> f64 {
        rate_rps * self.mean().as_secs_f64() / workers as f64
    }

    /// The arrival rate that produces utilization `rho` on `workers`
    /// cores.
    pub fn rate_for_utilization(&self, rho: f64, workers: usize) -> f64 {
        rho * workers as f64 / self.mean().as_secs_f64()
    }
}

impl std::fmt::Display for ServiceDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceDist::Constant(d) => write!(f, "constant({d})"),
            ServiceDist::Exponential { mean } => write!(f, "exp(mean={mean})"),
            ServiceDist::Bimodal { p_long, short, long } =>

                write!(f, "bimodal({:.1}%x{long}, rest {short})", p_long * 100.0),
            ServiceDist::Lognormal { median, sigma } => {
                write!(f, "lognormal(median={median}, sigma={sigma})")
            }
            ServiceDist::Pareto { scale, alpha, cap } => {
                write!(f, "pareto(scale={scale}, alpha={alpha}, cap={cap})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    fn empirical_mean(d: &ServiceDist, n: usize, seed: u64) -> f64 {
        let mut r = rng(seed, 0);
        (0..n).map(|_| d.sample(&mut r).as_micros_f64()).sum::<f64>() / n as f64
    }

    #[test]
    fn paper_workload_parameters() {
        let a1 = ServiceDist::workload_a1();
        // mean = 0.995*0.5 + 0.005*500 = 2.9975 us (ns rounding applies)
        assert!((a1.mean().as_micros_f64() - 2.9975).abs() < 1e-3);
        let b = ServiceDist::workload_b();
        assert_eq!(b.mean(), SimDur::micros(5));
        // A-workloads are far more dispersive than B.
        assert!(a1.scv() > 30.0 * b.scv());
    }

    #[test]
    fn sample_means_match_theory() {
        for (d, seed) in [
            (ServiceDist::workload_a1(), 1),
            (ServiceDist::workload_a2(), 2),
            (ServiceDist::workload_b(), 3),
            (
                ServiceDist::Lognormal {
                    median: SimDur::micros(10),
                    sigma: 1.0,
                },
                4,
            ),
        ] {
            let th = d.mean().as_micros_f64();
            let emp = empirical_mean(&d, 200_000, seed);
            let rel = (emp - th).abs() / th;
            assert!(rel < 0.05, "{d}: empirical {emp} vs theory {th}");
        }
    }

    #[test]
    fn constant_is_constant() {
        let d = ServiceDist::Constant(SimDur::micros(7));
        let mut r = rng(9, 0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), SimDur::micros(7));
        }
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn pareto_truncation_respected() {
        let d = ServiceDist::Pareto {
            scale: SimDur::micros(1),
            alpha: 1.1,
            cap: SimDur::millis(10),
        };
        let mut r = rng(10, 0);
        for _ in 0..50_000 {
            let s = d.sample(&mut r);
            assert!(s >= SimDur::micros(1) && s <= SimDur::millis(10));
        }
        assert_eq!(d.scv(), f64::INFINITY);
    }

    #[test]
    fn utilization_roundtrip() {
        let d = ServiceDist::workload_b(); // 5 us mean
        let rate = d.rate_for_utilization(0.8, 4);
        // 0.8 * 4 / 5us = 640k rps
        assert!((rate - 640_000.0).abs() < 1.0);
        assert!((d.utilization(rate, 4) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        assert!(ServiceDist::workload_a1().to_string().contains("bimodal"));
        assert!(ServiceDist::workload_b().to_string().contains("exp"));
    }
}
