//! Time-phased service distributions (workload C).
//!
//! Workload C is "a workload with first half as heavy tailed (A1) and
//! second half as lighter tailed (B), representing a distribution shift
//! in client request patterns". [`PhasedService`] switches the sampled
//! distribution by simulated time.

use lp_sim::{SimDur, SimTime};
use rand::rngs::SmallRng;

use crate::dist::ServiceDist;

/// A piecewise-in-time service distribution; the last phase extends
/// forever.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedService {
    phases: Vec<(SimDur, ServiceDist)>,
}

impl PhasedService {
    /// Builds a phased distribution.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<(SimDur, ServiceDist)>) -> Self {
        assert!(!phases.is_empty(), "phased service needs at least one phase");
        PhasedService { phases }
    }

    /// A single-phase (static) distribution.
    pub fn constant(dist: ServiceDist) -> Self {
        Self::new(vec![(SimDur::MAX, dist)])
    }

    /// Workload C over a total experiment length: A1 for the first half,
    /// B for the second.
    pub fn workload_c(total: SimDur) -> Self {
        Self::new(vec![
            (total / 2, ServiceDist::workload_a1()),
            (SimDur::MAX, ServiceDist::workload_b()),
        ])
    }

    /// The distribution active at `t`.
    pub fn dist_at(&self, t: SimTime) -> &ServiceDist {
        let mut elapsed = SimDur::ZERO;
        for (dur, dist) in &self.phases {
            elapsed = elapsed.saturating_add(*dur);
            if SimDur::nanos(t.as_nanos()) < elapsed {
                return dist;
            }
        }
        &self.phases.last().expect("non-empty").1
    }

    /// Samples a service time for a request arriving at `t`.
    pub fn sample(&self, t: SimTime, rng: &mut SmallRng) -> SimDur {
        self.dist_at(t).sample(rng)
    }

    /// The maximum phase mean — useful for sizing a load sweep so no
    /// phase saturates unintentionally.
    pub fn max_mean(&self) -> SimDur {
        self.phases
            .iter()
            .map(|(_, d)| d.mean())
            .max()
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    #[test]
    fn workload_c_switches_halfway() {
        let c = PhasedService::workload_c(SimDur::secs(10));
        let early = c.dist_at(SimTime::ZERO + SimDur::secs(2));
        let late = c.dist_at(SimTime::ZERO + SimDur::secs(7));
        assert_eq!(early, &ServiceDist::workload_a1());
        assert_eq!(late, &ServiceDist::workload_b());
        // Far past the end: still B.
        assert_eq!(
            c.dist_at(SimTime::ZERO + SimDur::secs(1_000)),
            &ServiceDist::workload_b()
        );
    }

    #[test]
    fn constant_never_switches() {
        let p = PhasedService::constant(ServiceDist::workload_b());
        assert_eq!(
            p.dist_at(SimTime::ZERO + SimDur::secs(10_000)),
            &ServiceDist::workload_b()
        );
    }

    #[test]
    fn sample_uses_active_phase() {
        // Phase 1 is constant 1 us, phase 2 constant 9 us: samples are
        // exactly distinguishable.
        let p = PhasedService::new(vec![
            (SimDur::secs(1), ServiceDist::Constant(SimDur::micros(1))),
            (SimDur::MAX, ServiceDist::Constant(SimDur::micros(9))),
        ]);
        let mut r = rng(1, 2);
        assert_eq!(p.sample(SimTime::ZERO, &mut r), SimDur::micros(1));
        assert_eq!(
            p.sample(SimTime::ZERO + SimDur::secs(2), &mut r),
            SimDur::micros(9)
        );
    }

    #[test]
    fn max_mean() {
        let c = PhasedService::workload_c(SimDur::secs(4));
        assert_eq!(c.max_mean(), ServiceDist::workload_b().mean());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panics() {
        PhasedService::new(vec![]);
    }
}
