//! # lp-workload — workload models for the LibPreemptible reproduction
//!
//! Generates every request stream the paper evaluates on:
//!
//! * [`ServiceDist`] — the synthetic service-time distributions
//!   (workloads A1, A2, B of §V-A, plus the shapes used for Fig. 1's
//!   dispersion ranking).
//! * [`PhasedService`] — workload C's mid-run distribution shift.
//! * [`ArrivalGen`] / [`RateSchedule`] — open-loop Poisson arrivals with
//!   constant, phased, or bursty (Fig. 14) rates.
//! * [`Zipf`] — the YCSB-style zipfian key generator MICA uses.
//! * [`MicaModel`] / [`ZlibModel`] / [`ColocatedWorkload`] — §V-C's
//!   latency-critical KVS + best-effort compression colocation.

#![warn(missing_docs)]

mod arrival;
mod dist;
mod mica;
mod phased;
mod tracefile;
mod zipf;

pub use arrival::{ArrivalGen, RateSchedule};
pub use dist::ServiceDist;
pub use mica::{ColocatedWorkload, JobClass, MicaModel, MicaOp, MicaRequest, ZlibModel};
pub use phased::PhasedService;
pub use tracefile::EmpiricalDist;
pub use zipf::Zipf;
