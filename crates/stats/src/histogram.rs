//! Log-bucketed latency histogram (HDR-histogram style).
//!
//! Latency experiments in the paper record millions of samples and read
//! off medians and high percentiles (p99, p99.9). Storing every sample is
//! wasteful; instead we bucket values with a bounded *relative* error:
//! each power-of-two range is split into `1 << precision_bits` linear
//! sub-buckets, so any recorded value is reproduced within
//! `2^-precision_bits` relative error (default: 1/128 < 1%).


/// Default sub-bucket precision: values quantized within 1/128 (< 1%).
pub const DEFAULT_PRECISION_BITS: u32 = 7;

/// A latency histogram with bounded relative error and exact min/max/sum.
///
/// Values are `u64` (the reproduction uses nanoseconds).
///
/// ```
/// use lp_stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 100);
/// assert_eq!(h.max(), 1_000_000);
/// let p50 = h.quantile(0.5);
/// assert!((p50 as f64 - 300.0).abs() / 300.0 < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    precision_bits: u32,
    /// counts, indexed by bucket index (see `index_of`).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a histogram with the default ~1% relative precision.
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION_BITS)
    }

    /// Creates a histogram with `2^-precision_bits` relative precision.
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is 0 or greater than 16.
    pub fn with_precision(precision_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&precision_bits),
            "precision_bits must be in 1..=16"
        );
        Histogram {
            precision_bits,
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn sub_buckets(&self) -> u64 {
        1u64 << self.precision_bits
    }

    /// Bucket index of `value`.
    ///
    /// Values below `sub_buckets` get exact (identity) buckets; above
    /// that, each octave is split into `sub_buckets/2`... Standard HDR
    /// trick: index = (exp << bits) + mantissa-top-bits, where exp is the
    /// number of leading octaves beyond the linear range.
    fn index_of(&self, value: u64) -> usize {
        let sb = self.sub_buckets();
        if value < sb {
            return value as usize;
        }
        let bits = self.precision_bits;
        // Highest set bit position.
        let msb = 63 - value.leading_zeros() as u64;
        let exp = msb - bits as u64; // how many octaves past linear range
        let mantissa = (value >> exp) - sb; // in [0, sb)
        ((exp + 1) * sb + mantissa) as usize
    }

    /// Representative (midpoint) value of bucket `idx` — inverse of
    /// `index_of` up to quantization.
    fn value_of(&self, idx: usize) -> u64 {
        let sb = self.sub_buckets();
        let idx = idx as u64;
        if idx < sb {
            return idx;
        }
        let exp = idx / sb - 1;
        let mantissa = idx % sb;
        let lo = (mantissa + sb) << exp;
        let width = 1u64 << exp;
        lo + width / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1)
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different precisions.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms with different precisions"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Standard deviation approximated from bucket midpoints.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut var = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let d = self.value_of(i) as f64 - mean;
                var += d * d * c as f64;
            }
        }
        (var / self.count as f64).sqrt()
    }

    /// Value at quantile `q` in `[0, 1]` (within the relative precision).
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        // Rank of the target sample (1-based ceil, nearest-rank method).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket representative to the exact extremes so
                // single-bucket distributions report exact values.
                return self.value_of(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Convenience: median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Convenience: 99th percentile, the paper's headline tail metric.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Convenience: 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Number of samples at or below `value`.
    pub fn count_at_or_below(&self, value: u64) -> u64 {
        let idx = self.index_of(value);
        self.counts
            .iter()
            .take(idx + 1)
            .sum()
    }

    /// Fraction of samples strictly above `value` (e.g. SLO violations).
    pub fn frac_above(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        1.0 - self.count_at_or_below(value) as f64 / self.count as f64
    }

    /// Iterates over `(bucket_midpoint, count)` pairs for non-empty
    /// buckets, in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.value_of(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..100 {
            h.record(v);
        }
        // All below sub_buckets=128, so identity buckets. Nearest-rank
        // p50 of 0..100 is the 50th smallest, i.e. 49.
        assert_eq!(h.quantile(0.5), 49);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        assert_eq!(h.mean(), 49.5);
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut h = Histogram::new();
        let vals = [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000];
        for &v in &vals {
            h.record(v);
        }
        for (q, expect) in [(0.2, 1_000u64), (0.4, 10_000), (0.6, 100_000), (0.8, 1_000_000)] {
            let got = h.quantile(q);
            let rel = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(rel < 0.01, "q={q}: got {got}, want ~{expect}");
        }
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let mut h = Histogram::new();
        h.record(123_456);
        h.record(789_012);
        assert_eq!(h.quantile(0.0), 123_456);
        assert_eq!(h.quantile(1.0), 789_012);
    }

    #[test]
    fn record_n_and_merge() {
        let mut a = Histogram::new();
        a.record_n(500, 10);
        let mut b = Histogram::new();
        b.record_n(5_000, 30);
        a.merge(&b);
        assert_eq!(a.count(), 40);
        assert_eq!(a.min(), 500);
        // 10 samples at 500, 30 at 5000 -> p50 lands on 5000.
        let p50 = a.quantile(0.5);
        assert!((p50 as f64 - 5_000.0).abs() / 5_000.0 < 0.01);
        let mean = a.mean();
        assert!((mean - (500.0 * 10.0 + 5_000.0 * 30.0) / 40.0).abs() < 1e-9);
    }

    #[test]
    fn frac_above_slo() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert!((h.frac_above(50_000) - 0.01).abs() < 1e-9);
        assert_eq!(h.frac_above(2_000_000), 0.0);
    }

    #[test]
    fn p99_with_bimodal_tail() {
        let mut h = Histogram::new();
        // 99.5% at 500ns, 0.5% at 500us: workload A1's shape.
        h.record_n(500, 995);
        h.record_n(500_000, 5);
        let p99 = h.p99();
        assert!(p99 < 1_000, "p99 should be in the short mode, got {p99}");
        let p999 = h.p999();
        let rel = (p999 as f64 - 500_000.0).abs() / 500_000.0;
        assert!(rel < 0.01, "p99.9 should be in the tail, got {p999}");
    }

    #[test]
    fn zero_value_is_recordable() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn stddev_reasonable() {
        let mut h = Histogram::new();
        h.record_n(100, 50);
        h.record_n(300, 50);
        // exact stddev is 100
        assert!((h.stddev() - 100.0).abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "different precisions")]
    fn merge_mismatched_precision_panics() {
        let mut a = Histogram::with_precision(7);
        let b = Histogram::with_precision(8);
        a.merge(&b);
    }

    #[test]
    fn index_value_roundtrip_error_bounded() {
        let h = Histogram::new();
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = h.index_of(v);
            let back = h.value_of(idx);
            let rel = (back as f64 - v as f64).abs() / v as f64;
            assert!(rel <= 1.0 / 128.0 + 1e-12, "v={v} back={back} rel={rel}");
            v = v * 3 / 2 + 1;
        }
    }
}
