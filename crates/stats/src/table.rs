//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints the rows/series of its paper artifact
//! as an aligned text table (and optionally CSV). Kept here so all
//! binaries format identically.

use std::fmt::Write as _;

/// A simple column-aligned text table builder.
///
/// ```
/// use lp_stats::Table;
/// let mut t = Table::new(&["load", "p99 (us)"]);
/// t.row(&["0.5".into(), "12.3".into()]);
/// t.row(&["0.9".into(), "140.0".into()]);
/// let s = t.render();
/// assert!(s.contains("load"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Missing cells render empty; extra cells are
    /// dropped.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..ncols {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV (headers + rows, comma-separated, cells
    /// containing commas are quoted).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats nanoseconds as microseconds with 1 decimal, the unit used in
/// the paper's plots.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// Formats nanoseconds as microseconds with 2 decimals.
pub fn us2(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats requests-per-second as kRPS with 1 decimal.
pub fn krps(rps: f64) -> String {
    format!("{:.1}", rps / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]).with_title("demo");
        t.row(&["xxxxxx".into(), "1".into()]);
        t.row(&["y".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== demo ==");
        assert!(lines[1].starts_with("a       long-header"));
        // All data rows align under the header.
        assert!(lines[3].starts_with("xxxxxx  1"));
        assert!(lines[4].starts_with("y       2"));
    }

    #[test]
    fn short_rows_and_long_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains('1'));
        assert!(!s.contains('3'), "extra cells must be dropped");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_display_and_len() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_display(&[42]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(1_500), "1.5");
        assert_eq!(us2(1_550), "1.55");
        assert_eq!(pct(0.015), "1.5%");
        assert_eq!(krps(55_000.0), "55.0");
    }
}
