//! Time-series recording and windowed statistics.
//!
//! The paper's Figs. 9 and 14 plot quantities over wall-clock time
//! (measured QPS, average LC/BE latency, the controller's chosen
//! quantum). [`TimeSeries`] buckets scalar observations into fixed
//! frames; [`WindowStats`] is the sliding window of request statistics
//! the user-level scheduler feeds to the adaptive controller ("the set of
//! metrics (Stats) collected from the previous requests over a given time
//! window").


use crate::histogram::Histogram;

/// Scalar observations bucketed into fixed-width time frames.
///
/// ```
/// use lp_stats::TimeSeries;
/// let mut ts = TimeSeries::new(1_000); // 1 us frames
/// ts.record(100, 5.0);
/// ts.record(200, 7.0);
/// ts.record(1_500, 1.0);
/// let frames = ts.frames();
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].mean(), 6.0);
/// assert_eq!(frames[1].count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    frame_width: u64,
    frames: Vec<Frame>,
}

/// Aggregate of one time frame.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// Frame start time (inclusive), in the series' time unit.
    pub start: u64,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
}

impl Frame {
    /// Mean of the frame's observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations per time unit (e.g. QPS when the unit is seconds).
    pub fn rate(&self, frame_width: u64) -> f64 {
        self.count as f64 / frame_width as f64
    }
}

impl TimeSeries {
    /// Creates a series with `frame_width`-wide buckets (same unit as the
    /// timestamps passed to [`record`](Self::record)).
    ///
    /// # Panics
    ///
    /// Panics if `frame_width` is 0.
    pub fn new(frame_width: u64) -> Self {
        assert!(frame_width > 0, "frame_width must be positive");
        TimeSeries {
            frame_width,
            frames: Vec::new(),
        }
    }

    /// Records observation `value` at `time`.
    pub fn record(&mut self, time: u64, value: f64) {
        let idx = (time / self.frame_width) as usize;
        if idx >= self.frames.len() {
            let old_len = self.frames.len();
            self.frames.resize_with(idx + 1, Frame::default);
            for (i, f) in self.frames.iter_mut().enumerate().skip(old_len) {
                f.start = i as u64 * self.frame_width;
            }
        }
        let f = &mut self.frames[idx];
        if f.count == 0 {
            f.min = value;
            f.max = value;
        } else {
            f.min = f.min.min(value);
            f.max = f.max.max(value);
        }
        f.count += 1;
        f.sum += value;
    }

    /// All frames from time zero through the last recorded observation.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The configured frame width.
    pub fn frame_width(&self) -> u64 {
        self.frame_width
    }
}

/// Sliding window of request metrics for the adaptive controller.
///
/// Mirrors the paper's `Stats` component: per control period the
/// scheduler reads the request load μ, median and tail latencies, and
/// queue lengths, then resets the window. Latencies are recorded in
/// nanoseconds.
#[derive(Debug, Clone)]
pub struct WindowStats {
    latency: Histogram,
    /// Completed requests this window.
    completed: u64,
    /// Arrived requests this window.
    arrived: u64,
    /// Sum of sampled queue lengths.
    qlen_sum: u64,
    /// Number of queue-length samples.
    qlen_samples: u64,
    /// Window start, ns.
    window_start: u64,
    /// Sum of observed service times (ns) of completed requests.
    service_sum: f64,
    /// Sum of squared service times (ns²).
    service_sumsq: f64,
    /// Number of service samples.
    service_n: u64,
}

impl Default for WindowStats {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowStats {
    /// Creates an empty window starting at time 0.
    pub fn new() -> Self {
        WindowStats {
            latency: Histogram::new(),
            completed: 0,
            arrived: 0,
            qlen_sum: 0,
            qlen_samples: 0,
            window_start: 0,
            service_sum: 0.0,
            service_sumsq: 0.0,
            service_n: 0,
        }
    }

    /// Records a request arrival.
    pub fn on_arrival(&mut self) {
        self.arrived += 1;
    }

    /// Records a completed request with end-to-end latency `ns`.
    pub fn on_completion(&mut self, latency_ns: u64) {
        self.completed += 1;
        self.latency.record(latency_ns);
    }

    /// Records the *service time* a completed request actually
    /// executed for. The runtime measures this per function, so the
    /// controller can judge workload dispersion independently of how
    /// well scheduling is currently hiding it.
    pub fn on_service_sample(&mut self, service_ns: u64) {
        let x = service_ns as f64;
        self.service_sum += x;
        self.service_sumsq += x * x;
        self.service_n += 1;
    }

    /// Records an observed queue length.
    pub fn on_queue_sample(&mut self, qlen: usize) {
        self.qlen_sum += qlen as u64;
        self.qlen_samples += 1;
    }

    /// Produces the window summary for the controller and resets the
    /// window to start at `now_ns`.
    pub fn roll(&mut self, now_ns: u64) -> WindowSummary {
        let span_ns = now_ns.saturating_sub(self.window_start).max(1);
        let service_scv = if self.service_n >= 2 {
            let n = self.service_n as f64;
            let mean = self.service_sum / n;
            let var = (self.service_sumsq / n - mean * mean).max(0.0);
            if mean > 0.0 {
                var / (mean * mean)
            } else {
                0.0
            }
        } else {
            0.0
        };
        let summary = WindowSummary {
            load_rps: self.arrived as f64 * 1e9 / span_ns as f64,
            throughput_rps: self.completed as f64 * 1e9 / span_ns as f64,
            median_ns: self.latency.median(),
            p99_ns: self.latency.p99(),
            mean_qlen: if self.qlen_samples == 0 {
                0.0
            } else {
                self.qlen_sum as f64 / self.qlen_samples as f64
            },
            completed: self.completed,
            arrived: self.arrived,
            service_scv,
        };
        *self = WindowStats::new();
        self.window_start = now_ns;
        summary
    }

    /// Read-only access to the in-window latency histogram.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

/// One control-period summary handed to the adaptive quantum controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Offered load (arrivals per second), the paper's μ.
    pub load_rps: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median end-to-end latency, ns.
    pub median_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_ns: u64,
    /// Mean sampled local-queue length, the paper's Q_len.
    pub mean_qlen: f64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Requests arrived in the window.
    pub arrived: u64,
    /// Squared coefficient of variation of observed *service times*
    /// (0.0 when fewer than two samples). Exponential ≈ 1; the paper's
    /// bimodal workloads ≫ 1.
    pub service_scv: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_buckets_by_frame() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, 1.0);
        ts.record(9, 3.0);
        ts.record(10, 5.0);
        ts.record(35, 7.0);
        let f = ts.frames();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].count, 2);
        assert_eq!(f[0].mean(), 2.0);
        assert_eq!(f[0].min, 1.0);
        assert_eq!(f[0].max, 3.0);
        assert_eq!(f[1].count, 1);
        assert_eq!(f[2].count, 0); // gap frame exists with start set
        assert_eq!(f[2].start, 20);
        assert_eq!(f[3].count, 1);
        assert_eq!(f[3].start, 30);
    }

    #[test]
    fn frame_rate() {
        let mut ts = TimeSeries::new(1_000_000_000); // 1 s frames in ns
        for i in 0..500 {
            ts.record(i * 2_000_000, 1.0);
        }
        let f = &ts.frames()[0];
        // 500 events in a 1 s frame => 500/1e9 events per ns.
        assert!((f.rate(ts.frame_width()) - 500.0 / 1e9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frame_width must be positive")]
    fn zero_frame_width_panics() {
        TimeSeries::new(0);
    }

    #[test]
    fn window_roll_computes_rates() {
        let mut w = WindowStats::new();
        for _ in 0..100 {
            w.on_arrival();
        }
        for i in 0..80 {
            w.on_completion(1_000 + i);
        }
        w.on_queue_sample(4);
        w.on_queue_sample(6);
        // 1 ms window.
        let s = w.roll(1_000_000);
        assert!((s.load_rps - 100_000.0).abs() < 1.0);
        assert!((s.throughput_rps - 80_000.0).abs() < 1.0);
        assert_eq!(s.mean_qlen, 5.0);
        assert_eq!(s.arrived, 100);
        assert_eq!(s.completed, 80);
        assert!(s.median_ns >= 1_000);

        // Window reset: next roll sees nothing.
        let s2 = w.roll(2_000_000);
        assert_eq!(s2.arrived, 0);
        assert_eq!(s2.completed, 0);
        assert_eq!(s2.median_ns, 0);
    }

    #[test]
    fn window_roll_empty_is_safe() {
        let mut w = WindowStats::new();
        let s = w.roll(0);
        assert_eq!(s.load_rps, 0.0);
        assert_eq!(s.mean_qlen, 0.0);
    }
}
