//! Tail-index estimation.
//!
//! Algorithm 1 of the paper classifies the current service-time
//! distribution as heavy- or light-tailed from "past median and tail
//! latencies" (a fitted *tail index* α, with 0 ≤ α < 2 considered heavy).
//! We provide two estimators:
//!
//! * [`hill_estimator`] — the classical Hill estimator over the top-k
//!   order statistics of raw samples.
//! * [`dispersion_index`] — the cheap proxy the adaptive controller uses
//!   online: the ratio p99/median, mapped onto an equivalent α. This is
//!   exactly the kind of statistic the runtime's `Stats` window already
//!   maintains, so the controller never needs raw samples.

/// Result of a tail fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailFit {
    /// Estimated tail index α. Smaller is heavier; `< 2` counts as
    /// heavy-tailed per the paper (infinite variance regime).
    pub alpha: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl TailFit {
    /// `true` if the paper's Algorithm 1 would treat this as a heavy
    /// tail (0 ≤ α < 2).
    pub fn is_heavy(&self) -> bool {
        self.alpha < 2.0
    }
}

/// Hill estimator of the tail index over the largest `k` of `samples`.
///
/// Returns `None` if fewer than `k + 1` positive samples exist or `k < 2`.
///
/// For a Pareto(α) distribution the estimate converges to α; for
/// light-tailed distributions (e.g. exponential) it grows with sample
/// size, landing well above 2 for the sizes the controller uses.
///
/// ```
/// use lp_stats::tail::hill_estimator;
/// // Pareto with alpha = 1.2
/// let samples: Vec<f64> = (1..=2000)
///     .map(|i| {
///         let u = i as f64 / 2001.0;
///         (1.0 - u).powf(-1.0 / 1.2)
///     })
///     .collect();
/// let fit = hill_estimator(&samples, 200).unwrap();
/// assert!((fit.alpha - 1.2).abs() < 0.2, "alpha = {}", fit.alpha);
/// ```
pub fn hill_estimator(samples: &[f64], k: usize) -> Option<TailFit> {
    if k < 2 {
        return None;
    }
    let mut pos: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
    if pos.len() <= k {
        return None;
    }
    // Select the top k+1 order statistics.
    pos.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN in samples"));
    let x_k1 = pos[k]; // (k+1)-th largest
    let mut acc = 0.0;
    for &x in &pos[..k] {
        acc += (x / x_k1).ln();
    }
    let gamma = acc / k as f64; // mean excess log, = 1/alpha for Pareto
    if gamma <= 0.0 {
        return None;
    }
    Some(TailFit {
        alpha: 1.0 / gamma,
        samples: pos.len(),
    })
}

/// Maps a p99/median dispersion ratio to an equivalent tail index.
///
/// For a Pareto(α) distribution, `p99/median = (0.01)^(-1/α) /
/// (0.5)^(-1/α) = 50^(1/α)`, so `α = ln 50 / ln(p99/median)`. Using this
/// inversion on arbitrary distributions yields a *dispersion-equivalent*
/// α: light-tailed workloads (exponential: p99/median ≈ 6.6 → α ≈ 2.07)
/// land at or above 2, while the paper's bimodal-with-500us-tail
/// workloads land far below 2.
///
/// Returns `f64::INFINITY` when `p99 <= median` (no measurable tail).
///
/// ```
/// use lp_stats::tail::dispersion_index;
/// // exponential: median = ln2/λ, p99 = ln100/λ -> ratio ~6.64, alpha ~2.07
/// let alpha = dispersion_index(6.64, 1.0);
/// assert!(alpha > 2.0 && alpha < 2.2);
/// // bimodal A1: median 0.5us, p99.9-ish tail 500us -> very heavy
/// assert!(dispersion_index(500.0, 0.5) < 1.0);
/// ```
pub fn dispersion_index(p99: f64, median: f64) -> f64 {
    if median <= 0.0 || p99 <= median {
        return f64::INFINITY;
    }
    (50.0f64).ln() / (p99 / median).ln()
}

/// Squared coefficient of variation (SCV), the dispersion measure used to
/// rank workloads in Fig. 1 (right).
///
/// SCV = variance / mean². Exponential has SCV = 1; the paper's bimodal
/// workloads have SCV ≫ 1.
pub fn scv(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var / (mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pareto_quantiles(alpha: f64, n: usize) -> Vec<f64> {
        (1..=n)
            .map(|i| {
                let u = i as f64 / (n + 1) as f64;
                (1.0 - u).powf(-1.0 / alpha)
            })
            .collect()
    }

    #[test]
    fn hill_recovers_pareto_alpha() {
        for alpha in [0.8, 1.5, 2.5] {
            let s = pareto_quantiles(alpha, 5_000);
            let fit = hill_estimator(&s, 500).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.3,
                "alpha={alpha} fit={}",
                fit.alpha
            );
        }
    }

    #[test]
    fn hill_flags_exponential_as_light() {
        // Exponential quantiles: -ln(1-u)
        let s: Vec<f64> = (1..=5_000)
            .map(|i| -((1.0 - i as f64 / 5_001.0) as f64).ln())
            .collect();
        let fit = hill_estimator(&s, 250).unwrap();
        assert!(!fit.is_heavy(), "exponential misclassified: {:?}", fit);
    }

    #[test]
    fn hill_insufficient_samples() {
        assert!(hill_estimator(&[1.0, 2.0], 5).is_none());
        assert!(hill_estimator(&[1.0; 100], 1).is_none());
        // All-equal samples give gamma = 0 -> None.
        assert!(hill_estimator(&[3.0; 100], 10).is_none());
    }

    #[test]
    fn hill_ignores_nonpositive() {
        let mut s = pareto_quantiles(1.0, 1_000);
        s.extend([0.0, -5.0]);
        let fit = hill_estimator(&s, 100).unwrap();
        assert_eq!(fit.samples, 1_000);
    }

    #[test]
    fn dispersion_boundaries() {
        assert_eq!(dispersion_index(1.0, 2.0), f64::INFINITY);
        assert_eq!(dispersion_index(1.0, 0.0), f64::INFINITY);
        // Pareto self-consistency: ratio = 50^(1/alpha)
        for alpha in [0.7, 1.3, 2.0] {
            let ratio = 50.0f64.powf(1.0 / alpha);
            assert!((dispersion_index(ratio, 1.0) - alpha).abs() < 1e-9);
        }
    }

    #[test]
    fn scv_known_values() {
        // Constant -> 0.
        assert_eq!(scv(&[5.0; 100]), 0.0);
        // Two-point 50/50 at 0 and 2: mean 1, var 1 -> SCV 1.
        let s: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 2.0 }).collect();
        assert!((scv(&s) - 1.0).abs() < 1e-9);
        // Bimodal 99.5/0.5 at 0.5us/500us is very dispersive.
        let mut b = vec![0.5; 995];
        b.extend(vec![500.0; 5]);
        assert!(scv(&b) > 50.0);
    }
}
