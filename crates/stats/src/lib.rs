//! # lp-stats — measurement infrastructure for the LibPreemptible reproduction
//!
//! Everything the experiments measure flows through this crate:
//!
//! * [`Histogram`] — log-bucketed latency histogram with ~1% relative
//!   error, exact min/max/mean, and the paper's tail metrics (p99,
//!   p99.9, SLO-violation fractions).
//! * [`tail`] — tail-index estimation (Hill estimator and the
//!   p99/median dispersion proxy used online by Algorithm 1).
//! * [`TimeSeries`] / [`WindowStats`] — time-bucketed recordings for the
//!   over-time plots (Figs. 9, 14) and the per-control-period summaries
//!   consumed by the adaptive quantum controller.
//! * [`Table`] — aligned text/CSV rendering so every experiment binary
//!   prints its paper artifact the same way.
//!
//! The crate is deliberately simulation-agnostic (it has no
//! dependencies), so the same types serve unit tests, the simulated runtime,
//! and the experiment harness.

#![warn(missing_docs)]

mod histogram;
mod series;
pub mod tail;
mod table;

pub use histogram::{Histogram, DEFAULT_PRECISION_BITS};
pub use series::{Frame, TimeSeries, WindowStats, WindowSummary};
pub use table::{krps, pct, us, us2, Table};
