//! Property tests for the histogram's accuracy contract.

use lp_stats::Histogram;
use proptest::prelude::*;

proptest! {
    /// Every quantile of the histogram is within 1% relative error of the
    /// exact empirical quantile (nearest-rank method).
    #[test]
    fn quantiles_within_relative_error(
        mut values in proptest::collection::vec(1u64..10_000_000, 10..500),
        qs in proptest::collection::vec(0.01f64..0.999, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in qs {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = h.quantile(q);
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(rel <= 0.01, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
    }

    /// count/min/max/mean are exact regardless of bucketing.
    #[test]
    fn exact_aggregates(values in proptest::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// Merging two histograms equals recording the union.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(1u64..1_000_000, 1..100),
        b in proptest::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        ha.merge(&hb);

        let mut hu = Histogram::new();
        for &v in a.iter().chain(b.iter()) { hu.record(v); }

        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// frac_above is consistent with a direct count.
    #[test]
    fn frac_above_consistent(
        values in proptest::collection::vec(1u64..100_000, 1..200),
        threshold in 1u64..100_000,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let got = h.frac_above(threshold);
        // The histogram may put values within 1% of the threshold on
        // either side; count with that tolerance.
        let hi = threshold + threshold / 64 + 1;
        let lo = threshold.saturating_sub(threshold / 64 + 1);
        let above_max = values.iter().filter(|&&v| v > lo).count() as f64 / values.len() as f64;
        let above_min = values.iter().filter(|&&v| v > hi).count() as f64 / values.len() as f64;
        prop_assert!(got >= above_min - 1e-9 && got <= above_max + 1e-9,
            "frac_above({threshold}) = {got}, bounds [{above_min}, {above_max}]");
    }
}
