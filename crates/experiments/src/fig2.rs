//! Fig. 2 — tail latency vs preemption time quantum on 16 cores, for a
//! heavy-tailed (bimodal) and a light-tailed (exponential) workload.
//!
//! The paper's point: lower quanta help heavy tails (until the quantum
//! gets so small the overhead bites), while light tails prefer *larger*
//! quanta — hence adaptivity. A "0 us" quantum in the paper means no
//! preemption; we render it as `none`.

use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::policy::{FcfsPreempt, NonPreemptive};
use libpreemptible::sched::SchedPolicy;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;
use crate::runner;

/// One cell of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumPoint {
    /// Workload label.
    pub workload: &'static str,
    /// Quantum in us; `None` = no preemption (the paper's 0 us).
    pub quantum_us: Option<u64>,
    /// Measured p99, us.
    pub p99_us: f64,
    /// Measured median, us.
    pub median_us: f64,
}

/// The quantum grid of the figure.
pub const QUANTA_US: [Option<u64>; 5] = [None, Some(5), Some(25), Some(100), Some(500)];

/// Runs the sweep for both distributions on 16 cores at fixed load.
///
/// The `workload x quantum` grid points are independent seeded runs;
/// they are submitted through the parallel [`runner`] and collected in
/// grid order, so the result (and everything rendered from it) is
/// byte-identical at any `LP_JOBS`.
pub fn run_fig2(scale: Scale, seed: u64) -> Vec<QuantumPoint> {
    let workloads: [(&str, ServiceDist); 2] = [
        ("bimodal (99.5% 0.5us / 0.5% 500us)", ServiceDist::workload_a1()),
        ("exponential (mean 5us)", ServiceDist::workload_b()),
    ];
    let workers = 16;
    let rho = 0.75;
    let points: Vec<(&'static str, ServiceDist, Option<u64>)> = workloads
        .into_iter()
        .flat_map(|(name, dist)| QUANTA_US.into_iter().map(move |q| (name, dist.clone(), q)))
        .collect();
    runner::map_points("fig2", &points, |_, (name, dist, q)| {
        let rate = dist.rate_for_utilization(rho, workers);
        let duration = scale.point_duration();
        let spec = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
            arrivals: RateSchedule::Constant(rate),
            duration,
            warmup: scale.warmup(),
        };
        let (policy, mech): (Box<dyn SchedPolicy>, PreemptMech) = match q {
            None => (Box::new(NonPreemptive), PreemptMech::None),
            Some(us) => (
                Box::new(FcfsPreempt::fixed(SimDur::micros(*us))),
                PreemptMech::Uintr,
            ),
        };
        let cfg = RuntimeConfig {
            workers,
            mech,
            seed,
            ..RuntimeConfig::default()
        };
        let r = run(cfg, policy, spec);
        debug_assert!(r.is_conserved());
        QuantumPoint {
            workload: name,
            quantum_us: *q,
            p99_us: r.p99_us(),
            median_us: r.median_us(),
        }
    })
}

/// Renders the figure as a table.
pub fn table(points: &[QuantumPoint]) -> Table {
    let mut t = Table::new(&["workload", "quantum (us)", "median (us)", "p99 (us)"])
        .with_title("Fig 2: tail latency vs preemption quantum, 16 cores, rho=0.75");
    for p in points {
        t.row(&[
            p.workload.to_string(),
            p.quantum_us
                .map(|q| q.to_string())
                .unwrap_or_else(|| "none".into()),
            format!("{:.1}", p.median_us),
            format!("{:.1}", p.p99_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p99(points: &[QuantumPoint], workload_contains: &str, q: Option<u64>) -> f64 {
        points
            .iter()
            .find(|p| p.workload.contains(workload_contains) && p.quantum_us == q)
            .expect("point")
            .p99_us
    }

    #[test]
    fn heavy_tail_prefers_small_quanta_light_tail_large() {
        let pts = run_fig2(Scale::Quick, 3);
        // Bimodal: 5us quantum beats both no-preemption and a 500us
        // quantum.
        let bi_5 = p99(&pts, "bimodal", Some(5));
        let bi_none = p99(&pts, "bimodal", None);
        let bi_500 = p99(&pts, "bimodal", Some(500));
        assert!(bi_5 < bi_none, "5us {bi_5} vs none {bi_none}");
        assert!(bi_5 < bi_500, "5us {bi_5} vs 500us {bi_500}");
        // Exponential: preemption cannot help much; tiny quanta must
        // not be better than large ones by any significant margin.
        let ex_5 = p99(&pts, "exponential", Some(5));
        let ex_100 = p99(&pts, "exponential", Some(100));
        assert!(
            ex_100 <= ex_5 * 1.3,
            "exp: 100us {ex_100} should be competitive with 5us {ex_5}"
        );
    }

    #[test]
    fn grid_is_complete() {
        let pts = run_fig2(Scale::Quick, 3);
        assert_eq!(pts.len(), 2 * QUANTA_US.len());
        assert_eq!(table(&pts).len(), pts.len());
    }
}
