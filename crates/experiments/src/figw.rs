//! Fig. W (extension) — worst-case response vs offered load under a
//! fixed chaos plan, hardened (admission armed) vs unhardened.
//!
//! Not a figure of the paper: LibPreemptible assumes a cooperative
//! tenant mix and never sheds load. This extension replays one
//! representative adversarial plan from the chaos corpus family — a
//! mid-run UINTR drop burst overlaid with an antagonist arrival spike
//! and background timer jitter — across a load sweep, and compares the
//! runtime with admission control armed against the same runtime
//! without it. The hardened curve should stay bounded past saturation
//! where the unhardened curve walks off toward the horizon. Omitted
//! from the `all` binary's paper-order artifact list on purpose;
//! regenerate with `cargo run --release -p lp-experiments --bin figw`.

use lp_chaos::{evaluate, ChaosAtom, ChaosPlan, EvalConfig, EvalOutcome};
use lp_stats::Table;

use crate::common::Scale;
use crate::runner;

/// One point of the sweep: the same plan and load evaluated both ways.
#[derive(Debug)]
pub struct FigWRow {
    /// Base offered load, requests/second (the spike adds on top).
    pub base_rps: u32,
    /// Outcome with admission control disabled.
    pub unhardened: EvalOutcome,
    /// Outcome with admission control armed.
    pub hardened: EvalOutcome,
}

/// The base loads swept, requests/second. Four workers at 400 µs per
/// request saturate at 10 krps, so the sweep crosses the knee and ends
/// deep enough past it to fill the admission queue within even a
/// quick-scale horizon.
pub const LOADS: [u32; 6] = [4_000, 8_000, 10_000, 12_000, 16_000, 24_000];

/// The representative adversarial plan, scaled to `horizon_us`: a
/// half-horizon UINTR drop burst and an overlapping arrival spike over
/// background timer jitter — the shape the chaos search converges on.
pub fn representative_plan(horizon_us: u64) -> ChaosPlan {
    let h = u32::try_from(horizon_us).unwrap_or(u32::MAX);
    ChaosPlan::Overlay(vec![
        ChaosPlan::windowed(
            ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 400_000 }),
            h / 4,
            h / 2,
        ),
        ChaosPlan::windowed(
            ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 4_000 }),
            h / 2,
            h / 4,
        ),
        ChaosPlan::Atom(ChaosAtom::TimerJitterWave { rate_ppm: 50_000, spike_us: 200 }),
    ])
}

/// Runs the sweep. Each point is two deterministic evaluations of the
/// same `(plan, seed)` pair differing only in the admission switch.
pub fn run_figw(scale: Scale, seed: u64) -> Vec<FigWRow> {
    let horizon_us = scale.point_duration().as_nanos() / 1_000;
    let plan = representative_plan(horizon_us);
    runner::map_points("figw", &LOADS, move |_id, &base_rps| {
        let cfg = EvalConfig { seed, base_rps, horizon_us, ..EvalConfig::default() };
        FigWRow {
            base_rps,
            unhardened: evaluate(&plan, &cfg, false),
            hardened: evaluate(&plan, &cfg, true),
        }
    })
}

/// Renders the sweep table.
pub fn table(rows: &[FigWRow]) -> Table {
    let mut t = Table::new(&[
        "load (rps)",
        "worst unhard (us)",
        "worst hard (us)",
        "p99 unhard (us)",
        "p99 hard (us)",
        "miss unhard",
        "miss hard",
        "shed",
    ])
    .with_title("Fig W (extension): worst-case response vs load, hardened vs unhardened");
    for r in rows {
        t.row(&[
            r.base_rps.to_string(),
            (r.unhardened.worst_ns / 1_000).to_string(),
            (r.hardened.worst_ns / 1_000).to_string(),
            (r.unhardened.p99_ns / 1_000).to_string(),
            (r.hardened.p99_ns / 1_000).to_string(),
            r.unhardened.miss_mass.to_string(),
            r.hardened.miss_mass.to_string(),
            r.hardened.dropped.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn hardening_bounds_the_overloaded_tail() {
        let rows = run_figw(Scale::Quick, DEFAULT_SEED);
        assert_eq!(rows.len(), LOADS.len());
        // Every point conserves requests on both sides of the switch —
        // neither chaos nor shedding strands fibers.
        for r in &rows {
            assert!(r.unhardened.conserved, "{} rps unhardened: not conserved", r.base_rps);
            assert!(r.hardened.conserved, "{} rps hardened: not conserved", r.base_rps);
        }
        // Past saturation (4 workers x 400 us = 10 krps) the unhardened
        // queue grows without bound while admission caps it: the
        // hardened worst case must be strictly better at the top load.
        let top = rows.last().expect("top load row");
        assert!(
            top.hardened.worst_ns < top.unhardened.worst_ns,
            "hardened worst {} >= unhardened worst {}",
            top.hardened.worst_ns,
            top.unhardened.worst_ns
        );
        // And the hardening actually engaged: something was shed.
        assert!(top.hardened.dropped > 0);
    }
}
