//! Table IV — overhead of IPC / event-notification mechanisms.
//!
//! Reproduces the 1M-iteration ping-pong microbenchmark: per-message
//! latency (avg/min/std) and achievable message rate for signal, mq,
//! pipe, eventFD, uintrFd (running) and uintrFd (blocked).

use lp_kernel::{IpcLatency, IpcMechanism};
use lp_sim::rng::rng;
use lp_stats::Table;

use crate::common::Scale;

/// Measured row for one mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct IpcRow {
    /// Mechanism name as in the paper.
    pub mechanism: &'static str,
    /// Mean per-message latency, us.
    pub avg_us: f64,
    /// Minimum observed latency, us.
    pub min_us: f64,
    /// Standard deviation, us.
    pub std_us: f64,
    /// Sustainable message rate, messages/second.
    pub rate_msg_s: f64,
}

/// Runs the ping-pong benchmark for every mechanism.
pub fn run(scale: Scale) -> Vec<IpcRow> {
    let lat = IpcLatency::default();
    let iters = scale.samples();
    IpcMechanism::ALL
        .iter()
        .map(|&mech| {
            let mut r = rng(0x1Cu64 + mech as u64, 11);
            let mut min = f64::INFINITY;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..iters {
                let us = lat.sample(mech, &mut r).as_micros_f64();
                min = min.min(us);
                sum += us;
                sumsq += us * us;
            }
            let n = iters as f64;
            let avg = sum / n;
            let var = (sumsq / n - avg * avg).max(0.0);
            let per_iter = avg + lat.pingpong_iteration_overhead(mech).as_micros_f64();
            IpcRow {
                mechanism: mech.name(),
                avg_us: avg,
                min_us: min,
                std_us: var.sqrt(),
                rate_msg_s: 1e6 / per_iter,
            }
        })
        .collect()
}

/// Renders the rows as the paper's Table IV.
pub fn table(rows: &[IpcRow]) -> Table {
    let mut t = Table::new(&["IPC Mechanism", "avg (us)", "min (us)", "std (us)", "rate (msg/s)"])
        .with_title("Table IV: overhead of different IPC mechanisms");
    for r in rows {
        t.row(&[
            r.mechanism.to_string(),
            format!("{:.3}", r.avg_us),
            format!("{:.3}", r.min_us),
            format!("{:.3}", r.std_us),
            format!("{:.0}", r.rate_msg_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [IpcRow], name: &str) -> &'a IpcRow {
        rows.iter().find(|r| r.mechanism == name).expect("row")
    }

    #[test]
    fn reproduces_table_iv_shape() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 6);
        let uintr = row(&rows, "uintrFd");
        let blocked = row(&rows, "uintrFd (blocked)");
        let mq = row(&rows, "mq");
        let signal = row(&rows, "signal");
        // Headline: uintrFd ~10x the fastest software mechanism (mq).
        assert!(mq.avg_us / uintr.avg_us > 8.0);
        // Running beats blocked.
        assert!(uintr.avg_us < blocked.avg_us);
        // Calibrated anchors within 10%.
        assert!((signal.avg_us - 15.325).abs() / 15.325 < 0.1, "{}", signal.avg_us);
        assert!((uintr.avg_us - 0.734).abs() / 0.734 < 0.25, "{}", uintr.avg_us);
        // Rates: uintr near the paper's 857k msg/s.
        assert!(
            (uintr.rate_msg_s - 857_009.0).abs() / 857_009.0 < 0.25,
            "{}",
            uintr.rate_msg_s
        );
        // The blocked path still beats every kernel mechanism's rate.
        assert!(blocked.rate_msg_s > mq.rate_msg_s);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run(Scale::Quick);
        let t = table(&rows);
        assert_eq!(t.len(), 6);
        assert!(t.render().contains("uintrFd (blocked)"));
    }
}
