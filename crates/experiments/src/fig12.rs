//! Fig. 12 — precision of LibUtimer vs a periodic kernel timer.
//!
//! 5000 consecutive inter-handler gaps at target quanta of 100 us and
//! 20 us, with 26 threads of background stress. The kernel timer cannot
//! track 20 us (it floors near 60 us and wobbles); LibUtimer holds ~1%
//! relative error at both targets.

use lp_kernel::{KernelCosts, KernelTimer};
use lp_sim::rng::rng;
use lp_sim::SimDur;
use lp_stats::Table;

use lp_hw::HwCosts;

use crate::common::Scale;
use crate::runner;

/// Summary of one timer × target cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRow {
    /// Timer implementation.
    pub timer: &'static str,
    /// Requested period, us.
    pub target_us: f64,
    /// Mean observed inter-handler gap, us.
    pub mean_us: f64,
    /// Standard deviation of the gap, us.
    pub std_us: f64,
    /// Mean relative error vs the target.
    pub rel_err: f64,
}

/// Samples `n` inter-handler gaps for the kernel timer.
///
/// A periodic timer re-arms from each actual expiry, so the gap
/// between consecutive handler invocations is simply the actual period
/// the kernel delivered (floor + slack + noise).
pub fn kernel_gaps(target: SimDur, n: usize, seed: u64) -> Vec<f64> {
    let mut t = KernelTimer::new(KernelCosts::default(), rng(seed, 21));
    t.arm(target);
    (0..n).map(|_| t.sample_expiry().as_micros_f64()).collect()
}

/// Samples `n` inter-handler gaps for LibUtimer under background
/// stress.
pub fn utimer_gaps(target: SimDur, n: usize, seed: u64) -> Vec<f64> {
    let hw = HwCosts::default();
    let mut r = rng(seed, 22);
    // Each gap = target +- (poll quantization + delivery jitter). The
    // stress-ng background (IRQs, TLB shootdowns) adds rare small
    // spikes; §V-B reports preciseness is not significantly impacted.
    (0..n)
        .map(|_| {
            let poll = lp_hw::jitter::sample(&mut r, hw.poll_loop, 0.5).as_micros_f64();
            let deliver =
                lp_hw::jitter::sample(&mut r, hw.uintr_delivery_running, hw.jitter_sigma * 2.0)
                    .as_micros_f64();
            // Jitter between consecutive handlers is the *difference*
            // of two delivery latencies plus poll quantization; model
            // as centered noise at that scale.
            let noise = (poll + deliver) * 0.5;
            let sign = if lp_hw::jitter::standard_normal(&mut r) > 0.0 {
                1.0
            } else {
                -1.0
            };
            (target.as_micros_f64() + sign * noise).max(0.0)
        })
        .collect()
}

fn summarize(timer: &'static str, target: SimDur, gaps: &[f64]) -> PrecisionRow {
    let n = gaps.len() as f64;
    let mean = gaps.iter().sum::<f64>() / n;
    let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let tgt = target.as_micros_f64();
    let rel_err = gaps.iter().map(|x| (x - tgt).abs() / tgt).sum::<f64>() / n;
    PrecisionRow {
        timer,
        target_us: tgt,
        mean_us: mean,
        std_us: var.sqrt(),
        rel_err,
    }
}

/// Runs both timers at both targets.
pub fn run_fig12(scale: Scale, seed: u64) -> Vec<PrecisionRow> {
    let n = match scale {
        Scale::Quick => 1_000,
        Scale::Full => 5_000,
    };
    // Each (target, timer) cell samples its own independent RNG
    // substream, so the four cells fan out through the parallel runner.
    let cells: Vec<(SimDur, bool)> = [SimDur::micros(100), SimDur::micros(20)]
        .into_iter()
        .flat_map(|target| [(target, false), (target, true)])
        .collect();
    runner::map_points("fig12", &cells, |_, &(target, is_utimer)| {
        if is_utimer {
            summarize("LibUtimer", target, &utimer_gaps(target, n, seed))
        } else {
            summarize("kernel timer", target, &kernel_gaps(target, n, seed))
        }
    })
}

/// Renders the summary.
pub fn table(rows: &[PrecisionRow]) -> Table {
    let mut t = Table::new(&[
        "timer",
        "target (us)",
        "mean gap (us)",
        "std (us)",
        "mean rel err",
    ])
    .with_title("Fig 12: timer precision under background stress (5000 samples)");
    for r in rows {
        t.row(&[
            r.timer.to_string(),
            format!("{:.0}", r.target_us),
            format!("{:.2}", r.mean_us),
            format!("{:.2}", r.std_us),
            format!("{:.1}%", r.rel_err * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [PrecisionRow], timer: &str, target: f64) -> &'a PrecisionRow {
        rows.iter()
            .find(|r| r.timer == timer && (r.target_us - target).abs() < 1e-9)
            .expect("row")
    }

    #[test]
    fn kernel_timer_cannot_reach_20us() {
        let rows = run_fig12(Scale::Quick, 13);
        let k20 = row(&rows, "kernel timer", 20.0);
        // Fig 12: "which is why we see a line around 60us".
        assert!(
            (45.0..75.0).contains(&k20.mean_us),
            "kernel 20us target fires at {} us",
            k20.mean_us
        );
        assert!(k20.rel_err > 1.0, "rel err {}", k20.rel_err); // >100% off
    }

    #[test]
    fn utimer_holds_one_percent() {
        let rows = run_fig12(Scale::Quick, 13);
        for target in [100.0, 20.0] {
            let u = row(&rows, "LibUtimer", target);
            assert!(
                u.rel_err < 0.03,
                "LibUtimer rel err at {target}us = {}",
                u.rel_err
            );
            assert!((u.mean_us - target).abs() / target < 0.02);
        }
    }

    #[test]
    fn kernel_timer_jitters_more_than_utimer_at_100us() {
        let rows = run_fig12(Scale::Quick, 13);
        let k = row(&rows, "kernel timer", 100.0);
        let u = row(&rows, "LibUtimer", 100.0);
        assert!(k.std_us > 5.0 * u.std_us, "k {} vs u {}", k.std_us, u.std_us);
    }
}
