//! Fig. 11 — scalability of timer delivery overhead: four strategies ×
//! thread counts, 1000 interrupts at a 100 us interval.

use lp_sim::SimDur;
use lp_stats::Table;

use lp_baselines::ktimer::{measure, TimerStrategy};

use crate::common::Scale;
use crate::runner;

/// One cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerCell {
    /// Strategy label.
    pub strategy: &'static str,
    /// Thread count.
    pub threads: usize,
    /// Mean delivery overhead, us.
    pub mean_us: f64,
    /// Max delivery overhead, us.
    pub max_us: f64,
}

/// The thread-count axis.
pub const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the grid.
pub fn run_fig11(scale: Scale, seed: u64) -> Vec<TimerCell> {
    let rounds = match scale {
        Scale::Quick => 100,
        Scale::Full => 1_000,
    };
    let cells: Vec<(TimerStrategy, usize)> = TimerStrategy::ALL
        .into_iter()
        .flat_map(|s| THREADS.into_iter().map(move |t| (s, t)))
        .collect();
    runner::map_points("fig11", &cells, |_, &(strategy, threads)| {
        let o = measure(strategy, threads, rounds, SimDur::micros(100), seed);
        TimerCell {
            strategy: strategy.name(),
            threads,
            mean_us: o.mean_us,
            max_us: o.max_us,
        }
    })
}

/// Renders the grid, one row per (strategy, threads).
pub fn table(cells: &[TimerCell]) -> Table {
    let mut t = Table::new(&["strategy", "threads", "mean overhead (us)", "max (us)"])
        .with_title("Fig 11: timer delivery overhead scalability (1000 interrupts @ 100us)");
    for c in cells {
        t.row(&[
            c.strategy.to_string(),
            c.threads.to_string(),
            format!("{:.2}", c.mean_us),
            format!("{:.2}", c.max_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(cells: &[TimerCell], s: &str, n: usize) -> f64 {
        cells
            .iter()
            .find(|c| c.strategy.contains(s) && c.threads == n)
            .expect("cell")
            .mean_us
    }

    #[test]
    fn fig11_shape() {
        let cells = run_fig11(Scale::Quick, 17);
        assert_eq!(cells.len(), 4 * THREADS.len());
        // Creation-time explodes superlinearly toward ~100us at 32.
        let c32 = cell(&cells, "creation-time", 32);
        let c4 = cell(&cells, "creation-time", 4);
        assert!(c32 > 4.0 * c4, "not superlinear: {c4} -> {c32}");
        assert!(c32 > 50.0, "storm too mild: {c32}");
        // Aligned is ~10x better than creation-time at 32 threads.
        let a32 = cell(&cells, "aligned", 32);
        assert!(c32 / a32 > 5.0, "aligned gain only {}", c32 / a32);
        // User-timer achieves the best scalability.
        let u32 = cell(&cells, "user-timer", 32);
        for s in ["creation-time", "aligned", "chain"] {
            assert!(u32 < cell(&cells, s, 32), "user-timer not best vs {s}");
        }
    }

    #[test]
    fn renders() {
        let cells = run_fig11(Scale::Quick, 17);
        assert!(table(&cells).render().contains("user-timer"));
    }
}
