//! Shared experiment plumbing: run scales, system wrappers, the
//! max-throughput search, and output handling.

use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::policy::FcfsPreempt;
use libpreemptible::report::RunReport;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_baselines::{run_libinger, run_shinjuku, LibingerConfig, ShinjukuConfig};

/// How long experiments run. `Quick` keeps CI and Criterion fast;
/// `Full` regenerates the paper-scale curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs for tests/benches.
    Quick,
    /// Paper-scale runs for the experiment binaries.
    Full,
}

impl Scale {
    /// Reads `LP_SCALE=quick|full` from the environment (binaries
    /// default to full, everything else to quick).
    pub fn from_env(default: Scale) -> Scale {
        match std::env::var("LP_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => default,
        }
    }

    /// Steady-state run length per measured point.
    pub fn point_duration(self) -> SimDur {
        match self {
            Scale::Quick => SimDur::millis(40),
            Scale::Full => SimDur::millis(400),
        }
    }

    /// Warmup excluded from statistics.
    pub fn warmup(self) -> SimDur {
        self.point_duration() / 10
    }

    /// Number of points in a load sweep.
    pub fn sweep_points(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 9,
        }
    }

    /// Iterations for sampling microbenchmarks.
    pub fn samples(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 1_000_000,
        }
    }
}

/// The systems compared in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemUnderTest {
    /// LibPreemptible with UINTR and the adaptive quantum.
    LibPreemptible,
    /// LibPreemptible with UINTR disabled (ordinary timed interrupts).
    LibPreemptibleNoUintr,
    /// Shinjuku with a profiled static quantum.
    Shinjuku,
    /// Libinger (kernel timers + signals).
    Libinger,
}

impl SystemUnderTest {
    /// All four systems in the paper's legend order.
    pub const ALL: [SystemUnderTest; 4] = [
        SystemUnderTest::LibPreemptible,
        SystemUnderTest::LibPreemptibleNoUintr,
        SystemUnderTest::Shinjuku,
        SystemUnderTest::Libinger,
    ];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            SystemUnderTest::LibPreemptible => "LibPreemptible",
            SystemUnderTest::LibPreemptibleNoUintr => "LibPreemptible w/o UINTR",
            SystemUnderTest::Shinjuku => "Shinjuku",
            SystemUnderTest::Libinger => "Libinger",
        }
    }

    /// Worker count matching the paper's "1 network thread, 5 worker
    /// threads for Shinjuku and Libinger, and 1 network thread, 4
    /// worker threads (+1 timer thread) for LibPreemptible".
    pub fn workers(self) -> usize {
        match self {
            SystemUnderTest::LibPreemptible | SystemUnderTest::LibPreemptibleNoUintr => 4,
            SystemUnderTest::Shinjuku | SystemUnderTest::Libinger => 5,
        }
    }
}

/// One synthetic workload of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperWorkload {
    /// Bimodal 99.5% 0.5 us / 0.5% 500 us.
    A1,
    /// Bimodal 99.5% 5 us / 0.5% 500 us.
    A2,
    /// Exponential mean 5 us.
    B,
    /// First half A1, second half B.
    C,
}

impl PaperWorkload {
    /// The four workloads in paper order.
    pub const ALL: [PaperWorkload; 4] = [
        PaperWorkload::A1,
        PaperWorkload::A2,
        PaperWorkload::B,
        PaperWorkload::C,
    ];

    /// Label used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperWorkload::A1 => "A1",
            PaperWorkload::A2 => "A2",
            PaperWorkload::B => "B",
            PaperWorkload::C => "C",
        }
    }

    /// The phased service distribution over a run of `duration`.
    pub fn service(self, duration: SimDur) -> PhasedService {
        match self {
            PaperWorkload::A1 => PhasedService::constant(ServiceDist::workload_a1()),
            PaperWorkload::A2 => PhasedService::constant(ServiceDist::workload_a2()),
            PaperWorkload::B => PhasedService::constant(ServiceDist::workload_b()),
            PaperWorkload::C => PhasedService::workload_c(duration),
        }
    }

    /// Mean service time used for capacity math. For C the *binding*
    /// phase is B (5 us mean > A1's ~3 us), so utilization is defined
    /// against it — otherwise nominal ρ ≥ 0.6 would silently saturate
    /// the second half of the run.
    pub fn mean_service(self) -> SimDur {
        match self {
            PaperWorkload::A1 => ServiceDist::workload_a1().mean(),
            PaperWorkload::A2 => ServiceDist::workload_a2().mean(),
            PaperWorkload::B | PaperWorkload::C => ServiceDist::workload_b().mean(),
        }
    }

    /// Arrival rate for utilization `rho` on `workers` cores.
    pub fn rate_for(self, rho: f64, workers: usize) -> f64 {
        rho * workers as f64 / self.mean_service().as_secs_f64()
    }
}

/// Runs one system on one workload at one constant arrival rate.
pub fn run_system(
    sys: SystemUnderTest,
    wl: PaperWorkload,
    rate_rps: f64,
    scale: Scale,
    seed: u64,
) -> RunReport {
    let duration = scale.point_duration();
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(wl.service(duration)),
        arrivals: RateSchedule::Constant(rate_rps),
        duration,
        warmup: scale.warmup(),
    };
    run_system_spec(sys, wl, spec, seed)
}

/// Runs one system on an explicit workload spec.
pub fn run_system_spec(
    sys: SystemUnderTest,
    wl: PaperWorkload,
    spec: WorkloadSpec,
    seed: u64,
) -> RunReport {
    // Control period scaled down from the paper's 10 s so the
    // controller acts several times within a sub-second simulation.
    let control_period = (spec.duration / 40).max(SimDur::millis(2));
    match sys {
        SystemUnderTest::LibPreemptible | SystemUnderTest::LibPreemptibleNoUintr => {
            let mech = if sys == SystemUnderTest::LibPreemptible {
                PreemptMech::Uintr
            } else {
                PreemptMech::TimerCoreSignal
            };
            let max_load = wl.rate_for(1.0, sys.workers());
            let mut adaptive = AdaptiveConfig::paper_defaults(max_load);
            adaptive.period = control_period;
            let ctl = QuantumController::new(adaptive, SimDur::micros(10));
            let cfg = RuntimeConfig {
                workers: sys.workers(),
                mech,
                seed,
                control_period,
                ..RuntimeConfig::default()
            };
            run(cfg, Box::new(FcfsPreempt::adaptive(ctl)), spec)
        }
        SystemUnderTest::Shinjuku => {
            let quantum = shinjuku_profiled_quantum(wl);
            run_shinjuku(
                ShinjukuConfig {
                    workers: sys.workers(),
                    quantum,
                    seed,
                    ..ShinjukuConfig::default()
                },
                spec,
            )
        }
        SystemUnderTest::Libinger => run_libinger(
            LibingerConfig {
                workers: sys.workers(),
                quantum: SimDur::micros(60),
                seed,
            },
            spec,
        ),
    }
}

/// The statically profiled Shinjuku quantum per workload (§V-A:
/// "Shinjuku needs to do careful profiling to select the right time
/// quanta"). Values found by sweeping {5, 10, 25, 100} us offline.
pub fn shinjuku_profiled_quantum(wl: PaperWorkload) -> SimDur {
    match wl {
        PaperWorkload::A1 | PaperWorkload::A2 => SimDur::micros(5),
        PaperWorkload::B => SimDur::micros(25),
        // C shifts mid-run; a static quantum must compromise.
        PaperWorkload::C => SimDur::micros(10),
    }
}

/// The paper's maximum-throughput criterion: the highest offered load
/// whose p99 stays below `200 x` the low-load average latency.
///
/// `run_at` maps an offered rate to a report. The search walks the
/// given utilization grid (ascending) and returns the last sustainable
/// measured throughput.
pub fn max_throughput(
    capacity_rps: f64,
    baseline_avg_us: f64,
    utils: &[f64],
    mut run_at: impl FnMut(f64) -> RunReport,
) -> f64 {
    let reports: Vec<RunReport> = utils.iter().map(|&u| run_at(u * capacity_rps)).collect();
    max_throughput_from_reports(baseline_avg_us, &reports)
}

/// The reduction half of [`max_throughput`], over already-measured
/// reports (in ascending-utilization order). Split out so the parallel
/// runner can fan the measurements out first and reduce afterwards —
/// the criterion itself is pure arithmetic, so the result is identical
/// either way.
pub fn max_throughput_from_reports(baseline_avg_us: f64, reports: &[RunReport]) -> f64 {
    let bound_us = 200.0 * baseline_avg_us;
    let mut best = 0.0f64;
    for r in reports {
        if r.p99_us() <= bound_us {
            best = best.max(r.throughput_rps());
        }
    }
    best
}

/// Writes `contents` under `results/<name>` (best effort — printing is
/// the primary output).
pub fn save_csv(name: &str, contents: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), contents);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert!(Scale::Full.point_duration() > Scale::Quick.point_duration());
        assert!(Scale::Quick.warmup() < Scale::Quick.point_duration());
        assert!(Scale::Full.sweep_points() >= Scale::Quick.sweep_points());
    }

    #[test]
    fn workload_capacity_math() {
        // B: 5us mean on 5 workers at rho=1 -> 1M rps.
        let r = PaperWorkload::B.rate_for(1.0, 5);
        assert!((r - 1_000_000.0).abs() < 1.0);
        // A1: ~2.9975us mean on 4 workers at rho=0.5.
        let r = PaperWorkload::A1.rate_for(0.5, 4);
        assert!((r - 0.5 * 4.0 / 2.9975e-6).abs() / r < 0.01);
    }

    #[test]
    fn all_systems_run_quick_point() {
        for sys in SystemUnderTest::ALL {
            let rate = PaperWorkload::A1.rate_for(0.3, sys.workers());
            let r = run_system(sys, PaperWorkload::A1, rate, Scale::Quick, 7);
            assert!(r.is_conserved(), "{}: {r:?}", sys.name());
            assert!(r.completions > 100, "{} too few completions", sys.name());
        }
    }

    #[test]
    fn max_throughput_monotone_criterion() {
        // A fake system whose p99 explodes above 70% of capacity.
        let got = max_throughput(100_000.0, 10.0, &[0.3, 0.5, 0.7, 0.9], |rate| {
            let mut latency = lp_stats::Histogram::new();
            let p99 = if rate > 70_000.0 { 3_000_000 } else { 100_000 };
            latency.record_n(p99, 100);
            RunReport {
                system: "fake".into(),
                offered_rps: rate,
                duration: SimDur::secs(1),
                arrivals: rate as u64,
                completions: rate as u64,
                dropped: 0,
                in_flight: 0,
                oldest_inflight_ns: 0,
                latency,
                latency_by_class: vec![],
                preemptions: 0,
                spurious_preemptions: 0,
                cores: lp_hw::CoreClock::new(),
                per_worker: vec![],
                timer_core: lp_hw::CoreClock::new(),
                latency_series: vec![],
                qps_series: None,
                quantum_series: None,
                slo_series: None,
                final_quantum: SimDur::ZERO,
                metrics: Default::default(),
                events: vec![],
                events_dropped: 0,
                phases: Default::default(),
            }
        });
        // rate = 70k is not strictly above the knee, so 0.7 is the last
        // sustainable point.
        assert!((got - 70_000.0).abs() < 1.0, "got {got}");
    }
}
