//! Extension experiments beyond the numbered figures:
//!
//! * **X1 (§V-B)** — timer-core power: busy-spin vs UMWAIT vs the
//!   hardware-offload future-work variant.
//! * **X2 (§VII)** — interrupt-storm attack surface: vectors reachable
//!   by an untrusted sender under native UINTR vs LibPreemptible's
//!   timer-core-only UITT.
//! * **X3 (§III-B)** — the 3 us minimum time slice: preemption overhead
//!   vs quantum, locating the smallest quantum with tolerable overhead.
//! * **X4 (§VII-C)** — hardware-offloaded timer: performance with no
//!   timer core at all.

use lp_hw::uintr::{ReceiverState, UintrDomain, Uitt};
use lp_hw::{HwCosts, PollMode, PowerModel};
use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::policy::FcfsPreempt;
use libpreemptible::runtime::{run, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;

/// X1: power of the dedicated timer core(s).
pub fn power_table() -> Table {
    let p = PowerModel::default();
    let mut t = Table::new(&["configuration", "power (W)"])
        .with_title("X1: timer-core power cost (§V-B)");
    t.row(&[
        "1 timer core, busy spin".into(),
        format!("{:.2}", p.timer_power_w(1, PollMode::BusySpin)),
    ]);
    t.row(&[
        "1 timer core, UMWAIT".into(),
        format!("{:.2}", p.timer_power_w(1, PollMode::Umwait)),
    ]);
    t.row(&[
        "4 timer cores, UMWAIT".into(),
        format!("{:.2}", p.timer_power_w(4, PollMode::Umwait)),
    ]);
    t.row(&[
        "hardware-offloaded timer (X4)".into(),
        format!("{:.2}", p.timer_power_w(0, PollMode::Umwait)),
    ]);
    t
}

/// X2: how many interrupt vectors can an untrusted co-tenant hit?
///
/// Under native UINTR any process holding a `uintr_fd` can storm its
/// receiver. Under LibPreemptible the only UITT entries connect the
/// (trusted) timer core to the workers, so a co-tenant holds zero
/// entries. We count reachable (sender, vector) pairs.
pub fn attack_surface(workers: usize) -> (usize, usize) {
    // Native: the victim shares a uintr_fd with the co-tenant (e.g. a
    // shared-memory notification channel) — the co-tenant can send on
    // every vector the fd family exposes.
    let mut dom = UintrDomain::new();
    let victim = dom.register_receiver();
    let mut cotenant_uitt = Uitt::new();
    let native_vectors = 64usize;
    for v in 0..native_vectors as u8 {
        cotenant_uitt.register(victim, v);
    }
    // Every registered entry can deliver.
    let native_reachable = (0..native_vectors)
        .filter(|&i| {
            cotenant_uitt
                .get(i)
                .map(|e| dom.senduipi(e, ReceiverState::RunningUifSet).is_ok())
                .unwrap_or(false)
        })
        .count();

    // LibPreemptible: the co-tenant's UITT is empty — the kernel only
    // installed timer-core → worker entries (vector 0), none owned by
    // the co-tenant.
    let lp_cotenant_uitt = Uitt::new();
    let lp_reachable = (0..workers).filter(|&i| lp_cotenant_uitt.get(i).is_some()).count();
    (native_reachable, lp_reachable)
}

/// X2 rendered.
pub fn security_table() -> Table {
    let (native, lp) = attack_surface(8);
    let mut t = Table::new(&["configuration", "vectors reachable by untrusted sender"])
        .with_title("X2: interrupt-storm attack surface (§VII)");
    t.row(&["native UINTR (shared uintr_fd)".into(), native.to_string()]);
    t.row(&["LibPreemptible (timer-core-only UITT)".into(), lp.to_string()]);
    t
}

/// X3: one row of the minimum-quantum study.
#[derive(Debug, Clone, PartialEq)]
pub struct MinQuantumRow {
    /// The quantum, us.
    pub quantum_us: u64,
    /// Preemption overhead over useful work.
    pub overhead: f64,
    /// p99, us.
    pub p99_us: f64,
}

/// X3: sweep small quanta on a preemption-heavy workload and report
/// overhead; the paper's claim is that 3 us is workable under UINTR.
pub fn run_min_quantum(scale: Scale, seed: u64) -> Vec<MinQuantumRow> {
    let quanta: &[u64] = &[1, 2, 3, 5, 10, 25];
    let dist = ServiceDist::Constant(SimDur::micros(50)); // always preempted
    let rate = dist.rate_for_utilization(0.6, 4);
    quanta
        .iter()
        .map(|&q| {
            let duration = scale.point_duration();
            let r = run(
                RuntimeConfig {
                    workers: 4,
                    seed,
                    ..RuntimeConfig::default()
                },
                Box::new(FcfsPreempt::fixed(SimDur::micros(q))),
                WorkloadSpec {
                    source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
                    arrivals: RateSchedule::Constant(rate),
                    duration,
                    warmup: scale.warmup(),
                },
            );
            MinQuantumRow {
                quantum_us: q,
                overhead: r.preemption_overhead_ratio(),
                p99_us: r.p99_us(),
            }
        })
        .collect()
}

/// X3 rendered.
pub fn min_quantum_table(rows: &[MinQuantumRow]) -> Table {
    let mut t = Table::new(&["quantum (us)", "preemption/work", "p99 (us)"])
        .with_title("X3: minimum time slice (3us claim, §III-B)");
    for r in rows {
        t.row(&[
            r.quantum_us.to_string(),
            format!("{:.3}", r.overhead),
            format!("{:.1}", r.p99_us),
        ]);
    }
    t
}

/// X4: compare the dedicated timer core against the hardware-offloaded
/// timer on the A1 workload at high load. Returns (timer-core p99,
/// offload p99) in us.
pub fn run_hw_offload(scale: Scale, seed: u64) -> (f64, f64) {
    let dist = ServiceDist::workload_a1();
    let rate = dist.rate_for_utilization(0.8, 4);
    let duration = scale.point_duration();
    let mk_spec = || WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
        arrivals: RateSchedule::Constant(rate),
        duration,
        warmup: scale.warmup(),
    };
    let base = run(
        RuntimeConfig {
            workers: 4,
            seed,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
        mk_spec(),
    );
    let offload = run(
        RuntimeConfig {
            workers: 4,
            seed,
            hw: HwCosts::hw_offload_timer(),
            timer_cores: 0,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
        mk_spec(),
    );
    (base.p99_us(), offload.p99_us())
}

/// X4 rendered.
pub fn hw_offload_table(scale: Scale, seed: u64) -> Table {
    let (base, offload) = run_hw_offload(scale, seed);
    let mut t = Table::new(&["timer implementation", "A1 p99 @ rho=0.8 (us)"])
        .with_title("X4: hardware-offloaded timer (§VII-C future work)");
    t.row(&["dedicated timer core (UMWAIT poll)".into(), format!("{base:.1}")]);
    t.row(&["hardware timer offload".into(), format!("{offload:.1}")]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_anchors() {
        let t = power_table();
        let s = t.render();
        assert!(s.contains("1.20"), "UMWAIT first core must be 1.2W:\n{s}");
        assert!(s.contains("0.00"), "offload must be 0W");
    }

    #[test]
    fn libpreemptible_shrinks_attack_surface_to_zero() {
        let (native, lp) = attack_surface(8);
        assert_eq!(native, 64);
        assert_eq!(lp, 0);
    }

    #[test]
    fn three_us_quantum_is_workable_but_one_us_is_not() {
        let rows = run_min_quantum(Scale::Quick, 41);
        let at = |q: u64| rows.iter().find(|r| r.quantum_us == q).unwrap();
        // Overhead decreases with the quantum.
        assert!(at(1).overhead > at(3).overhead);
        assert!(at(3).overhead > at(25).overhead);
        // At 3us the mechanism costs well under 35% of work (the
        // per-preemption cost is ~0.6us against 3us slices);
        // at 1us it is materially worse.
        assert!(at(3).overhead < 0.35, "3us overhead = {}", at(3).overhead);
        assert!(at(1).overhead > 1.5 * at(3).overhead);
    }

    #[test]
    fn hw_offload_at_least_matches_timer_core() {
        let (base, offload) = run_hw_offload(Scale::Quick, 41);
        assert!(
            offload <= base * 1.2,
            "offload p99 {offload} should not regress vs {base}"
        );
    }
}
