//! The deterministic parallel experiment runner.
//!
//! Every figure in the paper's evaluation is a grid of independent
//! simulation points — `(system, workload, rate, seed)` tuples that
//! share nothing but their inputs. The runner executes those grids on
//! a fixed-size scoped-thread pool ([`lp_sim::par::ordered_map`])
//! while keeping every observable output **byte-identical** to the
//! serial loop it replaced:
//!
//! * points are keyed by an explicit [`PointId`] (artifact name +
//!   submission index);
//! * results come back in submission order, so tables and CSVs render
//!   the same bytes at any job count;
//! * `LP_JOBS=1` forces the serial path exactly (no pool is created);
//! * nested fan-outs (the `all` binary running figure modules that fan
//!   out their own grids) degrade to inline execution instead of
//!   spawning a second level of threads.
//!
//! Job-count resolution order: a [`with_jobs`] override (used by tests
//! and `lp-bench` so they never race on the environment) → the
//! `LP_JOBS` environment variable → the machine's available
//! parallelism. The tier-1 test `tests/determinism.rs` pins the
//! byte-identity claim across `LP_JOBS=1,2,8`; the architecture and
//! the determinism argument are written up in `docs/PERFORMANCE.md`.

use std::cell::Cell;

use lp_stats::Table;

use crate::common::Scale;

/// Identifies one submitted point of an artifact's grid, for labeling
/// and debugging parallel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointId {
    /// The artifact (figure/table) the point belongs to.
    pub artifact: &'static str,
    /// Submission index within the artifact's grid — equals the index
    /// of the result in the returned `Vec`.
    pub index: usize,
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.artifact, self.index)
    }
}

thread_local! {
    /// A scoped override installed by [`with_jobs`].
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of pool workers a fan-out will use: the innermost
/// [`with_jobs`] override if any, else `LP_JOBS` from the environment,
/// else the machine's available parallelism.
pub fn jobs() -> usize {
    if let Some(n) = JOBS_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("LP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    // Covered by the lint's static nondet allowlist: the job count
    // changes wall-clock only, never output bytes (see docs/CHECKS.md).
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Runs `f` with the runner's job count pinned to `jobs`, restoring
/// the previous setting afterwards (panic-safe). This is how tests and
/// `lp-bench` compare serial against parallel execution without
/// mutating the process environment.
pub fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(JOBS_OVERRIDE.with(|c| c.replace(Some(jobs.max(1)))));
    f()
}

/// Executes `f` over every point of an artifact's grid on the pool,
/// returning results in submission order.
///
/// This is the single entry point the figure modules fan out through;
/// it exists (rather than calling `lp_sim::par` directly) so the job
/// count, the [`PointId`] key, and the serial fallback are decided in
/// exactly one place.
pub fn map_points<T, U, F>(artifact: &'static str, points: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(PointId, &T) -> U + Sync,
{
    lp_sim::par::ordered_map(jobs(), points, move |index, point| {
        f(PointId { artifact, index }, point)
    })
}

// ---------------------------------------------------------------------------
// Artifact submission: the `all` binary's paper-order run list.
// ---------------------------------------------------------------------------

/// Everything one artifact produces: tables to print (in order) and
/// CSV files to save under `results/`.
pub struct ArtifactOutput {
    /// Rendered tables, printed in order.
    pub tables: Vec<Table>,
    /// `(file name, contents)` pairs for `results/<name>`.
    pub csvs: Vec<(&'static str, String)>,
}

impl ArtifactOutput {
    fn new() -> Self {
        ArtifactOutput {
            tables: Vec::new(),
            csvs: Vec::new(),
        }
    }

    /// Adds a table and saves it as `results/<csv_name>` too.
    fn saved(mut self, csv_name: &'static str, t: Table) -> Self {
        self.csvs.push((csv_name, t.to_csv()));
        self.tables.push(t);
        self
    }

    /// Adds a table that is printed but not saved.
    fn printed(mut self, t: Table) -> Self {
        self.tables.push(t);
        self
    }
}

/// One named entry of the paper-order experiment list.
pub struct Artifact {
    /// Short name (matches the module / result file stem).
    pub name: &'static str,
    run: fn(Scale, u64) -> ArtifactOutput,
}

impl Artifact {
    /// Runs the artifact at the given scale and seed.
    pub fn run(&self, scale: Scale, seed: u64) -> ArtifactOutput {
        (self.run)(scale, seed)
    }
}

/// The complete evaluation in paper order — the run list behind
/// `cargo run -p lp-experiments --bin all`, also reused by `lp-bench`
/// to time quick-scale wall-clock serial vs. parallel.
///
/// Each artifact internally fans its point grid out through
/// [`map_points`]; the list itself is executed in order so stdout
/// stays in paper order.
pub fn all_artifacts() -> Vec<Artifact> {
    vec![
        Artifact {
            name: "table1",
            run: |_, _| ArtifactOutput::new().saved("table1.csv", crate::table1::run()),
        },
        Artifact {
            name: "fig1",
            run: |scale, _| {
                let (tl, tr) =
                    crate::fig1::tables(&crate::fig1::run_left(scale), &crate::fig1::run_right(scale));
                ArtifactOutput::new()
                    .saved("fig1_left.csv", tl)
                    .saved("fig1_right.csv", tr)
            },
        },
        Artifact {
            name: "fig2",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved("fig2.csv", crate::fig2::table(&crate::fig2::run_fig2(scale, seed)))
            },
        },
        Artifact {
            name: "fig8",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved(
                        "fig8_sweep.csv",
                        crate::fig8::sweep_table(&crate::fig8::run_fig8(scale, seed)),
                    )
                    .saved(
                        "fig8_max.csv",
                        crate::fig8::max_table(&crate::fig8::run_max_throughput(scale, seed)),
                    )
            },
        },
        Artifact {
            name: "fig9",
            run: |scale, seed| {
                let rows = crate::fig9::run_fig9(scale, seed);
                ArtifactOutput::new()
                    .saved("fig9.csv", crate::fig9::table(&rows))
                    .saved("fig9_trace.csv", crate::fig9::quantum_trace(&rows))
            },
        },
        Artifact {
            name: "fig10",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved("fig10.csv", crate::fig10::table(&crate::fig10::run_fig10(scale, seed)))
            },
        },
        Artifact {
            name: "table4",
            run: |scale, _| {
                ArtifactOutput::new().saved("table4.csv", crate::table4::table(&crate::table4::run(scale)))
            },
        },
        Artifact {
            name: "fig11",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved("fig11.csv", crate::fig11::table(&crate::fig11::run_fig11(scale, seed)))
            },
        },
        Artifact {
            name: "fig12",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved("fig12.csv", crate::fig12::table(&crate::fig12::run_fig12(scale, seed)))
            },
        },
        Artifact {
            name: "fig13",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved(
                        "fig13_left.csv",
                        crate::fig13::table(
                            &crate::fig13::run_left(scale, seed),
                            "Fig 13 (left): fixed 30us quantum vs load",
                        ),
                    )
                    .saved(
                        "fig13_right.csv",
                        crate::fig13::table(
                            &crate::fig13::run_right(scale, seed),
                            "Fig 13 (right): quantum sweep at 55 kRPS",
                        ),
                    )
            },
        },
        Artifact {
            name: "fig14",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .saved("fig14.csv", crate::fig14::table(&crate::fig14::run_fig14(scale, seed)))
            },
        },
        Artifact {
            name: "ext",
            run: |scale, seed| {
                ArtifactOutput::new()
                    .printed(crate::ext::power_table())
                    .printed(crate::ext::security_table())
                    .printed(crate::ext::min_quantum_table(&crate::ext::run_min_quantum(
                        scale, seed,
                    )))
                    .printed(crate::ext::hw_offload_table(scale, seed))
            },
        },
    ]
}

/// Runs a list of artifacts in submission order, returning each one's
/// output paired with its name. The artifact sequence itself stays on
/// the calling thread (stdout must follow paper order anyway); the
/// parallelism lives inside each artifact's point grid.
pub fn run_artifacts(
    artifacts: &[Artifact],
    scale: Scale,
    seed: u64,
) -> Vec<(&'static str, ArtifactOutput)> {
    artifacts
        .iter()
        .map(|a| (a.name, a.run(scale, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_jobs_overrides_and_restores() {
        let outer = jobs();
        let inner = with_jobs(3, || {
            assert_eq!(jobs(), 3);
            with_jobs(1, jobs)
        });
        assert_eq!(inner, 1);
        assert_eq!(jobs(), outer, "override leaked past with_jobs");
    }

    #[test]
    fn with_jobs_floors_at_one() {
        assert_eq!(with_jobs(0, jobs), 1);
    }

    #[test]
    fn map_points_keys_and_order() {
        let pts: Vec<u64> = (0..100).collect();
        let out = with_jobs(8, || {
            map_points("test", &pts, |id, &x| {
                assert_eq!(id.artifact, "test");
                (id.index as u64, x * 2)
            })
        });
        let serial = with_jobs(1, || map_points("test", &pts, |id, &x| (id.index as u64, x * 2)));
        assert_eq!(out, serial);
        assert!(out.iter().enumerate().all(|(i, &(idx, _))| idx == i as u64));
    }

    #[test]
    fn artifact_list_is_paper_ordered() {
        let names: Vec<&str> = all_artifacts().iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "table1", "fig1", "fig2", "fig8", "fig9", "fig10", "table4", "fig11", "fig12",
                "fig13", "fig14", "ext"
            ]
        );
    }

    #[test]
    fn point_id_display() {
        let id = PointId { artifact: "fig8", index: 17 };
        assert_eq!(id.to_string(), "fig8#17");
    }
}
