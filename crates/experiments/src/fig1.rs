//! Fig. 1 — the motivation figure.
//!
//! **Left:** the gap between software-based IPC delivery (signals,
//! regular interrupts) and hardware-assisted delivery (UINTR).
//!
//! **Right:** CPU time spent in preemption relative to lean execution
//! time for microsecond-scale workloads running on Shinjuku, ranked by
//! workload dispersion (SCV), each at the time quantum that gives that
//! workload its best tail latency.

use lp_kernel::{IpcLatency, IpcMechanism};
use lp_sim::rng::rng;
use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::runtime::{ServiceSource, WorkloadSpec};
use lp_baselines::{run_shinjuku, ShinjukuConfig};

use crate::common::Scale;

/// One bar of Fig. 1 (left).
#[derive(Debug, Clone, PartialEq)]
pub struct IpcGapRow {
    /// Delivery path label.
    pub path: &'static str,
    /// Mean one-way delivery latency, us.
    pub mean_us: f64,
}

/// Fig. 1 (left): delivery latency of the three classes of IPC.
pub fn run_left(scale: Scale) -> Vec<IpcGapRow> {
    let lat = IpcLatency::default();
    let n = scale.samples() / 10;
    let mean = |mech: IpcMechanism, seed: u64| {
        let mut r = rng(seed, 3);
        (0..n).map(|_| lat.sample(mech, &mut r).as_micros_f64()).sum::<f64>() / n as f64
    };
    vec![
        IpcGapRow {
            path: "software IPC (signal)",
            mean_us: mean(IpcMechanism::Signal, 1),
        },
        IpcGapRow {
            path: "software IPC (best: mq)",
            mean_us: mean(IpcMechanism::MessageQueue, 2),
        },
        IpcGapRow {
            path: "hardware IPC (UINTR)",
            mean_us: mean(IpcMechanism::UintrFd, 3),
        },
    ]
}

/// One bar of Fig. 1 (right).
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Workload label.
    pub workload: String,
    /// Squared coefficient of variation (dispersion rank key).
    pub scv: f64,
    /// The quantum that gave the best p99 for this workload.
    pub best_quantum_us: f64,
    /// Preemption CPU time normalized to execution time on Shinjuku.
    pub overhead_ratio: f64,
}

/// The workload ladder for the dispersion ranking, least to most
/// dispersive.
fn workload_ladder() -> Vec<(&'static str, ServiceDist)> {
    vec![
        ("constant 5us", ServiceDist::Constant(SimDur::micros(5))),
        (
            "exp mean 5us",
            ServiceDist::Exponential {
                mean: SimDur::micros(5),
            },
        ),
        (
            "lognormal s=1.5",
            ServiceDist::Lognormal {
                median: SimDur::micros(3),
                sigma: 1.5,
            },
        ),
        ("bimodal A2", ServiceDist::workload_a2()),
        ("bimodal A1", ServiceDist::workload_a1()),
    ]
}

/// Fig. 1 (right): preemption overhead vs dispersion on Shinjuku at
/// each workload's tail-optimal quantum.
pub fn run_right(scale: Scale) -> Vec<OverheadRow> {
    let quanta = [5u64, 10, 25, 100];
    let mut rows = Vec::new();
    for (name, dist) in workload_ladder() {
        let duration = scale.point_duration();
        let rate = 0.7 * 5.0 / dist.mean().as_secs_f64();
        let mut best: Option<(f64, f64, f64)> = None; // (p99, quantum, overhead)
        for q in quanta {
            let r = run_shinjuku(
                ShinjukuConfig {
                    quantum: SimDur::micros(q),
                    ..ShinjukuConfig::default()
                },
                WorkloadSpec {
                    source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
                    arrivals: RateSchedule::Constant(rate),
                    duration,
                    warmup: scale.warmup(),
                },
            );
            let cand = (r.p99_us(), q as f64, r.preemption_overhead_ratio());
            if best.map(|b| cand.0 < b.0).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let (_, best_q, overhead) = best.expect("at least one quantum");
        rows.push(OverheadRow {
            workload: name.to_string(),
            scv: dist.scv(),
            best_quantum_us: best_q,
            overhead_ratio: overhead,
        });
    }
    rows
}

/// Renders both panels.
pub fn tables(left: &[IpcGapRow], right: &[OverheadRow]) -> (Table, Table) {
    let mut tl = Table::new(&["delivery path", "mean latency (us)"])
        .with_title("Fig 1 (left): software vs hardware IPC delivery");
    for r in left {
        tl.row(&[r.path.to_string(), format!("{:.3}", r.mean_us)]);
    }
    let mut tr = Table::new(&[
        "workload",
        "SCV (dispersion)",
        "best quantum (us)",
        "preemption/exec",
    ])
    .with_title("Fig 1 (right): preemption overhead on Shinjuku, ranked by dispersion");
    for r in right {
        tr.row(&[
            r.workload.clone(),
            format!("{:.1}", r.scv),
            format!("{:.0}", r.best_quantum_us),
            format!("{:.3}", r.overhead_ratio),
        ]);
    }
    (tl, tr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_panel_shows_hw_gap() {
        let rows = run_left(Scale::Quick);
        let sw = rows[0].mean_us.min(rows[1].mean_us);
        let hw = rows[2].mean_us;
        assert!(sw / hw > 8.0, "gap = {}", sw / hw);
    }

    #[test]
    fn right_panel_overhead_grows_with_dispersion() {
        let rows = run_right(Scale::Quick);
        assert_eq!(rows.len(), 5);
        // Ladder is ordered by SCV.
        for w in rows.windows(2) {
            assert!(w[0].scv <= w[1].scv + 1e-9);
        }
        // The most dispersive workload pays measurably more preemption
        // overhead than the constant one.
        let first = rows.first().unwrap().overhead_ratio;
        let last = rows.last().unwrap().overhead_ratio;
        assert!(
            last > first,
            "overhead should grow with dispersion: {first} -> {last}"
        );
        // Microsecond-scale dispersive workloads lose >1% to preemption.
        assert!(last > 0.01, "A1 overhead = {last}");
    }

    #[test]
    fn tables_render() {
        let (tl, tr) = tables(&run_left(Scale::Quick), &run_right(Scale::Quick));
        assert!(tl.render().contains("UINTR"));
        assert!(tr.render().contains("bimodal A1"));
    }
}
