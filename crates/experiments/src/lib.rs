//! # lp-experiments — regenerating every table and figure of the paper
//!
//! One module per artifact; one binary per module (plus `all`). Each
//! module exposes a `run_*` returning structured results and a
//! `table`/`tables` rendering exactly the rows the paper reports. The
//! experiment index lives in DESIGN.md §3; paper-vs-measured deltas in
//! EXPERIMENTS.md.
//!
//! Run everything at paper scale:
//!
//! ```text
//! cargo run --release -p lp-experiments --bin all
//! ```
//!
//! or a single artifact, e.g. `--bin fig8`. Set `LP_SCALE=quick` for a
//! fast pass. Independent sweep points fan out across `LP_JOBS` worker
//! threads (default: all cores) through [`runner`], with output
//! byte-identical to `LP_JOBS=1` — see `docs/PERFORMANCE.md` for the
//! architecture and the determinism argument.

#![warn(missing_docs)]

pub mod common;
pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig8;
pub mod fig9;
pub mod figa;
pub mod figr;
pub mod figw;
pub mod runner;
pub mod table1;
pub mod table4;
pub mod tournament;
pub mod traces;

pub use common::{PaperWorkload, Scale, SystemUnderTest};

/// Default seed used by the experiment binaries.
pub const DEFAULT_SEED: u64 = 2024;
