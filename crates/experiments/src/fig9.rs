//! Fig. 9 — adaptive time quanta reduce SLO violations on workload C.
//!
//! Workload C shifts from heavy-tailed (A1) to light-tailed (B)
//! mid-run. A static quantum must pick a side; Algorithm 1 tracks the
//! shift. The figure reports SLO violations (50 us) and shows the
//! quantum trace.

use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::RateSchedule;

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::policy::FcfsPreempt;
use libpreemptible::report::RunReport;
use libpreemptible::runtime::{run, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::{PaperWorkload, Scale};
use crate::runner;

/// Result of one policy variant.
#[derive(Debug)]
pub struct Fig9Row {
    /// Policy label.
    pub policy: String,
    /// Fraction of requests violating the 50 us SLO.
    pub slo_violation_frac: f64,
    /// p99, us.
    pub p99_us: f64,
    /// Quantum at the end of the run, us.
    pub final_quantum_us: f64,
    /// The full report (for the quantum trace).
    pub report: RunReport,
}

/// The SLO of the figure.
pub const SLO: SimDur = SimDur::micros(50);

/// Runs workload C under a static-small, static-large, and adaptive
/// quantum.
pub fn run_fig9(scale: Scale, seed: u64) -> Vec<Fig9Row> {
    let workers = 4;
    let duration = scale.point_duration() * 4; // C needs both phases
    let rate = PaperWorkload::C.rate_for(0.75, workers);
    let control_period = (duration / 60).max(SimDur::millis(2));
    let series = Some((duration / 40).max(SimDur::millis(1)));

    let mk_spec = || WorkloadSpec {
        source: ServiceSource::Phased(PaperWorkload::C.service(duration)),
        arrivals: RateSchedule::Constant(rate),
        duration,
        warmup: scale.warmup(),
    };
    let mk_cfg = || RuntimeConfig {
        workers,
        seed,
        control_period,
        series_frame: series,
        slo: Some(SLO),
        ..RuntimeConfig::default()
    };

    // The three policy variants are independent runs; the controller
    // state is not `Sync`, so each point builds its own policy inside
    // the closure and the grid fans out through the parallel runner.
    let labels: [&'static str; 3] = ["static 5us", "static 50us", "adaptive (Alg. 1)"];
    runner::map_points("fig9", &labels, |id, &label| {
        let policy = match id.index {
            0 => FcfsPreempt::fixed(SimDur::micros(5)),
            1 => FcfsPreempt::fixed(SimDur::micros(50)),
            _ => {
                let mut cfg =
                    AdaptiveConfig::paper_defaults(PaperWorkload::C.rate_for(1.0, workers));
                cfg.period = control_period;
                FcfsPreempt::adaptive(QuantumController::new(cfg, SimDur::micros(20)))
            }
        };
        let r = run(mk_cfg(), Box::new(policy), mk_spec());
        Fig9Row {
            policy: label.to_string(),
            slo_violation_frac: r.slo_violations(SLO),
            p99_us: r.p99_us(),
            final_quantum_us: r.final_quantum.as_micros_f64(),
            report: r,
        }
    })
}

/// Renders the summary table.
pub fn table(rows: &[Fig9Row]) -> Table {
    let mut t = Table::new(&[
        "policy",
        "SLO (50us) violations",
        "p99 (us)",
        "final quantum (us)",
    ])
    .with_title("Fig 9: adaptive quanta vs SLO violations on workload C");
    for r in rows {
        t.row(&[
            r.policy.clone(),
            format!("{:.2}%", r.slo_violation_frac * 100.0),
            format!("{:.1}", r.p99_us),
            format!("{:.1}", r.final_quantum_us),
        ]);
    }
    t
}

/// Renders the adaptive run's quantum trace (the figure's bottom
/// panel).
pub fn quantum_trace(rows: &[Fig9Row]) -> Table {
    let mut t = Table::new(&["t (ms)", "quantum (us)"])
        .with_title("Fig 9 (trace): adaptive quantum over time");
    if let Some(adaptive) = rows.iter().find(|r| r.policy.starts_with("adaptive")) {
        if let Some(ts) = &adaptive.report.quantum_series {
            for f in ts.frames().iter().filter(|f| f.count > 0) {
                t.row(&[
                    format!("{:.0}", f.start as f64 / 1e6),
                    format!("{:.1}", f.mean()),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_tracks_the_distribution_shift() {
        let rows = run_fig9(Scale::Quick, 5);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.policy.starts_with(label))
                .expect("row")
        };
        let adaptive = get("adaptive");
        let s5 = get("static 5us");
        let s50 = get("static 50us");
        // The small static quantum pays preemption overhead through
        // the light-tailed phase; adaptive clearly beats it.
        assert!(
            adaptive.slo_violation_frac < 0.75 * s5.slo_violation_frac,
            "adaptive {} vs static5 {}",
            adaptive.slo_violation_frac,
            s5.slo_violation_frac
        );
        // And stays in static-50's neighborhood overall (it matches it
        // per phase; the residual gap is controller transition lag).
        assert!(
            adaptive.slo_violation_frac <= 2.0 * s50.slo_violation_frac,
            "adaptive {} vs static50 {}",
            adaptive.slo_violation_frac,
            s50.slo_violation_frac
        );
        // Adaptive delivers the best tail of the three.
        assert!(adaptive.p99_us <= s5.p99_us * 1.05);
        assert!(adaptive.p99_us <= s50.p99_us * 1.05);
        // The quantum trace shows both regimes: the floor during the
        // heavy-tailed half, t_max after the shift.
        let trace = adaptive.report.quantum_series.as_ref().expect("trace");
        let mins = trace
            .frames()
            .iter()
            .filter(|f| f.count > 0)
            .map(|f| f.mean())
            .fold(f64::INFINITY, f64::min);
        assert!(mins <= 5.0, "never reached the floor: min {mins}");
        assert!(
            (adaptive.final_quantum_us - 50.0).abs() < 1.0,
            "did not relax after the shift: final {}",
            adaptive.final_quantum_us
        );
    }

    #[test]
    fn trace_has_frames() {
        let rows = run_fig9(Scale::Quick, 5);
        let t = quantum_trace(&rows);
        assert!(!t.is_empty(), "quantum trace empty");
        assert_eq!(table(&rows).len(), 3);
    }
}
