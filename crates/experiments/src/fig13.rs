//! Fig. 13 — MICA (LC) + zlib (BE) colocation with the
//! LibPreemptible-based preemptive scheduler.
//!
//! **Left:** p99 of the LC job vs offered load, preemptive (30 us
//! quantum) vs non-preemptive, plus the BE job's latency cost.
//!
//! **Right:** fixed 55 kRPS, sweeping the quantum — smaller quanta
//! crush the LC tail (down to ~8 us at 5 us quantum, 18.5x better than
//! non-preemptive) but tax the BE job more.

use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{ColocatedWorkload, RateSchedule};

use libpreemptible::policy::{ClassQuantum, FcfsPreempt, NonPreemptive};
use libpreemptible::sched::SchedPolicy;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;
use crate::runner;

/// One measured colocation point.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocPoint {
    /// Scheduler label.
    pub scheduler: String,
    /// Offered load, kRPS.
    pub krps: f64,
    /// LC (MICA) p99, us.
    pub lc_p99_us: f64,
    /// LC median, us.
    pub lc_median_us: f64,
    /// BE (zlib) p99, us.
    pub be_p99_us: f64,
}

fn run_point(
    policy: Box<dyn SchedPolicy>,
    label: String,
    mech: PreemptMech,
    rate: f64,
    scale: Scale,
    seed: u64,
) -> ColocPoint {
    let duration = scale.point_duration() * 2;
    let spec = WorkloadSpec {
        source: ServiceSource::Colocated(ColocatedWorkload::paper_config()),
        arrivals: RateSchedule::Constant(rate),
        duration,
        warmup: scale.warmup(),
    };
    // §V-C measures the colocation "on a single core": one worker
    // (plus the timer core for the preemptive configurations).
    let cfg = RuntimeConfig {
        workers: 1,
        mech,
        seed,
        ..RuntimeConfig::default()
    };
    let r = run(cfg, policy, spec);
    debug_assert!(r.is_conserved());
    let lc = r.class_latency(0);
    let be = r.class_latency(1);
    ColocPoint {
        scheduler: label,
        krps: rate / 1_000.0,
        lc_p99_us: lc.p99() as f64 / 1_000.0,
        lc_median_us: lc.median() as f64 / 1_000.0,
        be_p99_us: be.p99() as f64 / 1_000.0,
    }
}

/// Fig. 13 (left): load sweep at a fixed 30 us quantum vs
/// non-preemptive.
pub fn run_left(scale: Scale, seed: u64) -> Vec<ColocPoint> {
    let loads_krps: &[f64] = match scale {
        Scale::Quick => &[25.0, 55.0],
        Scale::Full => &[15.0, 25.0, 35.0, 45.0, 55.0],
    };
    // Per load: the preemptive run then the non-preemptive baseline.
    // Policies are built inside the closure (trait objects are not
    // shareable across the pool); points fan out in submission order.
    let points: Vec<(f64, bool)> = loads_krps
        .iter()
        .flat_map(|&k| [(k, true), (k, false)])
        .collect();
    runner::map_points("fig13-left", &points, |_, &(k, preemptive)| {
        if preemptive {
            run_point(
                Box::new(FcfsPreempt::fixed(SimDur::micros(30))),
                "LC-Lib (q=30us)".into(),
                PreemptMech::Uintr,
                k * 1_000.0,
                scale,
                seed,
            )
        } else {
            run_point(
                Box::new(NonPreemptive),
                "LC-Base (no preemption)".into(),
                PreemptMech::None,
                k * 1_000.0,
                scale,
                seed,
            )
        }
    })
}

/// Fig. 13 (right): quantum sweep at 55 kRPS.
pub fn run_right(scale: Scale, seed: u64) -> Vec<ColocPoint> {
    let quanta_us: &[u64] = match scale {
        Scale::Quick => &[5, 30],
        Scale::Full => &[5, 10, 20, 30, 50],
    };
    // `None` = the non-preemptive baseline (first row), `Some(q)` = the
    // quantum sweep; the whole panel fans out as one batch.
    let points: Vec<Option<u64>> = std::iter::once(None)
        .chain(quanta_us.iter().map(|&q| Some(q)))
        .collect();
    runner::map_points("fig13-right", &points, |_, &q| match q {
        None => run_point(
            Box::new(NonPreemptive),
            "no preemption".into(),
            PreemptMech::None,
            55_000.0,
            scale,
            seed,
        ),
        Some(q) => run_point(
            Box::new(ClassQuantum {
                lc_quantum: SimDur::MAX, // LC requests are ~1us; never preempted
                be_quantum: SimDur::micros(q),
            }),
            format!("preemptive q={q}us"),
            PreemptMech::Uintr,
            55_000.0,
            scale,
            seed,
        ),
    })
}

/// Renders a panel.
pub fn table(points: &[ColocPoint], title: &str) -> Table {
    let mut t = Table::new(&[
        "scheduler",
        "load (kRPS)",
        "LC median (us)",
        "LC p99 (us)",
        "BE p99 (us)",
    ])
    .with_title(title);
    for p in points {
        t.row(&[
            p.scheduler.clone(),
            format!("{:.0}", p.krps),
            format!("{:.1}", p.lc_median_us),
            format!("{:.1}", p.lc_p99_us),
            format!("{:.1}", p.be_p99_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_crushes_lc_tail_at_55krps() {
        let pts = run_left(Scale::Quick, 23);
        let lib = pts
            .iter()
            .find(|p| p.scheduler.contains("LC-Lib") && (p.krps - 55.0).abs() < 1e-9)
            .unwrap();
        let base = pts
            .iter()
            .find(|p| p.scheduler.contains("LC-Base") && (p.krps - 55.0).abs() < 1e-9)
            .unwrap();
        // Fig 13: 3.2-4.4x better LC p99 with the 30us quantum.
        assert!(
            base.lc_p99_us > 2.0 * lib.lc_p99_us,
            "base {} vs lib {}",
            base.lc_p99_us,
            lib.lc_p99_us
        );
    }

    #[test]
    fn smaller_quantum_trades_lc_tail_for_be_latency() {
        let pts = run_right(Scale::Quick, 23);
        let at = |label: &str| pts.iter().find(|p| p.scheduler.contains(label)).unwrap();
        let none = at("no preemption");
        let q5 = at("q=5us");
        let q30 = at("q=30us");
        // LC tail: q5 < q30 < none.
        assert!(q5.lc_p99_us < q30.lc_p99_us, "{} vs {}", q5.lc_p99_us, q30.lc_p99_us);
        assert!(q30.lc_p99_us < none.lc_p99_us);
        // BE cost: q5 taxes zlib more than q30.
        assert!(
            q5.be_p99_us > q30.be_p99_us,
            "BE q5 {} vs q30 {}",
            q5.be_p99_us,
            q30.be_p99_us
        );
        // Headline scale: with a 5us quantum the LC tail lands near
        // the paper's ~8us (we accept < 15us on quick scale).
        assert!(q5.lc_p99_us < 15.0, "q5 LC p99 = {}", q5.lc_p99_us);
    }
}
