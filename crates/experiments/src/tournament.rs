//! The policy tournament — every zoo policy vs every paper workload,
//! ranked into a byte-reproducible leaderboard.
//!
//! Not a figure of the paper: the paper evaluates one scheduling
//! policy (adaptive-quantum FCFS). The tournament exists to keep the
//! [`SchedPolicy`] framework honest — each policy in
//! `crates/preemptible/src/policies/` runs the §V-A workloads A1, A2
//! and B at ρ = 0.75 on 4 workers under UINTR preemption, and the
//! results are ranked by mean per-workload p99 rank. Output is a
//! markdown leaderboard plus a JSON artifact, both byte-identical at
//! any `LP_JOBS` (pinned by a test below, and by the `tournament` CI
//! job). Omitted from the `all` binary's paper-order artifact list on
//! purpose; regenerate with
//! `cargo run --release -p lp-experiments --bin tournament`.
//!
//! Adding a policy: implement [`SchedPolicy`], add a factory arm to
//! [`make_policy`] and its name to [`POLICIES`] — the sweep, ranking
//! and both renderers pick it up. See `docs/POLICIES.md`.

use lp_sim::SimDur;
use lp_workload::RateSchedule;

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::policies::{AdaptiveQuantum, Edf, Fifo, Mlfq, Srpt, Vruntime};
use libpreemptible::runtime::{run, RuntimeConfig, ServiceSource, WorkloadSpec};
use libpreemptible::sched::SchedPolicy;

use crate::common::{PaperWorkload, Scale};
use crate::runner;

/// The competitors, in stable (alphabetical) order. The order fixes
/// the sweep grid and therefore the artifact bytes; ranking is by
/// measured tails, not by this list.
pub const POLICIES: [&str; 6] = [
    "adaptive-quantum",
    "edf",
    "fifo",
    "mlfq",
    "srpt",
    "vruntime",
];

/// The workloads contested: the three stationary §V-A workloads (C is
/// a phase change — a controller story, not a ranking one).
pub const WORKLOADS: [PaperWorkload; 3] =
    [PaperWorkload::A1, PaperWorkload::A2, PaperWorkload::B];

/// Offered load per workload, as a fraction of 4-worker capacity.
pub const RHO: f64 = 0.75;

/// SLO defining goodput: completions within 100 us per second.
pub const SLO: SimDur = SimDur::micros(100);

const WORKERS: usize = 4;

/// Builds a tournament entrant by name. The adaptive-quantum entrant
/// is tuned exactly like the figure modules tune the legacy policy
/// (paper defaults against saturation throughput, controller period =
/// the runtime's control period).
pub fn make_policy(
    name: &str,
    max_load_rps: f64,
    control_period: SimDur,
) -> Box<dyn SchedPolicy> {
    match name {
        "adaptive-quantum" => {
            let mut a = AdaptiveConfig::paper_defaults(max_load_rps);
            a.period = control_period;
            Box::new(AdaptiveQuantum::new(QuantumController::new(
                a,
                SimDur::micros(10),
            )))
        }
        "edf" => Box::new(Edf::new(
            SimDur::micros(10),
            SimDur::micros(100),
            SimDur::millis(1),
        )),
        "fifo" => Box::new(Fifo::new(SimDur::micros(10))),
        "mlfq" => Box::new(Mlfq::new(SimDur::micros(5), 4)),
        "srpt" => Box::new(Srpt::new(SimDur::micros(10))),
        "vruntime" => Box::new(Vruntime::new(SimDur::micros(10))),
        other => panic!("unknown tournament policy {other:?}"),
    }
}

/// One (policy, workload) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentPoint {
    /// Competitor name ([`SchedPolicy::name`]).
    pub policy: &'static str,
    /// Workload label (`A1`, `A2`, `B`).
    pub workload: &'static str,
    /// p99 latency, us.
    pub p99_us: f64,
    /// p99.9 latency, us.
    pub p999_us: f64,
    /// Completions per second that met the [`SLO`].
    pub goodput_rps: f64,
    /// Preemptions delivered over the run.
    pub preemptions: u64,
    /// Requests completed over the run.
    pub completions: u64,
}

/// One leaderboard entry: a policy with its per-workload points, in
/// [`WORKLOADS`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// 1-based final placement.
    pub rank: usize,
    /// Competitor name.
    pub policy: &'static str,
    /// Mean of the per-workload p99 placements (lower is better).
    pub mean_rank: f64,
    /// The policy's measured cells, one per workload.
    pub points: Vec<TournamentPoint>,
}

/// Runs the full sweep and ranks it. Each cell is an independent
/// deterministic simulation fanned out through [`runner::map_points`];
/// the ranking is a pure function of the returned grid, so the
/// leaderboard bytes cannot depend on the job count.
pub fn run_tournament(scale: Scale, seed: u64) -> Vec<LeaderboardRow> {
    let duration = scale.point_duration();
    let control_period = (duration / 40).max(SimDur::millis(2));

    let mut grid: Vec<(&'static str, PaperWorkload)> = Vec::new();
    for &policy in &POLICIES {
        for &wl in &WORKLOADS {
            grid.push((policy, wl));
        }
    }

    let points = runner::map_points("tournament", &grid, |_id, &(policy, wl)| {
        let rate = wl.rate_for(RHO, WORKERS);
        let max_load = wl.rate_for(1.0, WORKERS);
        let r = run(
            RuntimeConfig {
                workers: WORKERS,
                seed,
                control_period,
                ..RuntimeConfig::default()
            },
            make_policy(policy, max_load, control_period),
            WorkloadSpec {
                source: ServiceSource::Phased(wl.service(duration)),
                arrivals: RateSchedule::Constant(rate),
                duration,
                warmup: scale.warmup(),
            },
        );
        assert!(r.is_conserved(), "{policy} on {}: not conserved", wl.name());
        TournamentPoint {
            policy,
            workload: wl.name(),
            p99_us: r.p99_us(),
            p999_us: r.latency.p999() as f64 / 1_000.0,
            goodput_rps: r.throughput_rps() * (1.0 - r.slo_violations(SLO)),
            preemptions: r.preemptions,
            completions: r.completions,
        }
    });

    rank(&points)
}

/// Ranks a sweep grid: within each workload, policies place by p99
/// (ties broken by name, so the result is total and deterministic);
/// the final order is by mean placement, again name-tiebroken.
pub fn rank(points: &[TournamentPoint]) -> Vec<LeaderboardRow> {
    // Per-workload placements.
    let mut placement: Vec<(&'static str, &'static str, usize)> = Vec::new();
    for &wl in &WORKLOADS {
        let mut cells: Vec<&TournamentPoint> =
            points.iter().filter(|p| p.workload == wl.name()).collect();
        cells.sort_by(|a, b| {
            a.p99_us
                .total_cmp(&b.p99_us)
                .then_with(|| a.policy.cmp(b.policy))
        });
        for (i, c) in cells.iter().enumerate() {
            placement.push((c.policy, c.workload, i + 1));
        }
    }

    let mut rows: Vec<LeaderboardRow> = POLICIES
        .iter()
        .map(|&policy| {
            let ranks: Vec<usize> = placement
                .iter()
                .filter(|&&(p, _, _)| p == policy)
                .map(|&(_, _, r)| r)
                .collect();
            let mean_rank = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
            LeaderboardRow {
                rank: 0,
                policy,
                mean_rank,
                points: points.iter().filter(|p| p.policy == policy).cloned().collect(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        a.mean_rank
            .total_cmp(&b.mean_rank)
            .then_with(|| a.policy.cmp(b.policy))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    rows
}

/// Renders the leaderboard as the markdown artifact
/// (`results/tournament.md`). Fixed-precision formatting keeps the
/// bytes reproducible.
pub fn leaderboard_markdown(rows: &[LeaderboardRow], seed: u64) -> String {
    let mut s = String::new();
    s.push_str("# Policy tournament leaderboard\n\n");
    s.push_str(&format!(
        "Workloads A1/A2/B at rho={RHO}, {WORKERS} workers, UINTR preemption, \
         seed {seed}. Rank = mean per-workload p99 placement; goodput counts \
         completions within the {} us SLO.\n\n",
        SLO.as_nanos() / 1_000
    ));
    s.push_str("| rank | policy | mean rank | A1 p99 (us) | A2 p99 (us) | B p99 (us) | preemptions |\n");
    s.push_str("|---|---|---|---|---|---|---|\n");
    for row in rows {
        let p99 = |wl: &str| {
            row.points
                .iter()
                .find(|p| p.workload == wl)
                .map(|p| format!("{:.1}", p.p99_us))
                .unwrap_or_else(|| "-".into())
        };
        let preemptions: u64 = row.points.iter().map(|p| p.preemptions).sum();
        s.push_str(&format!(
            "| {} | {} | {:.2} | {} | {} | {} | {} |\n",
            row.rank,
            row.policy,
            row.mean_rank,
            p99("A1"),
            p99("A2"),
            p99("B"),
            preemptions,
        ));
    }
    s.push_str("\n## Per-point detail\n\n");
    s.push_str("| policy | workload | p99 (us) | p99.9 (us) | goodput (rps) | preemptions | completions |\n");
    s.push_str("|---|---|---|---|---|---|---|\n");
    for row in rows {
        for p in &row.points {
            s.push_str(&format!(
                "| {} | {} | {:.1} | {:.1} | {:.0} | {} | {} |\n",
                p.policy, p.workload, p.p99_us, p.p999_us, p.goodput_rps, p.preemptions, p.completions,
            ));
        }
    }
    s
}

/// Renders the leaderboard as the JSON artifact
/// (`results/tournament.json`). Hand-rolled with fixed-precision
/// floats so the bytes are stable across job counts and toolchains.
pub fn leaderboard_json(rows: &[LeaderboardRow], seed: u64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"seed\": {seed},\n  \"rho\": {RHO},\n  \"workers\": {WORKERS},\n  \"slo_us\": {},\n",
        SLO.as_nanos() / 1_000
    ));
    s.push_str("  \"leaderboard\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rank\": {}, \"policy\": \"{}\", \"mean_rank\": {:.3}, \"points\": [",
            row.rank, row.policy, row.mean_rank
        ));
        for (j, p) in row.points.iter().enumerate() {
            s.push_str(&format!(
                "{{\"workload\": \"{}\", \"p99_us\": {:.3}, \"p999_us\": {:.3}, \
                 \"goodput_rps\": {:.3}, \"preemptions\": {}, \"completions\": {}}}",
                p.workload, p.p99_us, p.p999_us, p.goodput_rps, p.preemptions, p.completions
            ));
            if j + 1 < row.points.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_contests_every_workload() {
        let rows = run_tournament(Scale::Quick, crate::DEFAULT_SEED);
        assert_eq!(rows.len(), POLICIES.len());
        for row in &rows {
            assert_eq!(row.points.len(), WORKLOADS.len());
            for p in &row.points {
                assert!(p.completions > 0, "{} on {} completed nothing", p.policy, p.workload);
                assert!(p.goodput_rps >= 0.0);
            }
        }
        // Ranks are a permutation of 1..=n.
        let mut ranks: Vec<usize> = rows.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=POLICIES.len()).collect::<Vec<_>>());
        // Mean ranks are sorted — the leaderboard is actually ranked.
        for w in rows.windows(2) {
            assert!(w[0].mean_rank <= w[1].mean_rank);
        }
    }

    /// The acceptance bar: both artifacts are byte-identical across
    /// job counts (the CI `tournament` job re-checks this end-to-end
    /// through the binary with `LP_JOBS` in the environment).
    #[test]
    fn leaderboard_bytes_are_job_count_invariant() {
        let render = || {
            let rows = run_tournament(Scale::Quick, crate::DEFAULT_SEED);
            (
                leaderboard_json(&rows, crate::DEFAULT_SEED),
                leaderboard_markdown(&rows, crate::DEFAULT_SEED),
            )
        };
        let serial = runner::with_jobs(1, render);
        for jobs in [2, 8] {
            let parallel = runner::with_jobs(jobs, render);
            assert_eq!(serial, parallel, "LP_JOBS={jobs} changed the artifact bytes");
        }
    }

    #[test]
    fn ranking_is_total_and_name_tiebroken() {
        let mk = |policy: &'static str, workload: &'static str, p99: f64| TournamentPoint {
            policy,
            workload,
            p99_us: p99,
            p999_us: p99 * 2.0,
            goodput_rps: 1000.0,
            preemptions: 1,
            completions: 10,
        };
        // Two policies tie everywhere: alphabetical order must decide.
        let points: Vec<TournamentPoint> = POLICIES
            .iter()
            .flat_map(|&p| WORKLOADS.iter().map(move |w| mk(p, w.name(), 5.0)))
            .collect();
        let rows = rank(&points);
        let order: Vec<&str> = rows.iter().map(|r| r.policy).collect();
        let mut sorted = POLICIES.to_vec();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }
}
