//! Fig. 8 — the headline comparison: median and p99 latency vs
//! throughput for LibPreemptible, LibPreemptible w/o UINTR, Shinjuku,
//! and Libinger on workloads A1, A2, B, C; plus the maximum-throughput
//! summary (p99 bounded by 200x the stable-system average latency).

use lp_stats::Table;

use crate::common::{
    max_throughput_from_reports, run_system, PaperWorkload, Scale, SystemUnderTest,
};
use crate::runner;

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// System label.
    pub system: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Offered utilization (fraction of worker capacity).
    pub rho: f64,
    /// Measured throughput, requests/second.
    pub throughput_rps: f64,
    /// Median latency, us.
    pub median_us: f64,
    /// p99 latency, us.
    pub p99_us: f64,
}

/// The utilization grid of the sweep.
pub fn utilization_grid(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.2, 0.5, 0.8, 0.9, 0.95],
        Scale::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
    }
}

/// Runs the full Fig. 8 sweep.
///
/// All `workload x system x rho` points are independent seeded runs;
/// the grid fans out through the parallel [`runner`] and comes back in
/// grid order, byte-identical to the serial loop at any `LP_JOBS`.
pub fn run_fig8(scale: Scale, seed: u64) -> Vec<SweepPoint> {
    let mut points: Vec<(PaperWorkload, SystemUnderTest, f64)> = Vec::new();
    for wl in PaperWorkload::ALL {
        for sys in SystemUnderTest::ALL {
            for &rho in &utilization_grid(scale) {
                points.push((wl, sys, rho));
            }
        }
    }
    runner::map_points("fig8", &points, |_, &(wl, sys, rho)| {
        let rate = wl.rate_for(rho, sys.workers());
        let r = run_system(sys, wl, rate, scale, seed);
        SweepPoint {
            system: sys.name(),
            workload: wl.name(),
            rho,
            throughput_rps: r.throughput_rps(),
            median_us: r.median_us(),
            p99_us: r.p99_us(),
        }
    })
}

/// The max-throughput summary (the right panel's saturation points).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxThroughputRow {
    /// System label.
    pub system: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Maximum sustainable throughput, requests/second.
    pub max_rps: f64,
}

/// Computes the paper's max-throughput metric for each system ×
/// workload.
///
/// The measurement half — the 10%-load baseline plus the whole
/// utilization grid for every `workload x system` pair — fans out
/// through the parallel [`runner`] as one flat batch; the saturation
/// criterion is then reduced serially over the collected reports, so
/// the rows are identical to the serial walk.
pub fn run_max_throughput(scale: Scale, seed: u64) -> Vec<MaxThroughputRow> {
    let utils = utilization_grid(scale);
    let pairs: Vec<(PaperWorkload, SystemUnderTest)> = PaperWorkload::ALL
        .into_iter()
        .flat_map(|wl| SystemUnderTest::ALL.into_iter().map(move |sys| (wl, sys)))
        .collect();
    // Per pair: the baseline rate first ("a stable system" at 10%
    // load), then the grid, so each pair owns a contiguous chunk of
    // `1 + utils.len()` reports.
    let mut points: Vec<(PaperWorkload, SystemUnderTest, f64)> = Vec::new();
    for &(wl, sys) in &pairs {
        let capacity = wl.rate_for(1.0, sys.workers());
        points.push((wl, sys, 0.1 * capacity));
        for &u in &utils {
            points.push((wl, sys, u * capacity));
        }
    }
    let reports = runner::map_points("fig8-max", &points, |_, &(wl, sys, rate)| {
        run_system(sys, wl, rate, scale, seed)
    });
    let chunk = 1 + utils.len();
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(wl, sys))| {
            let base = &reports[i * chunk];
            let baseline_avg = base.mean_us().max(wl.mean_service().as_micros_f64());
            let max = max_throughput_from_reports(baseline_avg, &reports[i * chunk + 1..(i + 1) * chunk]);
            MaxThroughputRow {
                system: sys.name(),
                workload: wl.name(),
                max_rps: max,
            }
        })
        .collect()
}

/// Renders the sweep as a table.
pub fn sweep_table(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(&[
        "workload",
        "system",
        "rho",
        "throughput (kRPS)",
        "median (us)",
        "p99 (us)",
    ])
    .with_title("Fig 8: latency vs throughput");
    for p in points {
        t.row(&[
            p.workload.to_string(),
            p.system.to_string(),
            format!("{:.2}", p.rho),
            format!("{:.1}", p.throughput_rps / 1_000.0),
            format!("{:.1}", p.median_us),
            format!("{:.1}", p.p99_us),
        ]);
    }
    t
}

/// Renders the max-throughput summary.
pub fn max_table(rows: &[MaxThroughputRow]) -> Table {
    let mut t = Table::new(&["workload", "system", "max throughput (kRPS)"])
        .with_title("Fig 8 (summary): max throughput, p99 <= 200x stable avg");
    for r in rows {
        t.row(&[
            r.workload.to_string(),
            r.system.to_string(),
            format!("{:.1}", r.max_rps / 1_000.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p99_of(points: &[SweepPoint], sys: &str, wl: &str, rho: f64) -> f64 {
        points
            .iter()
            .find(|p| p.system == sys && p.workload == wl && (p.rho - rho).abs() < 1e-9)
            .expect("point")
            .p99_us
    }

    #[test]
    fn libpreemptible_beats_shinjuku_tail_at_high_load_a1() {
        // The paper's headline: ~10x better tail under high load. We
        // assert a conservative >2x at rho=0.8 on the quick scale.
        let pts = run_fig8(Scale::Quick, 11);
        let lp = p99_of(&pts, "LibPreemptible", "A1", 0.8);
        let sj = p99_of(&pts, "Shinjuku", "A1", 0.8);
        assert!(
            sj > 2.0 * lp,
            "Shinjuku p99 {sj} should be >> LibPreemptible {lp}"
        );
    }

    #[test]
    fn no_uintr_ablation_is_worse_at_high_load() {
        let pts = run_fig8(Scale::Quick, 11);
        for wl in ["A1", "A2"] {
            let with = p99_of(&pts, "LibPreemptible", wl, 0.9);
            let without = p99_of(&pts, "LibPreemptible w/o UINTR", wl, 0.9);
            assert!(
                without > with,
                "{wl}: w/o UINTR {without} must exceed with {with}"
            );
        }
    }

    #[test]
    fn libinger_has_the_worst_tail_on_a1() {
        let pts = run_fig8(Scale::Quick, 11);
        let li = p99_of(&pts, "Libinger", "A1", 0.8);
        let lp = p99_of(&pts, "LibPreemptible", "A1", 0.8);
        assert!(li > lp, "Libinger {li} vs LibPreemptible {lp}");
    }

    #[test]
    fn max_throughput_per_worker_favors_libpreemptible() {
        // The paper reports 22% (A1) / 33% (C) higher max throughput
        // for LibPreemptible despite running 4 workers to Shinjuku's 5.
        // Quick-scale windows are too short for the saturation
        // criterion to bite sharply (queues need seconds to diverge),
        // so CI asserts the per-worker ordering; the full-scale binary
        // regenerates the paper-scale gap.
        let rows = run_max_throughput(Scale::Quick, 11);
        let get = |sys: &str, wl: &str| {
            rows.iter()
                .find(|r| r.system == sys && r.workload == wl)
                .expect("row")
                .max_rps
        };
        for wl in ["A1", "C"] {
            let lp_per_worker = get("LibPreemptible", wl) / 4.0;
            let sj_per_worker = get("Shinjuku", wl) / 5.0;
            assert!(
                lp_per_worker > 0.95 * sj_per_worker,
                "{wl}: LibPreemptible {lp_per_worker}/worker vs Shinjuku {sj_per_worker}/worker"
            );
        }
    }
}
