//! Fig. R (extension) — resilience sweep: tail latency vs IPI fault
//! rate under the self-healing preemption path.
//!
//! Not a figure of the paper: LibPreemptible assumes `SENDUIPI` never
//! fails. This extension injects IPI drops at increasing rates
//! (`lp_sim::fault`) and measures how the lost-preemption watchdog
//! holds the tail: retries absorb occasional losses, and sustained loss
//! degrades workers to the kernel signal path — whose tail is the
//! natural floor for the sweep (a signal-path run at rate 0 is shown
//! as the `signal floor` row). Omitted from the `all` binary's
//! paper-order artifact list on purpose; regenerate with
//! `cargo run --release -p lp-experiments --bin figr`.

use lp_sim::fault::{FaultKind, FaultPlan};
use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::policy::FcfsPreempt;
use libpreemptible::report::RunReport;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;
use crate::runner;

/// One point of the sweep.
#[derive(Debug)]
pub struct FigRRow {
    /// Row label (`drop 5%`, `signal floor`, ...).
    pub label: String,
    /// P(IPI drop) per `SENDUIPI`; `None` for the signal-floor row.
    pub drop_rate: Option<f64>,
    /// p99 latency, us.
    pub p99_us: f64,
    /// Median latency, us.
    pub median_us: f64,
    /// Watchdog re-sends.
    pub retries: u64,
    /// Workers degraded to the signal path.
    pub degradations: u64,
    /// Degraded workers recovered by a successful probe.
    pub recoveries: u64,
    /// The full report.
    pub report: RunReport,
}

/// The IPI drop rates swept (the `0.0` point is the healthy baseline).
pub const DROP_RATES: [f64; 6] = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0];

/// Runs the sweep: constant 400 us requests under a 20 us quantum, so
/// every request needs ~20 preemptions and a lost one lands squarely
/// on the tail. Requests must outlive several watchdog timeouts for
/// consecutive-loss counting to mean anything: a task that completes
/// resets its worker's loss streak (the watchdog cannot tell a lost
/// preemption from one that arrived just after a natural finish).
pub fn run_figr(scale: Scale, seed: u64) -> Vec<FigRRow> {
    let workers = 4;
    let duration = scale.point_duration();
    let mk_spec = || WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(400),
        ))),
        arrivals: RateSchedule::Constant(8_000.0),
        duration,
        warmup: scale.warmup(),
    };
    let mk_cfg = |mech: PreemptMech, faults: FaultPlan| RuntimeConfig {
        workers,
        mech,
        seed,
        control_period: SimDur::millis(10),
        faults,
        ..RuntimeConfig::default()
    };

    // Points: one UINTR run per drop rate, plus the signal-path floor.
    let points: Vec<Option<f64>> = DROP_RATES
        .iter()
        .map(|&r| Some(r))
        .chain(std::iter::once(None))
        .collect();
    runner::map_points("figr", &points, |_id, &rate| {
        let (label, mech, faults) = match rate {
            Some(r) => (
                format!("uintr, drop {:.0}%", r * 100.0),
                PreemptMech::Uintr,
                FaultPlan::only(FaultKind::IpiDrop, r),
            ),
            None => (
                "signal floor".to_string(),
                PreemptMech::TimerCoreSignal,
                FaultPlan::disabled(),
            ),
        };
        let r = run(
            mk_cfg(mech, faults),
            Box::new(FcfsPreempt::fixed(SimDur::micros(20))),
            mk_spec(),
        );
        FigRRow {
            label,
            drop_rate: rate,
            p99_us: r.p99_us(),
            median_us: r.median_us(),
            retries: r.metrics.counter("preempt_retries"),
            degradations: r.metrics.counter("mech_degradations"),
            recoveries: r.metrics.counter("mech_recoveries"),
            report: r,
        }
    })
}

/// Renders the sweep table.
pub fn table(rows: &[FigRRow]) -> Table {
    let mut t = Table::new(&[
        "point",
        "p99 (us)",
        "median (us)",
        "retries",
        "degradations",
        "recoveries",
    ])
    .with_title("Fig R (extension): tail latency vs IPI fault rate, watchdog enabled");
    for r in rows {
        t.row(&[
            r.label.clone(),
            format!("{:.1}", r.p99_us),
            format!("{:.1}", r.median_us),
            r.retries.to_string(),
            r.degradations.to_string(),
            r.recoveries.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_bounds_the_tail_across_the_sweep() {
        let rows = run_figr(Scale::Quick, 7);
        assert_eq!(rows.len(), DROP_RATES.len() + 1);
        let healthy = &rows[0];
        let total_loss = rows
            .iter()
            .find(|r| r.drop_rate == Some(1.0))
            .expect("rate-1.0 point");
        let floor = rows.last().expect("signal floor row");
        // Every point conserves requests — no fault rate strands fibers.
        for r in &rows {
            assert!(r.report.is_conserved(), "{}: not conserved", r.label);
        }
        // The healthy point neither retries nor degrades.
        assert_eq!(healthy.retries, 0);
        assert_eq!(healthy.degradations, 0);
        // Total loss degrades every worker and lands in the signal
        // path's neighborhood, not at infinity.
        assert_eq!(total_loss.degradations, 4);
        assert!(
            total_loss.p99_us < 4.0 * floor.p99_us.max(healthy.p99_us),
            "total-loss p99 {} vs floor {}",
            total_loss.p99_us,
            floor.p99_us
        );
        // Intermediate rates actually exercise the retry path.
        assert!(rows.iter().any(|r| r.retries > 0));
    }
}
