//! Deterministic JSONL event-trace recipes for the shipped figures'
//! workload shapes — the inputs `lp-check race` analyzes.
//!
//! One definition, three consumers: the `traces` bin exports these to
//! `results/traces/` for CI, the tier-1 gate (`tests/static_analysis.rs`)
//! regenerates them in-memory and requires zero race findings, and
//! developers can rebuild them locally to reproduce either. Sharing the
//! recipe is what makes "the trace CI analyzed" and "the trace the gate
//! analyzed" the same bytes (`tests/observability.rs` pins the
//! byte-determinism this relies on).

use lp_sim::fault::{FaultKind, FaultPlan};
use lp_sim::SimDur;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::policy::FcfsPreempt;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;

/// The Fig. 2 shape: heavy-tailed bimodal service on 16 workers under
/// a 25 us UINTR quantum, fault-free. At quick scale the run outgrows
/// the `1 << 18` trace ring, so the exported trace is head-truncated —
/// deliberately, to keep the race detector's truncation guards
/// exercised.
pub fn fig2_trace(scale: Scale, seed: u64) -> String {
    let dist = ServiceDist::workload_a1();
    let workers = 16;
    let rate = dist.rate_for_utilization(0.75, workers);
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(dist)),
        arrivals: RateSchedule::Constant(rate),
        duration: scale.point_duration(),
        warmup: scale.warmup(),
    };
    let cfg = RuntimeConfig {
        workers,
        mech: PreemptMech::Uintr,
        seed,
        trace_capacity: 1 << 18,
        ..RuntimeConfig::default()
    };
    run(cfg, Box::new(FcfsPreempt::fixed(SimDur::micros(25))), spec).events_jsonl()
}

/// The Fig. R shape: constant 400 us service on 4 workers under a
/// 20 us quantum with a 10% IPI drop rate — every arc of the watchdog
/// retry/degrade/recover machine fires, so the trace carries the full
/// retry->re-send / degrade / recover edge vocabulary.
pub fn figr_trace(scale: Scale, seed: u64) -> String {
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(400),
        ))),
        arrivals: RateSchedule::Constant(8_000.0),
        duration: scale.point_duration(),
        warmup: scale.warmup(),
    };
    let cfg = RuntimeConfig {
        workers: 4,
        mech: PreemptMech::Uintr,
        seed,
        control_period: SimDur::millis(10),
        faults: FaultPlan::only(FaultKind::IpiDrop, 0.1),
        trace_capacity: 1 << 18,
        ..RuntimeConfig::default()
    };
    run(cfg, Box::new(FcfsPreempt::fixed(SimDur::micros(20))), spec).events_jsonl()
}
