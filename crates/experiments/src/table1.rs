//! Table I — datacenter thread oversubscription, and the scheduling
//! consequence the introduction derives from it.
//!
//! The table itself is external data (Google traces); we quote it and
//! compute the paper's §I corollary: with a 5 ms minimum kernel time
//! slice and hundreds of threads per core, one round-robin scheduler
//! cycle takes *seconds*, while LibPreemptible's 3 us slice keeps it in
//! the millisecond range.

use lp_sim::SimDur;
use lp_stats::Table;

/// One application row from the Google traces (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversubRow {
    /// Application code name.
    pub app: &'static str,
    /// Threads observed.
    pub threads: u64,
    /// Cores assigned.
    pub cores: u64,
}

impl OversubRow {
    /// Threads per core.
    pub fn threads_per_core(&self) -> u64 {
        self.threads / self.cores
    }

    /// Worst-case scheduler cycle: every runnable thread takes a full
    /// `slice` before the first gets CPU again.
    pub fn scheduler_cycle(&self, slice: SimDur) -> SimDur {
        slice * self.threads_per_core()
    }
}

/// The four applications of Table I.
pub const GOOGLE_TRACE_ROWS: [OversubRow; 4] = [
    OversubRow { app: "charlie", threads: 4842, cores: 10 },
    OversubRow { app: "delta", threads: 300, cores: 4 },
    OversubRow { app: "merced", threads: 5470, cores: 110 },
    OversubRow { app: "whiskey", threads: 1352, cores: 8 },
];

/// Renders Table I plus the derived scheduler-cycle columns.
pub fn run() -> Table {
    let mut t = Table::new(&[
        "App (code name)",
        "# threads",
        "# cores",
        "Threads/core",
        "cycle @5ms slice",
        "cycle @3us slice",
    ])
    .with_title("Table I: thread oversubscription (Google traces) + scheduler-cycle corollary");
    for row in GOOGLE_TRACE_ROWS {
        t.row(&[
            row.app.to_string(),
            row.threads.to_string(),
            row.cores.to_string(),
            row.threads_per_core().to_string(),
            row.scheduler_cycle(SimDur::millis(5)).to_string(),
            row.scheduler_cycle(SimDur::micros(3)).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper() {
        assert_eq!(GOOGLE_TRACE_ROWS[0].threads_per_core(), 484);
        assert_eq!(GOOGLE_TRACE_ROWS[1].threads_per_core(), 75);
        assert_eq!(GOOGLE_TRACE_ROWS[2].threads_per_core(), 49); // 5470/110
        assert_eq!(GOOGLE_TRACE_ROWS[3].threads_per_core(), 169);
    }

    #[test]
    fn intro_corollary_holds() {
        // §I: "if the minimum time slice is 5ms and there are 200
        // threads on average per core, the scheduler cycle will be
        // increased to 1 second".
        let row = OversubRow { app: "x", threads: 200, cores: 1 };
        assert_eq!(row.scheduler_cycle(SimDur::millis(5)), SimDur::secs(1));
        // With the 3us UINTR slice the same cycle is 600us.
        assert_eq!(row.scheduler_cycle(SimDur::micros(3)), SimDur::micros(600));
    }

    #[test]
    fn table_renders() {
        let t = run();
        assert_eq!(t.len(), 4);
        let s = t.render();
        assert!(s.contains("charlie"));
        assert!(s.contains("484"));
    }
}
