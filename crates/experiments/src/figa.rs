//! Fig. A (extension) — tail attribution: where p99 time goes vs load.
//!
//! Not a figure of the paper. LibPreemptible's evaluation reports *how
//! long* the tail is; this extension reports *where the time went*.
//! Each point runs the runtime with the always-on phase accountant
//! (`lp_sim::obs::Attribution`) and decomposes the pinned worst
//! request's end-to-end latency into the six phases of the vocabulary
//! (`queued`, `running`, `preempt_switch`, `retry_stall`,
//! `degraded_signal`, `brownout_held` — see `docs/TRACING.md`). The
//! sweep crosses the saturation knee on a healthy runtime and on every
//! cliff pinned in `results/chaos_corpus.json`: healthy overload shows
//! up as pure queueing, while the chaos cliffs shift mass into the
//! retry/degraded phases the tail actually spent waiting on lost
//! preemptions.
//!
//! Omitted from the `all` binary's paper-order artifact list on
//! purpose; regenerate with
//! `cargo run --release -p lp-experiments --bin figa`.

use lp_chaos::{corpus, evaluate_report, ChaosPlan, EvalConfig};
use lp_sim::obs::Phase;
use lp_stats::Table;

use crate::common::Scale;
use crate::runner;

/// The base loads swept, requests/second — the figw sweep, reused so
/// the two extension figures line up point for point.
pub use crate::figw::LOADS;

/// One scenario of the sweep: a named chaos plan (or the empty healthy
/// overlay) plus the evaluation context its loads are run under.
#[derive(Debug, Clone)]
pub struct FigAScenario {
    /// Display name (`healthy`, or the pinned corpus entry's name).
    pub name: String,
    /// The chaos plan lowered into each run (empty for healthy).
    pub plan: ChaosPlan,
    /// Evaluation context; the sweep overrides `base_rps` and
    /// `horizon_us` per point and keeps the rest.
    pub cfg: EvalConfig,
}

/// The healthy baseline: no chaos atoms at all, default context.
pub fn healthy_scenario() -> FigAScenario {
    FigAScenario {
        name: "healthy".into(),
        plan: ChaosPlan::Overlay(vec![]),
        cfg: EvalConfig::default(),
    }
}

/// Builds the scenario list: the healthy baseline, then one scenario
/// per pinned corpus cliff when `corpus_json` (the contents of
/// `results/chaos_corpus.json`) is supplied and parses. A missing or
/// malformed corpus degrades to the healthy baseline alone rather than
/// failing — the decomposition is a lens, not the regression gate.
pub fn scenarios(corpus_json: Option<&str>) -> Vec<FigAScenario> {
    let mut out = vec![healthy_scenario()];
    if let Some(entries) = corpus_json.and_then(corpus::from_json) {
        out.extend(entries.into_iter().map(|e| FigAScenario {
            name: e.name,
            plan: e.plan,
            cfg: e.cfg,
        }));
    }
    out
}

/// One point of the sweep: the worst pinned request's phase breakdown
/// plus per-phase p99s, all in nanoseconds (the table divides down to
/// µs; keeping ns here lets tests assert the exact-sum invariant).
#[derive(Debug, Clone)]
pub struct FigARow {
    /// Scenario name this point belongs to.
    pub scenario: String,
    /// Base offered load, requests/second.
    pub base_rps: u32,
    /// End-to-end p99 from the always-on attribution histogram, ns.
    pub e2e_p99_ns: u64,
    /// The pinned worst request's end-to-end latency, ns (0 when the
    /// run completed nothing).
    pub worst_ns: u64,
    /// The worst request's per-phase breakdown, ns — sums exactly to
    /// [`worst_ns`](Self::worst_ns).
    pub worst_phase_ns: [u64; Phase::COUNT],
    /// Per-phase p99 across all completed requests, ns.
    pub phase_p99_ns: [u64; Phase::COUNT],
    /// Completed requests behind the histograms.
    pub completions: u64,
}

/// Runs the sweep: every scenario at every load, fanned out over
/// `LP_JOBS` workers in submission order, so the row vector (and the
/// CSV rendered from it) is byte-identical at any job count.
pub fn run_figa(scale: Scale, scenarios: &[FigAScenario]) -> Vec<FigARow> {
    let horizon_us = scale.point_duration().as_nanos() / 1_000;
    let grid: Vec<(usize, u32)> = (0..scenarios.len())
        .flat_map(|si| LOADS.iter().map(move |&rps| (si, rps)))
        .collect();
    runner::map_points("figa", &grid, move |_id, &(si, base_rps)| {
        let sc = &scenarios[si];
        let cfg = EvalConfig { base_rps, horizon_us, ..sc.cfg };
        let r = evaluate_report(&sc.plan, &cfg, false, 0);
        let worst = r.worst_exemplar();
        let mut phase_p99_ns = [0u64; Phase::COUNT];
        for p in Phase::ALL {
            phase_p99_ns[p as usize] = r.phases.per_phase[p as usize].p99_ns();
        }
        FigARow {
            scenario: sc.name.clone(),
            base_rps,
            e2e_p99_ns: r.phases.end_to_end.p99_ns(),
            worst_ns: worst.as_ref().map_or(0, |e| e.latency_ns),
            worst_phase_ns: worst.as_ref().map_or([0; Phase::COUNT], |e| e.phase_ns),
            phase_p99_ns,
            completions: r.completions,
        }
    })
}

/// Renders the decomposition table: one row per (scenario, load), the
/// worst pinned request's latency split across the six phases. Pure
/// integer µs, so the CSV is byte-stable. An all-zero row with
/// `done = 0` is total starvation: the run completed nothing, so there
/// is no request to decompose (the censored backlog is what figw's
/// worst-case column measures).
pub fn table(rows: &[FigARow]) -> Table {
    let mut t = Table::new(&[
        "scenario",
        "load (rps)",
        "p99 (us)",
        "worst (us)",
        "queued (us)",
        "running (us)",
        "switch (us)",
        "stall (us)",
        "degraded (us)",
        "brownout (us)",
        "done",
    ])
    .with_title("Fig A (extension): where the worst request's time went, by phase");
    for r in rows {
        let us = |ns: u64| (ns / 1_000).to_string();
        t.row(&[
            r.scenario.clone(),
            r.base_rps.to_string(),
            us(r.e2e_p99_ns),
            us(r.worst_ns),
            us(r.worst_phase_ns[Phase::Queued as usize]),
            us(r.worst_phase_ns[Phase::Running as usize]),
            us(r.worst_phase_ns[Phase::PreemptSwitch as usize]),
            us(r.worst_phase_ns[Phase::RetryStall as usize]),
            us(r.worst_phase_ns[Phase::DegradedSignal as usize]),
            us(r.worst_phase_ns[Phase::BrownoutHeld as usize]),
            r.completions.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figw::representative_plan;

    /// A synthetic cliff standing in for a pinned corpus entry, so the
    /// tests need no `results/` file.
    fn cliff_scenario(horizon_us: u64) -> FigAScenario {
        FigAScenario {
            name: "cliff-test".into(),
            plan: representative_plan(horizon_us),
            cfg: EvalConfig::default(),
        }
    }

    #[test]
    fn worst_breakdown_sums_exactly_and_healthy_has_no_stall() {
        let rows = run_figa(Scale::Quick, &[healthy_scenario()]);
        assert_eq!(rows.len(), LOADS.len());
        for r in &rows {
            assert!(r.completions > 0, "{} rps: no completions", r.base_rps);
            let sum: u64 = r.worst_phase_ns.iter().sum();
            assert_eq!(sum, r.worst_ns, "{} rps: breakdown does not sum", r.base_rps);
            // No chaos atoms: nothing to retry, degrade, or brown out.
            for p in [Phase::RetryStall, Phase::DegradedSignal, Phase::BrownoutHeld] {
                assert_eq!(
                    r.worst_phase_ns[p as usize], 0,
                    "{} rps: healthy run charged {}",
                    r.base_rps,
                    p.name()
                );
            }
        }
        // Past saturation the decomposition blames the queue: queueing
        // dominates the worst request at the top load.
        let top = rows.last().expect("top load row");
        assert!(
            top.worst_phase_ns[Phase::Queued as usize] > top.worst_ns / 2,
            "overload not attributed to queueing: {:?}",
            top.worst_phase_ns
        );
    }

    #[test]
    fn a_cliff_shifts_mass_into_fault_phases() {
        let horizon_us = Scale::Quick.point_duration().as_nanos() / 1_000;
        let rows = run_figa(Scale::Quick, &[cliff_scenario(horizon_us)]);
        let fault_mass: u64 = rows
            .iter()
            .map(|r| {
                r.phase_p99_ns[Phase::RetryStall as usize]
                    + r.phase_p99_ns[Phase::DegradedSignal as usize]
                    + r.phase_p99_ns[Phase::BrownoutHeld as usize]
            })
            .sum();
        assert!(fault_mass > 0, "drop-burst cliff charged nothing to fault phases");
    }

    #[test]
    fn figa_is_byte_identical_across_job_counts() {
        let horizon_us = Scale::Quick.point_duration().as_nanos() / 1_000;
        let scenarios = vec![healthy_scenario(), cliff_scenario(horizon_us)];
        let csv = |jobs| {
            runner::with_jobs(jobs, || table(&run_figa(Scale::Quick, &scenarios)).to_csv())
        };
        let one = csv(1);
        assert_eq!(one, csv(2), "LP_JOBS=2 drifted from LP_JOBS=1");
        assert_eq!(one, csv(8), "LP_JOBS=8 drifted from LP_JOBS=1");
    }

    #[test]
    fn missing_corpus_degrades_to_healthy_only() {
        assert_eq!(scenarios(None).len(), 1);
        assert_eq!(scenarios(Some("not json")).len(), 1);
    }
}
