//! Fig. 10 / §V-B — deployment overhead on an RPC (gRPC-style) server.
//!
//! The paper integrates LibPreemptible into a thread-pool gRPC server
//! that needs no preemption, drives it open-loop (wrk2) with
//! exponential service times, and measures the latency overhead of
//! carrying the library at different loads and different numbers of
//! user-level threads per kernel thread (T_n): ~1.2% tail overhead at
//! 89% load, growing sublinearly beyond.

use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

use libpreemptible::policy::{FcfsPreempt, NonPreemptive};
use libpreemptible::sched::SchedPolicy;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;
use crate::runner;

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcPoint {
    /// User-level threads per kernel thread.
    pub tn: usize,
    /// Offered load as a fraction of capacity.
    pub rho: f64,
    /// Baseline (no preemption) p99, us.
    pub base_p99_us: f64,
    /// LibPreemptible p99, us.
    pub lp_p99_us: f64,
    /// Tail overhead fraction ((lp - base) / base).
    pub overhead: f64,
}

/// RPC service: exponential, 20 us mean (a lightweight gRPC echo-ish
/// handler at our simulated clock).
fn rpc_service() -> ServiceDist {
    ServiceDist::Exponential {
        mean: SimDur::micros(20),
    }
}

/// Runs the overhead grid.
pub fn run_fig10(scale: Scale, seed: u64) -> Vec<RpcPoint> {
    let workers = 8; // kernel threads in the pool
    let dist = rpc_service();
    let rhos: &[f64] = match scale {
        Scale::Quick => &[0.5, 0.89],
        Scale::Full => &[0.3, 0.5, 0.7, 0.89, 0.95],
    };
    let tns: &[usize] = match scale {
        Scale::Quick => &[1, 8],
        Scale::Full => &[1, 2, 4, 8],
    };
    let cells: Vec<(usize, f64)> = tns
        .iter()
        .flat_map(|&tn| rhos.iter().map(move |&rho| (tn, rho)))
        .collect();
    // Each cell is a self-contained baseline + LibPreemptible pair;
    // cells fan out through the parallel runner in grid order.
    runner::map_points("fig10", &cells, |_, &(tn, rho)| {
        let rate = dist.rate_for_utilization(rho, workers);
        let duration = scale.point_duration();
        let mk_spec = || WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(dist.clone())),
            arrivals: RateSchedule::Constant(rate),
            duration,
            warmup: scale.warmup(),
        };
        // T_n bounds how many in-flight user-level threads each
        // kernel thread multiplexes: the context pool holds
        // workers * tn contexts.
        let mk_cfg = |mech: PreemptMech| RuntimeConfig {
            workers,
            mech,
            pool_capacity: workers * tn * 8,
            seed,
            ..RuntimeConfig::default()
        };
        let base = run(
            mk_cfg(PreemptMech::None),
            Box::new(NonPreemptive) as Box<dyn SchedPolicy>,
            mk_spec(),
        );
        // The server "uses no preemption by default": the library
        // is armed with a generous quantum so handlers virtually
        // never get preempted — the cost measured is carrying the
        // mechanism (deadline arming + timer core).
        // 500 us quantum: P(exp(20us) > 500us) ~ e^-25, so handlers
        // are essentially never preempted and the measurement
        // isolates the cost of *carrying* the mechanism (deadline
        // arming + timer core), as in the paper's setup.
        let lp = run(
            mk_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(500))) as Box<dyn SchedPolicy>,
            mk_spec(),
        );
        let overhead = (lp.p99_us() - base.p99_us()) / base.p99_us();
        RpcPoint {
            tn,
            rho,
            base_p99_us: base.p99_us(),
            lp_p99_us: lp.p99_us(),
            overhead,
        }
    })
}

/// Renders the grid.
pub fn table(points: &[RpcPoint]) -> Table {
    let mut t = Table::new(&[
        "T_n",
        "load",
        "baseline p99 (us)",
        "LibPreemptible p99 (us)",
        "overhead",
    ])
    .with_title("Fig 10: deployment overhead on a thread-pool RPC server");
    for p in points {
        t.row(&[
            p.tn.to_string(),
            format!("{:.0}%", p.rho * 100.0),
            format!("{:.1}", p.base_p99_us),
            format!("{:.1}", p.lp_p99_us),
            format!("{:+.1}%", p.overhead * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_at_high_load() {
        let pts = run_fig10(Scale::Quick, 9);
        let p = pts
            .iter()
            .find(|p| p.tn == 1 && (p.rho - 0.89).abs() < 1e-9)
            .expect("89% load point");
        // §V-B: "around 1.2% tail latency overhead" at 89% load. Allow
        // a loose band — the claim under test is *small*.
        assert!(
            p.overhead.abs() < 0.10,
            "overhead at 89% load = {:.1}%",
            p.overhead * 100.0
        );
    }

    #[test]
    fn all_cells_have_sane_latency() {
        let pts = run_fig10(Scale::Quick, 9);
        for p in &pts {
            assert!(p.base_p99_us > 10.0, "{p:?}");
            assert!(p.lp_p99_us > 10.0, "{p:?}");
        }
        assert_eq!(table(&pts).len(), pts.len());
    }
}
