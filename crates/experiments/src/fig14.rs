//! Fig. 14 — bursty colocation: constant vs adaptive preemption
//! interval under a spiky QPS trace (40 → 110 kRPS).
//!
//! Three policies: constant 50 us (gentle on BE, slow on LC during
//! spikes), constant 10 us (fast LC, heavy BE tax), and the adaptive
//! controller bounded to [10, 50] us that follows the load.

use lp_sim::SimDur;
use lp_stats::Table;
use lp_workload::{ColocatedWorkload, RateSchedule};

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::policy::FcfsPreempt;
use libpreemptible::report::RunReport;
use libpreemptible::runtime::{run, RuntimeConfig, ServiceSource, WorkloadSpec};

use crate::common::Scale;
use crate::runner;

/// Summary of one policy under the bursty trace.
#[derive(Debug)]
pub struct Fig14Row {
    /// Policy label.
    pub policy: String,
    /// Mean LC latency over the run, us.
    pub lc_mean_us: f64,
    /// Mean LC latency during spikes only, us.
    pub lc_spike_mean_us: f64,
    /// Mean BE latency during low load, us.
    pub be_low_mean_us: f64,
    /// Full report (time series for the three panels).
    pub report: RunReport,
}

/// The bursty schedule: base/spike per the paper's 40→110 kRPS trace.
pub fn bursty_schedule(scale: Scale) -> (RateSchedule, SimDur, SimDur) {
    // One cycle: base then spike; several cycles per run.
    let (base_for, spike_for) = match scale {
        Scale::Quick => (SimDur::millis(60), SimDur::millis(20)),
        Scale::Full => (SimDur::millis(600), SimDur::millis(200)),
    };
    (
        RateSchedule::Square {
            base_rps: 40_000.0,
            base_for,
            spike_rps: 110_000.0,
            spike_for,
        },
        base_for,
        spike_for,
    )
}

/// Runs the three policies on the bursty trace.
pub fn run_fig14(scale: Scale, seed: u64) -> Vec<Fig14Row> {
    let (schedule, base_for, spike_for) = bursty_schedule(scale);
    let cycle = base_for + spike_for;
    let duration = cycle * 4;
    let control_period = (cycle / 10).max(SimDur::millis(1));
    let frame = (cycle / 8).max(SimDur::millis(1));

    let mk_spec = || WorkloadSpec {
        source: ServiceSource::Colocated(ColocatedWorkload::paper_config()),
        arrivals: schedule.clone(),
        duration,
        warmup: SimDur::ZERO,
    };
    // Like Fig. 13, the colocation runs on a single worker core so the
    // 100 us BE chunks actually contend with the 1 us LC requests.
    let mk_cfg = || RuntimeConfig {
        workers: 1,
        seed,
        control_period,
        series_frame: Some(frame),
        ..RuntimeConfig::default()
    };

    // Three independent policy runs; controllers are stateful, so each
    // point constructs its own inside the closure and the trio fans out
    // through the parallel runner.
    let labels: [&'static str; 3] = ["constant 50us", "constant 10us", "adaptive [10,50]us"];
    runner::map_points("fig14", &labels, |id, &label| {
        let policy = match id.index {
            0 => FcfsPreempt::fixed(SimDur::micros(50)),
            1 => FcfsPreempt::fixed(SimDur::micros(10)),
            _ => {
                let mut cfg = AdaptiveConfig::paper_defaults(110_000.0);
                cfg.period = control_period;
                cfg.t_min = SimDur::micros(10);
                cfg.t_max = SimDur::micros(50);
                cfg.k1 = SimDur::micros(10);
                cfg.k2 = SimDur::micros(10);
                cfg.k3 = SimDur::micros(10);
                FcfsPreempt::adaptive(QuantumController::new(cfg, SimDur::micros(50)))
            }
        };
        let r = run(mk_cfg(), Box::new(policy), mk_spec());
        // Split frames into spike/base windows by the schedule.
        let in_spike = |start_ns: u64| {
            let into = SimDur::nanos(start_ns) % cycle;
            into >= base_for
        };
        let (mut lc_sum, mut lc_n) = (0.0, 0u64);
        let (mut lc_spike_sum, mut lc_spike_n) = (0.0, 0u64);
        if let Some(lc) = r.latency_series.first() {
            for f in lc.frames() {
                lc_sum += f.sum;
                lc_n += f.count;
                if in_spike(f.start) {
                    lc_spike_sum += f.sum;
                    lc_spike_n += f.count;
                }
            }
        }
        let (mut be_low_sum, mut be_low_n) = (0.0, 0u64);
        if let Some(be) = r.latency_series.get(1) {
            for f in be.frames() {
                if !in_spike(f.start) {
                    be_low_sum += f.sum;
                    be_low_n += f.count;
                }
            }
        }
        Fig14Row {
            policy: label.to_string(),
            lc_mean_us: lc_sum / lc_n.max(1) as f64,
            lc_spike_mean_us: lc_spike_sum / lc_spike_n.max(1) as f64,
            be_low_mean_us: be_low_sum / be_low_n.max(1) as f64,
            report: r,
        }
    })
}

/// Renders the summary.
pub fn table(rows: &[Fig14Row]) -> Table {
    let mut t = Table::new(&[
        "policy",
        "LC mean (us)",
        "LC mean in spikes (us)",
        "BE mean at low load (us)",
    ])
    .with_title("Fig 14: bursty colocation, constant vs adaptive quantum");
    for r in rows {
        t.row(&[
            r.policy.clone(),
            format!("{:.1}", r.lc_mean_us),
            format!("{:.1}", r.lc_spike_mean_us),
            format!("{:.1}", r.be_low_mean_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_gets_best_of_both() {
        let rows = run_fig14(Scale::Quick, 31);
        let at = |label: &str| rows.iter().find(|r| r.policy.contains(label)).unwrap();
        let c50 = at("constant 50us");
        let c10 = at("constant 10us");
        let ad = at("adaptive");
        // 10us keeps LC lower than 50us during spikes.
        assert!(
            c10.lc_spike_mean_us < c50.lc_spike_mean_us,
            "c10 {} vs c50 {}",
            c10.lc_spike_mean_us,
            c50.lc_spike_mean_us
        );
        // Adaptive's LC in spikes tracks the aggressive policy (within
        // 2.5x), while staying gentler than c10 on BE at low load.
        assert!(
            ad.lc_spike_mean_us < 2.5 * c10.lc_spike_mean_us,
            "adaptive spike LC {} vs c10 {}",
            ad.lc_spike_mean_us,
            c10.lc_spike_mean_us
        );
        assert!(
            ad.be_low_mean_us <= c10.be_low_mean_us * 1.05,
            "adaptive BE {} vs c10 BE {}",
            ad.be_low_mean_us,
            c10.be_low_mean_us
        );
    }

    #[test]
    fn qps_series_shows_spikes() {
        let rows = run_fig14(Scale::Quick, 31);
        let qps = rows[0].report.qps_series.as_ref().expect("series");
        let counts: Vec<u64> = qps.frames().iter().map(|f| f.count).collect();
        let max = *counts.iter().max().unwrap();
        let min = counts
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap();
        assert!(max as f64 > 1.8 * min as f64, "no visible spike: {min}..{max}");
        assert_eq!(table(&rows).len(), 3);
    }
}
