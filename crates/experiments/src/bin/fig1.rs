//! Regenerates Fig. 1 (both panels).
use lp_experiments::{common::Scale, fig1};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let left = fig1::run_left(scale);
    let right = fig1::run_right(scale);
    let (tl, tr) = fig1::tables(&left, &right);
    println!("{}", tl.render());
    println!("{}", tr.render());
    lp_experiments::common::save_csv("fig1_left.csv", &tl.to_csv());
    lp_experiments::common::save_csv("fig1_right.csv", &tr.to_csv());
}
