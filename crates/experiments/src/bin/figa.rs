//! Regenerates Fig. A (extension: per-phase decomposition of where the
//! worst request's time went, vs load, healthy vs the pinned chaos
//! cliffs). Reads `results/chaos_corpus.json` when present; without it
//! the sweep covers the healthy baseline alone.
use lp_experiments::{common::Scale, figa};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let corpus = std::fs::read_to_string("results/chaos_corpus.json").ok();
    if corpus.is_none() {
        eprintln!("figa: no results/chaos_corpus.json — healthy baseline only");
    }
    let scenarios = figa::scenarios(corpus.as_deref());
    let rows = figa::run_figa(scale, &scenarios);
    println!("{}", figa::table(&rows).render());
    lp_experiments::common::save_csv("figA.csv", &figa::table(&rows).to_csv());
}
