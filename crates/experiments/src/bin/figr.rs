//! Regenerates Fig. R (extension: tail latency vs IPI fault rate).
use lp_experiments::{common::Scale, figr, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = figr::run_figr(scale, DEFAULT_SEED);
    println!("{}", figr::table(&rows).render());
    lp_experiments::common::save_csv("figR.csv", &figr::table(&rows).to_csv());
}
