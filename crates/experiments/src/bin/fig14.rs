//! Regenerates Fig. 14 (bursty colocation, adaptive quantum).
use lp_experiments::{common::Scale, fig14, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = fig14::run_fig14(scale, DEFAULT_SEED);
    let t = fig14::table(&rows);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig14.csv", &t.to_csv());
}
