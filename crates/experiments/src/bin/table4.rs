//! Regenerates Table IV (IPC mechanism overhead).
use lp_experiments::{common::Scale, table4};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = table4::run(scale);
    let t = table4::table(&rows);
    println!("{}", t.render());
    lp_experiments::common::save_csv("table4.csv", &t.to_csv());
}
