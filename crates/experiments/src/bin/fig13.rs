//! Regenerates Fig. 13 (MICA + zlib colocation).
use lp_experiments::{common::Scale, fig13, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let left = fig13::run_left(scale, DEFAULT_SEED);
    let tl = fig13::table(&left, "Fig 13 (left): fixed 30us quantum vs load");
    println!("{}", tl.render());
    let right = fig13::run_right(scale, DEFAULT_SEED);
    let tr = fig13::table(&right, "Fig 13 (right): quantum sweep at 55 kRPS");
    println!("{}", tr.render());
    lp_experiments::common::save_csv("fig13_left.csv", &tl.to_csv());
    lp_experiments::common::save_csv("fig13_right.csv", &tr.to_csv());
}
