//! Regenerates the extension experiments (X1-X4).
use lp_experiments::{common::Scale, ext, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    println!("{}", ext::power_table().render());
    println!("{}", ext::security_table().render());
    let rows = ext::run_min_quantum(scale, DEFAULT_SEED);
    println!("{}", ext::min_quantum_table(&rows).render());
    println!("{}", ext::hw_offload_table(scale, DEFAULT_SEED).render());
}
