//! Exports one run as a Perfetto / Chrome `trace_event` JSON document
//! — open `results/trace.json` in ui.perfetto.dev or chrome://tracing
//! to see one track per worker with per-fiber execution slices.
//!
//! Usage: `trace_view [scenario]`, where `scenario` is `healthy`
//! (default) or the name of a pinned cliff from
//! `results/chaos_corpus.json` (e.g. `cliff-1`). The run is the same
//! deterministic evaluation figA sweeps — trace capture is a passive
//! observer, so what you see is exactly what the corpus pinned. The
//! trace window keeps the last `TRACE_CAPACITY` events; the summary
//! line reports how many earlier events the wrap evicted.

use lp_chaos::evaluate_report;
use lp_experiments::figa;
use lp_sim::obs::Phase;

/// Events retained in the trace window — sized so a quick-scale
/// horizon fits without eviction.
const TRACE_CAPACITY: usize = 1 << 18;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "healthy".into());
    let corpus = std::fs::read_to_string("results/chaos_corpus.json").ok();
    let scenarios = figa::scenarios(corpus.as_deref());
    let sc = scenarios.iter().find(|s| s.name == want).unwrap_or_else(|| {
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        eprintln!("trace_view: unknown scenario `{want}`; have: {}", names.join(", "));
        std::process::exit(2);
    });

    let r = evaluate_report(&sc.plan, &sc.cfg, false, TRACE_CAPACITY);
    let json = r.perfetto_json();

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace_view: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("trace.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("trace_view: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!(
        "wrote {} ({} events, {} evicted, {} completions)",
        path.display(),
        r.events.len(),
        r.events_dropped,
        r.completions
    );
    if let Some(ex) = r.worst_exemplar() {
        println!(
            "worst request: fiber {} on worker {}, {} us end to end",
            ex.fiber,
            ex.worker,
            ex.latency_ns / 1_000
        );
        for p in Phase::ALL {
            let ns = ex.phase(p);
            if ns > 0 {
                println!("  {:>15}: {} us", p.name(), ns / 1_000);
            }
        }
    }
}
