//! Replays the pinned chaos regression corpus and fails loudly on any
//! drift.
//!
//! For every entry in `results/chaos_corpus.json` the plan is
//! re-evaluated hardened and unhardened under the entry's own pinned
//! `EvalConfig`. The gate fails (exit 1) if any re-derived objective or
//! worst-case differs from the pinned value, if either run breaks
//! arrival conservation (a stranded fiber), or if the hardened runtime
//! no longer beats the unhardened worst case. Entries fan out across
//! `LP_JOBS` worker threads; `results/chaos_replay.csv` is pure-integer
//! and byte-identical at any job count, which is what CI diffs.

use lp_chaos::{corpus, evaluate};
use lp_experiments::runner;

fn main() {
    let path = "results/chaos_corpus.json";
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} — run the `chaos` binary first"));
    let entries = corpus::from_json(&raw)
        .unwrap_or_else(|| panic!("{path} is malformed or has the wrong version"));
    assert!(entries.len() >= 3, "corpus has {} entries, expected >= 3", entries.len());

    let outcomes = runner::map_points("chaos_replay", &entries, |_id, e| {
        (evaluate(&e.plan, &e.cfg, false), evaluate(&e.plan, &e.cfg, true))
    });

    let mut csv = String::from(
        "name,unhardened_objective,unhardened_worst_ns,hardened_objective,hardened_worst_ns\n",
    );
    let mut drifted = false;
    for (e, (u, h)) in entries.iter().zip(&outcomes) {
        let mut fail = |what: &str| {
            eprintln!("DRIFT {}: {what}", e.name);
            drifted = true;
        };
        if (u.objective(), u.worst_ns) != (e.unhardened_objective, e.unhardened_worst_ns) {
            fail(&format!(
                "unhardened (objective, worst_ns) = ({}, {}), pinned ({}, {})",
                u.objective(),
                u.worst_ns,
                e.unhardened_objective,
                e.unhardened_worst_ns
            ));
        }
        if (h.objective(), h.worst_ns) != (e.hardened_objective, e.hardened_worst_ns) {
            fail(&format!(
                "hardened (objective, worst_ns) = ({}, {}), pinned ({}, {})",
                h.objective(),
                h.worst_ns,
                e.hardened_objective,
                e.hardened_worst_ns
            ));
        }
        if !u.conserved || !h.conserved {
            fail("arrival conservation broken — a fiber was stranded");
        }
        if h.worst_ns >= u.worst_ns {
            fail(&format!(
                "hardened worst {} ns no longer beats unhardened worst {} ns",
                h.worst_ns, u.worst_ns
            ));
        }
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            e.name,
            u.objective(),
            u.worst_ns,
            h.objective(),
            h.worst_ns
        ));
    }
    lp_experiments::common::save_csv("chaos_replay.csv", &csv);
    print!("{csv}");
    if drifted {
        eprintln!("corpus replay drifted — regenerate with the `chaos` binary if intended");
        std::process::exit(1);
    }
    println!("corpus replay: {} entries byte-stable", entries.len());
}
