//! Regenerates Fig. 11 (timer delivery scalability).
use lp_experiments::{common::Scale, fig11, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let cells = fig11::run_fig11(scale, DEFAULT_SEED);
    let t = fig11::table(&cells);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig11.csv", &t.to_csv());
}
