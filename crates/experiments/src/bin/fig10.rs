//! Regenerates Fig. 10 (RPC deployment overhead).
use lp_experiments::{common::Scale, fig10, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let pts = fig10::run_fig10(scale, DEFAULT_SEED);
    let t = fig10::table(&pts);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig10.csv", &t.to_csv());
}
