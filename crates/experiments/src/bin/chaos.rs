//! Chaos adversary: searches for worst-case fault plans, minimizes the
//! cliffs it finds, and pins them as the regression corpus at
//! `results/chaos_corpus.json`.
//!
//! The search is deterministic — seeded from `streams::CHAOS` and
//! fanned out through submission-ordered parallel evaluation — so the
//! same seed produces the same corpus bytes at any `LP_JOBS`. An entry
//! is pinned only when the minimized plan still opens a cliff the
//! hardened (admission-armed) runtime closes: `hardened_worst_ns <
//! unhardened_worst_ns` with conservation holding on both sides.
//!
//! `LP_SCALE=quick` shrinks the search budget for CI smoke runs; the
//! committed corpus is generated at full scale.

use lp_chaos::{
    corpus, evaluate, minimize, search, ChaosPlan, CorpusEntry, EvalConfig, EvalOutcome,
    SearchBudget,
};
use lp_experiments::{common::Scale, runner, DEFAULT_SEED};
use lp_sim::rng::{rng, streams};

/// Entries the corpus pins.
const TARGET_ENTRIES: usize = 3;
/// Minimizer floor: keep plans retaining at least this % of the cliff.
const KEEP_FRAC_PCT: u64 = 90;
/// Per-restart sampling restrictions. Unconstrained search converges
/// on pure arrival overload (the strongest single family), so most
/// restarts pin the sampler to fault families the hardening must also
/// survive — drop bursts, core hogs, timer jitter, and mixes.
const RESTART_FAMILIES: [&[&str]; 10] = [
    &[],
    &["drop"],
    &["hog"],
    &["jitter"],
    &["drop", "jitter"],
    &["drop", "hog"],
    &["hog", "jitter"],
    &["drop", "spike"],
    &["jitter", "spike"],
    &["hog", "spike"],
];

/// A plan's fault-family signature: the sorted, deduplicated tags of
/// its atoms. Unconstrained search converges on the single strongest
/// family (pure arrival overload), so the corpus prefers one cliff per
/// signature before admitting a second of the same shape.
fn signature(plan: &ChaosPlan, horizon_us: u64) -> String {
    let mut tags: Vec<&'static str> =
        plan.normalize(horizon_us).iter().map(|s| s.atom.tag()).collect();
    tags.sort_unstable();
    tags.dedup();
    tags.join("+")
}

struct Candidate {
    plan: ChaosPlan,
    text: String,
    unhardened: EvalOutcome,
    hardened: EvalOutcome,
    signature: String,
}

fn main() {
    let scale = Scale::from_env(Scale::Full);
    let budget = match scale {
        Scale::Quick => {
            SearchBudget { population: 4, rungs: 2, descent_passes: 1, jobs: runner::jobs(), families: &[] }
        }
        Scale::Full => {
            SearchBudget { population: 16, rungs: 3, descent_passes: 2, jobs: runner::jobs(), families: &[] }
        }
    };
    let cfg = EvalConfig { seed: DEFAULT_SEED, ..EvalConfig::default() };

    // Every restart runs (no early exit): the candidate pool feeds a
    // signature-diverse selection below, and a fixed restart count
    // keeps the output byte-identical however selection goes.
    let mut candidates: Vec<Candidate> = Vec::new();
    for (offset, families) in RESTART_FAMILIES.iter().enumerate() {
        // Each restart draws from its own frozen substream so restarts
        // explore different plans while staying byte-reproducible.
        let mut r = rng(DEFAULT_SEED + offset as u64, streams::CHAOS);
        let budget = SearchBudget { families, ..budget };
        let found = search(&mut r, &cfg, &budget);
        let cliff = found.outcome.objective();
        let minimized = minimize(&found.plan, &cfg, cliff, KEEP_FRAC_PCT);
        let unhardened = minimized.outcome;
        let hardened = evaluate(&minimized.plan, &cfg, true);
        let keeps_cliff =
            hardened.worst_ns < unhardened.worst_ns && unhardened.conserved && hardened.conserved;
        let sig = signature(&minimized.plan, cfg.horizon_us);
        println!(
            "restart {offset}: cliff objective {cliff}, minimized to {} leaves [{sig}] \
             (worst unhardened {} us, hardened {} us) -> {}",
            minimized.plan.leaves(),
            unhardened.worst_ns / 1_000,
            hardened.worst_ns / 1_000,
            if keeps_cliff { "candidate" } else { "discarded" },
        );
        if keeps_cliff {
            let text = corpus::plan_to_text(&minimized.plan);
            candidates.push(Candidate {
                plan: minimized.plan,
                text,
                unhardened,
                hardened,
                signature: sig,
            });
        }
    }

    // Selection: first pass takes the worst candidate of each distinct
    // fault-family signature; a second pass tops up with the remaining
    // worst cliffs if fewer families than entries were found. Both
    // passes are stable orderings of deterministic scores.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.unhardened.objective()));
    let mut picked: Vec<usize> = Vec::new();
    let mut seen_sigs: Vec<&str> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        if picked.len() >= TARGET_ENTRIES {
            break;
        }
        if !seen_sigs.contains(&c.signature.as_str()) {
            seen_sigs.push(&c.signature);
            picked.push(i);
        }
    }
    // Top-up pass skips byte-identical plans: independent restarts can
    // converge on the same minimized attack, and pinning it twice
    // would waste a corpus slot on a duplicate replay.
    for i in 0..candidates.len() {
        if picked.len() >= TARGET_ENTRIES {
            break;
        }
        if !picked.contains(&i)
            && !picked.iter().any(|&p| candidates[p].text == candidates[i].text)
        {
            picked.push(i);
        }
    }
    let entries: Vec<CorpusEntry> = picked
        .iter()
        .enumerate()
        .map(|(n, &i)| {
            let c = &candidates[i];
            CorpusEntry::new(
                format!("cliff-{n}"),
                cfg,
                c.plan.clone(),
                &c.unhardened,
                &c.hardened,
            )
        })
        .collect();

    assert!(
        entries.len() >= TARGET_ENTRIES,
        "only {} cliffs pinned after {} restarts — widen the search budget",
        entries.len(),
        RESTART_FAMILIES.len()
    );
    let json = corpus::to_json(&entries);
    lp_experiments::common::save_csv("chaos_corpus.json", &json);
    println!("pinned {} entries to results/chaos_corpus.json", entries.len());
    for e in &entries {
        println!(
            "  {}: {} (unhardened worst {} us, hardened worst {} us)",
            e.name,
            corpus::plan_to_text(&e.plan),
            e.unhardened_worst_ns / 1_000,
            e.hardened_worst_ns / 1_000,
        );
    }
}
