//! Regenerates Fig. 2 (tail vs quantum).
use lp_experiments::{common::Scale, fig2, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let pts = fig2::run_fig2(scale, DEFAULT_SEED);
    let t = fig2::table(&pts);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig2.csv", &t.to_csv());
}
