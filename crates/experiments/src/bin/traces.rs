//! Exports deterministic JSONL event traces for the shipped figures'
//! workload shapes, as inputs for `lp-check race` (CI and tier-1 run
//! it over these files and require zero findings).
//!
//! Two traces, both quick-scale so the export stays fast:
//!
//! * `fig2.jsonl` — the Fig. 2 shape: heavy-tailed bimodal service on
//!   16 workers under a 25 us UINTR quantum (fault-free).
//! * `figr.jsonl` — the Fig. R shape: constant 400 us service on 4
//!   workers under a 20 us quantum with a 10% IPI drop rate, so the
//!   watchdog retry/degrade/recover machinery is exercised end to end.
//!
//! The recipes live in `lp_experiments::traces`, shared with the
//! tier-1 gate. Files land under `results/traces/`. Byte-deterministic
//! per seed — the same property `tests/observability.rs` pins for the
//! ring.

use lp_experiments::common::Scale;
use lp_experiments::traces::{fig2_trace, figr_trace};
use lp_experiments::DEFAULT_SEED;

fn write_trace(name: &str, jsonl: &str) {
    let dir = std::path::Path::new("results/traces");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("traces: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, jsonl) {
        eprintln!("traces: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} events)",
        path.display(),
        jsonl.lines().count()
    );
}

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    write_trace("fig2.jsonl", &fig2_trace(scale, DEFAULT_SEED));
    write_trace("figr.jsonl", &figr_trace(scale, DEFAULT_SEED));
}
