//! Regenerates Fig. W (extension: worst-case response vs load,
//! hardened vs unhardened).
use lp_experiments::{common::Scale, figw, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = figw::run_figw(scale, DEFAULT_SEED);
    println!("{}", figw::table(&rows).render());
    lp_experiments::common::save_csv("figW.csv", &figw::table(&rows).to_csv());
}
