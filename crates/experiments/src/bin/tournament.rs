//! Runs the policy tournament and writes the ranked leaderboard to
//! `results/tournament.md` and `results/tournament.json`.
use lp_experiments::{common::Scale, tournament, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = tournament::run_tournament(scale, DEFAULT_SEED);
    let md = tournament::leaderboard_markdown(&rows, DEFAULT_SEED);
    println!("{md}");
    lp_experiments::common::save_csv("tournament.md", &md);
    lp_experiments::common::save_csv(
        "tournament.json",
        &tournament::leaderboard_json(&rows, DEFAULT_SEED),
    );
}
