//! Runs every experiment in paper order.
use lp_experiments::common::save_csv;
use lp_experiments::{common::Scale, *};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let seed = DEFAULT_SEED;
    let t1 = table1::run();
    save_csv("table1.csv", &t1.to_csv());
    println!("{}", t1.render());
    {
        let (tl, tr) = fig1::tables(&fig1::run_left(scale), &fig1::run_right(scale));
        save_csv("fig1_left.csv", &tl.to_csv());
        save_csv("fig1_right.csv", &tr.to_csv());
        println!("{}", tl.render());
        println!("{}", tr.render());
    }
    {
        let t = fig2::table(&fig2::run_fig2(scale, seed));
        save_csv("fig2.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let pts = fig8::run_fig8(scale, seed);
        let t = fig8::sweep_table(&pts);
        save_csv("fig8_sweep.csv", &t.to_csv());
        println!("{}", t.render());
        let rows = fig8::run_max_throughput(scale, seed);
        let t = fig8::max_table(&rows);
        save_csv("fig8_max.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let rows = fig9::run_fig9(scale, seed);
        let t = fig9::table(&rows);
        save_csv("fig9.csv", &t.to_csv());
        println!("{}", t.render());
        let trace = fig9::quantum_trace(&rows);
        save_csv("fig9_trace.csv", &trace.to_csv());
        println!("{}", trace.render());
    }
    {
        let t = fig10::table(&fig10::run_fig10(scale, seed));
        save_csv("fig10.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let t = table4::table(&table4::run(scale));
        save_csv("table4.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let t = fig11::table(&fig11::run_fig11(scale, seed));
        save_csv("fig11.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let t = fig12::table(&fig12::run_fig12(scale, seed));
        save_csv("fig12.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let left = fig13::run_left(scale, seed);
        let t = fig13::table(&left, "Fig 13 (left): fixed 30us quantum vs load");
        save_csv("fig13_left.csv", &t.to_csv());
        println!("{}", t.render());
        let right = fig13::run_right(scale, seed);
        let t = fig13::table(&right, "Fig 13 (right): quantum sweep at 55 kRPS");
        save_csv("fig13_right.csv", &t.to_csv());
        println!("{}", t.render());
    }
    {
        let t = fig14::table(&fig14::run_fig14(scale, seed));
        save_csv("fig14.csv", &t.to_csv());
        println!("{}", t.render());
    }
    println!("{}", ext::power_table().render());
    println!("{}", ext::security_table().render());
    println!("{}", ext::min_quantum_table(&ext::run_min_quantum(scale, seed)).render());
    println!("{}", ext::hw_offload_table(scale, seed).render());
}
