//! Runs every experiment in paper order.
//!
//! The artifact list itself executes serially (stdout follows the
//! paper); each artifact fans its point grid out across `LP_JOBS`
//! worker threads through `lp_experiments::runner`, with output
//! byte-identical to a serial run.
use lp_experiments::common::save_csv;
use lp_experiments::{common::Scale, runner, DEFAULT_SEED};

fn main() {
    let scale = Scale::from_env(Scale::Full);
    let seed = DEFAULT_SEED;
    for (_name, out) in runner::run_artifacts(&runner::all_artifacts(), scale, seed) {
        for (file, csv) in &out.csvs {
            save_csv(file, csv);
        }
        for t in &out.tables {
            println!("{}", t.render());
        }
    }
}
