//! Regenerates Fig. 8 (latency vs throughput + max-throughput summary).
use lp_experiments::{common::Scale, fig8, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let pts = fig8::run_fig8(scale, DEFAULT_SEED);
    let t = fig8::sweep_table(&pts);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig8_sweep.csv", &t.to_csv());
    let rows = fig8::run_max_throughput(scale, DEFAULT_SEED);
    let t = fig8::max_table(&rows);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig8_max.csv", &t.to_csv());
}
