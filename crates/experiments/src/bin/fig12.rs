//! Regenerates Fig. 12 (LibUtimer precision).
use lp_experiments::{common::Scale, fig12, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = fig12::run_fig12(scale, DEFAULT_SEED);
    let t = fig12::table(&rows);
    println!("{}", t.render());
    lp_experiments::common::save_csv("fig12.csv", &t.to_csv());
}
