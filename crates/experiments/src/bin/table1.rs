//! Regenerates Table I.
fn main() {
    println!("{}", lp_experiments::table1::run().render());
}
