//! Regenerates Fig. 9 (adaptive quanta vs SLO violations).
use lp_experiments::{common::Scale, fig9, DEFAULT_SEED};
fn main() {
    let scale = Scale::from_env(Scale::Full);
    let rows = fig9::run_fig9(scale, DEFAULT_SEED);
    println!("{}", fig9::table(&rows).render());
    println!("{}", fig9::quantum_trace(&rows).render());
    lp_experiments::common::save_csv("fig9.csv", &fig9::table(&rows).to_csv());
}
