//! # lp-baselines — the systems LibPreemptible is compared against
//!
//! * [`shinjuku`] — the prior state of the art: a dedicated dispatcher
//!   core with posted-IPI preemption and a centralized queue (§V-A's
//!   main comparison).
//! * [`libinger`] — preemptible functions on kernel timers + signals
//!   (the Libinger/libturquoise lineage).
//! * [`ktimer`] — the four timer-delivery strategies of Fig. 11
//!   (per-thread creation-time/aligned, per-process chained, and
//!   LibUtimer's user-timer).
//!
//! The "LibPreemptible w/o UINTR" ablation (Fig. 8's orange line) and
//! the non-preemptive baseline live in the core crate as
//! [`libpreemptible::PreemptMech`] variants, since they share the
//! runtime.

#![warn(missing_docs)]

pub mod ktimer;
pub mod libinger;
pub mod shinjuku;

pub use ktimer::{measure, TimerOverhead, TimerStrategy};
pub use libinger::{run_libinger, LibingerConfig};
pub use shinjuku::{run_shinjuku, ShinjukuConfig};
