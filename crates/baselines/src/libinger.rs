//! The Libinger baseline (Boucher et al., ATC'20 "lightweight
//! preemptible functions" / libturquoise).
//!
//! Libinger provides general-purpose preemptible functions using
//! **regular kernel timer interrupts + signals** as the preemption
//! mechanism, with glibc modifications for safe interruption. Two
//! consequences the paper measures:
//!
//! * the minimum usable quantum is bounded by the kernel timer floor
//!   and signal cost (tens of microseconds), and
//! * per-preemption overhead is the full signal path.
//!
//! Mechanically this is LibPreemptible's runtime with
//! [`PreemptMech::KernelTimerSignal`], which is exactly how we model it
//! — the *scheduling* structure is the same; the delivery substrate is
//! what differs (the paper makes the same observation in §VI).

use lp_sim::SimDur;

use libpreemptible::policy::RoundRobin;
use libpreemptible::report::RunReport;
use libpreemptible::runtime::{run, PreemptMech, RuntimeConfig, WorkloadSpec};

/// Libinger configuration.
#[derive(Debug, Clone)]
pub struct LibingerConfig {
    /// Worker threads.
    pub workers: usize,
    /// The preemption quantum. Libinger cannot usefully go below the
    /// kernel timer floor (~55 us); the default matches its published
    /// millisecond-to-tens-of-microseconds operating range.
    pub quantum: SimDur,
    /// Master seed.
    pub seed: u64,
}

impl Default for LibingerConfig {
    fn default() -> Self {
        LibingerConfig {
            workers: 5,
            quantum: SimDur::micros(60),
            seed: 1,
        }
    }
}

/// Runs the Libinger baseline on the given workload.
pub fn run_libinger(cfg: LibingerConfig, spec: WorkloadSpec) -> RunReport {
    let rt = RuntimeConfig {
        workers: cfg.workers,
        timer_cores: 0,
        mech: PreemptMech::KernelTimerSignal,
        seed: cfg.seed,
        ..RuntimeConfig::default()
    };
    // Libinger provides general-purpose timeshared preemptible
    // functions, not LibPreemptible's short-jobs-first two-level
    // scheduler: round-robin between fresh and preempted work is the
    // faithful policy.
    let mut report = run(rt, Box::new(RoundRobin::fixed(cfg.quantum)), spec);
    report.system = format!("Libinger (q={})", cfg.quantum);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use libpreemptible::runtime::ServiceSource;
    use lp_workload::{PhasedService, RateSchedule, ServiceDist};

    fn spec(rate: f64, ms: u64) -> WorkloadSpec {
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_a1())),
            arrivals: RateSchedule::Constant(rate),
            duration: SimDur::millis(ms),
            warmup: SimDur::millis(ms / 10),
        }
    }

    #[test]
    fn runs_and_conserves() {
        let r = run_libinger(LibingerConfig::default(), spec(200_000.0, 100));
        assert!(r.is_conserved());
        assert!(r.completions > 10_000);
        assert!(r.system.contains("Libinger"));
    }

    #[test]
    fn kernel_timer_floor_limits_effective_quantum() {
        // Asking for a 5 us quantum through kernel timers still yields
        // preemptions at ~the timer floor: long requests get far fewer
        // preemptions than the quantum would suggest.
        let spec_ = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
                SimDur::micros(200),
            ))),
            arrivals: RateSchedule::Constant(5_000.0),
            duration: SimDur::millis(100),
            warmup: SimDur::ZERO,
        };
        let r = run_libinger(
            LibingerConfig {
                quantum: SimDur::micros(5),
                ..LibingerConfig::default()
            },
            spec_,
        );
        // 200 us work at a nominal 5 us quantum would be ~39
        // preemptions per request; the floor (~55 us + signal latency)
        // allows at most ~4.
        let per_req = r.preemptions as f64 / r.completions.max(1) as f64;
        assert!(per_req < 6.0, "preemptions/request = {per_req}");
        assert!(r.preemptions > 0, "floor should still allow some preemption");
    }
}
