//! The Shinjuku baseline (Kaffes et al., NSDI'19), as characterized in
//! the paper's evaluation.
//!
//! Shinjuku implements centralized preemptive scheduling: a **dedicated
//! dispatcher core** owns a single request queue, hands requests to
//! workers, tracks each worker's elapsed quantum in its polling loop,
//! and preempts overrunning workers with **posted IPIs** through a
//! ring-3-mapped APIC. Preempted requests return to the tail of the
//! central queue (cFCFS).
//!
//! The relevant mechanism differences from LibPreemptible, all modeled
//! explicitly:
//!
//! * preemption delivery is an ordinary IPI (µs-scale, kernel-trampoline
//!   receiver cost) instead of a user interrupt;
//! * every scheduling decision crosses dispatcher↔worker cachelines and
//!   is only noticed at the dispatcher's loop granularity;
//! * the quantum is static — Shinjuku "needs careful profiling to
//!   select the right time quanta" (§V-A), which experiments mirror by
//!   sweeping.

use std::collections::VecDeque;

use lp_hw::{CoreClock, HwCosts, TimeClass};
use lp_sim::obs::{Event, Observer};
use lp_sim::rng::{rng, streams};
use lp_sim::{Ctx, EventId, Model, SimDur, SimTime, Simulation};
use lp_stats::{Histogram, TimeSeries, WindowStats};
use lp_workload::ArrivalGen;
use rand::rngs::SmallRng;

use libpreemptible::report::RunReport;
use libpreemptible::runtime::{ServiceSource, WorkloadSpec};

/// Shinjuku configuration.
#[derive(Debug, Clone)]
pub struct ShinjukuConfig {
    /// Worker cores (the dispatcher core is extra, as in the paper's
    /// "1 network thread, 5 worker threads" setup).
    pub workers: usize,
    /// The static preemption quantum; [`SimDur::MAX`] disables
    /// preemption.
    pub quantum: SimDur,
    /// Hardware cost model.
    pub hw: HwCosts,
    /// Dispatcher loop iteration time (how often it checks quanta and
    /// idle workers).
    pub loop_granularity: SimDur,
    /// Dispatcher cost to hand one request to a worker.
    pub dispatch_cost: SimDur,
    /// Receiver-side cost of taking a posted IPI and trampolining back
    /// to the dispatcher-provided context (Shinjuku's interposition
    /// layer).
    pub preempt_receiver_cost: SimDur,
    /// Master seed.
    pub seed: u64,
    /// Bound on queued requests (beyond it arrivals drop, modeling
    /// finite rings).
    pub queue_capacity: usize,
    /// Record time series at this frame width.
    pub series_frame: Option<SimDur>,
    /// Keep the last N typed trace events (0 disables the ring; see
    /// `docs/TRACING.md`). The baseline emits the same lifecycle
    /// vocabulary as the runtime so traces and attribution compare
    /// apples to apples.
    pub trace_capacity: usize,
    /// Tail attribution (see [`RunReport::phases`]); always-on, the
    /// off switch exists only for overhead measurement.
    pub attribution: bool,
}

impl Default for ShinjukuConfig {
    fn default() -> Self {
        ShinjukuConfig {
            workers: 5,
            quantum: SimDur::micros(5),
            hw: HwCosts::default(),
            loop_granularity: SimDur::nanos(120),
            dispatch_cost: SimDur::nanos(220),
            // The Shinjuku paper reports ~2 us end-to-end per preemption
            // (interrupt entry + interposition trampoline).
            preempt_receiver_cost: SimDur::nanos(1_800),
            seed: 1,
            queue_capacity: 65_536,
            series_frame: None,
            trace_capacity: 0,
            attribution: true,
        }
    }
}

#[derive(Debug)]
enum Ev {
    Arrival,
    /// Dispatcher assigns queued work to an idle worker.
    Assign,
    Finish { worker: usize, seq: u64 },
    /// Dispatcher's loop notices worker `w` exceeded its quantum.
    QuantumCheck { worker: usize, seq: u64 },
    /// The IPI lands on the worker.
    PreemptArrive { worker: usize, seq: u64 },
    /// The worker finished the preemption trampoline and is idle again.
    PreemptDone { worker: usize },
}

struct Task {
    arrived: SimTime,
    remaining: SimDur,
    class: u8,
    /// Stable per-request id for the trace/attribution vocabulary
    /// (the runtime uses context-pool indices; here requests never
    /// share storage, so the arrival ordinal serves).
    fiber: u32,
    /// `true` once the task has been preempted at least once — the
    /// next `task_start` is a resume.
    preempted: bool,
}

enum WState {
    Idle,
    /// Taking a preemption interrupt: the trampoline occupies the core.
    Switching,
    Running {
        task: Task,
        started: SimTime,
        finish_ev: EventId,
        check_ev: EventId,
    },
}

struct Worker {
    state: WState,
    seq: u64,
    clock: CoreClock,
}

struct ShinjukuSystem {
    cfg: ShinjukuConfig,
    spec: WorkloadSpec,
    queue: VecDeque<Task>,
    workers: Vec<Worker>,
    dispatcher: CoreClock,
    dispatcher_free_at: SimTime,
    arrivals_gen: ArrivalGen,
    service_rng: SmallRng,
    hw_rng: SmallRng,
    assign_pending: bool,

    /// Same cross-layer event/metrics/attribution hub as the runtime.
    obs: Observer,

    arrivals: u64,
    completions: u64,
    dropped: u64,
    preemptions: u64,
    spurious: u64,
    window: WindowStats,
    latency: Histogram,
    latency_by_class: Vec<Histogram>,
    latency_series: Vec<TimeSeries>,
}

impl ShinjukuSystem {
    fn new(cfg: ShinjukuConfig, spec: WorkloadSpec) -> Self {
        let workers = (0..cfg.workers)
            .map(|_| Worker {
                state: WState::Idle,
                seq: 0,
                clock: CoreClock::new(),
            })
            .collect();
        let mut obs = Observer::new(cfg.trace_capacity);
        obs.set_attribution_enabled(cfg.attribution);
        ShinjukuSystem {
            obs,
            arrivals_gen: ArrivalGen::new(spec.arrivals.clone(), rng(cfg.seed, streams::ARRIVALS)),
            service_rng: rng(cfg.seed, streams::SERVICE),
            hw_rng: rng(cfg.seed, streams::HW_JITTER),
            queue: VecDeque::new(),
            workers,
            dispatcher: CoreClock::new(),
            dispatcher_free_at: SimTime::ZERO,
            assign_pending: false,
            arrivals: 0,
            completions: 0,
            dropped: 0,
            preemptions: 0,
            spurious: 0,
            window: WindowStats::new(),
            latency: Histogram::new(),
            latency_by_class: (0..2).map(|_| Histogram::new()).collect(),
            latency_series: match cfg.series_frame {
                Some(f) => (0..2).map(|_| TimeSeries::new(f.as_nanos())).collect(),
                None => vec![],
            },
            cfg,
            spec,
        }
    }

    fn jitter(&mut self, base: SimDur) -> SimDur {
        lp_hw::jitter::sample(&mut self.hw_rng, base, self.cfg.hw.jitter_sigma)
    }

    /// Schedules an Assign if work and an idle worker exist and none is
    /// already pending.
    fn kick_dispatcher(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.assign_pending || self.queue.is_empty() {
            return;
        }
        if self.workers.iter().any(|w| matches!(w.state, WState::Idle)) {
            self.assign_pending = true;
            // The dispatcher notices at its loop granularity and
            // serializes on its own core.
            let notice = ctx.now() + self.jitter(self.cfg.loop_granularity);
            let start = self.dispatcher_free_at.max(notice);
            self.dispatcher_free_at = start + self.cfg.dispatch_cost;
            self.dispatcher
                .charge(TimeClass::Dispatch, self.cfg.dispatch_cost);
            ctx.at(self.dispatcher_free_at, Ev::Assign);
        }
    }

    fn record_completion(&mut self, arrived: SimTime, class: u8, now: SimTime) {
        self.completions += 1;
        self.window.on_completion(now.since(arrived).as_nanos());
        if arrived < SimTime::ZERO + self.spec.warmup {
            return;
        }
        let lat = now.since(arrived);
        self.latency.record(lat.as_nanos());
        if let Some(h) = self.latency_by_class.get_mut(class as usize) {
            h.record(lat.as_nanos());
        }
        if let Some(ts) = self.latency_series.get_mut(class as usize) {
            ts.record(now.as_nanos(), lat.as_micros_f64());
        }
    }

    fn start_on(&mut self, worker: usize, task: Task, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        // Handoff: worker observes the assignment (cacheline transfer)
        // and switches onto the request context.
        let start = now + self.cfg.hw.fcontext_switch;
        self.obs.emit(
            now,
            Event::SwitchBegin {
                worker: worker as u16,
                fiber: task.fiber,
                resumed: task.preempted,
            },
        );
        self.obs.emit(
            start,
            Event::TaskStart {
                worker: worker as u16,
                fiber: task.fiber,
                resumed: task.preempted,
                switch_ns: start.since(now).as_nanos().min(u64::from(u32::MAX)) as u32,
            },
        );
        self.workers[worker].seq += 1;
        let seq = self.workers[worker].seq;
        let finish_ev = ctx.at(start + task.remaining, Ev::Finish { worker, seq });
        // The dispatcher will notice quantum expiry at loop granularity.
        let check_ev = if self.cfg.quantum != SimDur::MAX {
            let poll = self.cfg.loop_granularity.as_nanos().max(1);
            let expiry = (start + self.cfg.quantum).as_nanos().div_ceil(poll) * poll;
            ctx.at(
                SimTime::from_nanos(expiry),
                Ev::QuantumCheck { worker, seq },
            )
        } else {
            // Dummy id: schedule nothing by reusing finish (never
            // cancelled separately). Use a no-op far-future event.
            finish_ev
        };
        self.workers[worker]
            .clock
            .charge(TimeClass::Dispatch, self.cfg.hw.fcontext_switch);
        self.workers[worker].state = WState::Running {
            task,
            started: start,
            finish_ev,
            check_ev,
        };
    }
}

impl Model for ShinjukuSystem {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Arrival => {
                let now = ctx.now();
                self.arrivals += 1;
                self.window.on_arrival();
                let (class, service) = match &self.spec.source {
                    ServiceSource::Phased(p) => (0u8, p.sample(now, &mut self.service_rng)),
                    ServiceSource::Colocated(c) => {
                        let (cl, s) = c.sample(&mut self.service_rng);
                        (
                            match cl {
                                lp_workload::JobClass::LatencyCritical => 0,
                                lp_workload::JobClass::BestEffort => 1,
                            },
                            s,
                        )
                    }
                };
                self.obs.emit(now, Event::Arrival { class });
                if self.queue.len() >= self.cfg.queue_capacity {
                    self.dropped += 1;
                    self.obs.emit(now, Event::Drop { class });
                } else {
                    self.queue.push_back(Task {
                        arrived: now,
                        remaining: service,
                        class,
                        fiber: (self.arrivals - 1).min(u64::from(u32::MAX)) as u32,
                        preempted: false,
                    });
                    self.kick_dispatcher(ctx);
                }
                let next = self.arrivals_gen.next_arrival(now);
                if next < SimTime::ZERO + self.spec.duration {
                    ctx.at(next, Ev::Arrival);
                }
            }
            Ev::Assign => {
                self.assign_pending = false;
                let Some(task) = self.queue.pop_front() else {
                    return;
                };
                let idle = self
                    .workers
                    .iter()
                    .position(|w| matches!(w.state, WState::Idle));
                match idle {
                    Some(w) => {
                        self.start_on(w, task, ctx);
                        self.kick_dispatcher(ctx);
                    }
                    None => {
                        // Assignment raced: requeue at the head.
                        self.queue.push_front(task);
                    }
                }
            }
            Ev::Finish { worker, seq } => {
                if self.workers[worker].seq != seq {
                    return;
                }
                let state = std::mem::replace(&mut self.workers[worker].state, WState::Idle);
                let WState::Running {
                    task,
                    started,
                    check_ev,
                    ..
                } = state
                else {
                    return;
                };
                let now = ctx.now();
                ctx.cancel(check_ev);
                self.workers[worker]
                    .clock
                    .charge(TimeClass::Work, now.saturating_since(started));
                self.workers[worker].seq += 1;
                self.obs.emit(
                    now,
                    Event::TaskFinish {
                        worker: worker as u16,
                        fiber: task.fiber,
                        latency_ns: now.since(task.arrived).as_nanos(),
                    },
                );
                self.record_completion(task.arrived, task.class, now);
                self.kick_dispatcher(ctx);
            }
            Ev::QuantumCheck { worker, seq } => {
                if self.workers[worker].seq != seq {
                    return;
                }
                // The dispatcher observed an overrun: send the posted
                // IPI from the dispatcher core.
                let icr = self.jitter(self.cfg.hw.apic_icr_write);
                self.dispatcher.charge(TimeClass::Preemption, icr);
                let delivery = self.jitter(self.cfg.hw.ipi_delivery);
                ctx.at(ctx.now() + icr + delivery, Ev::PreemptArrive { worker, seq });
            }
            Ev::PreemptArrive { worker, seq } => {
                let now = ctx.now();
                let recv = self.cfg.preempt_receiver_cost + self.cfg.hw.fcontext_switch;
                if self.workers[worker].seq != seq {
                    self.spurious += 1;
                    self.obs.emit(now, Event::SpuriousPreempt { worker: worker as u16 });
                    self.workers[worker].clock.charge(TimeClass::Preemption, recv);
                    return;
                }
                let state =
                    std::mem::replace(&mut self.workers[worker].state, WState::Switching);
                let WState::Running {
                    mut task,
                    started,
                    finish_ev,
                    ..
                } = state
                else {
                    self.workers[worker].state = state;
                    return;
                };
                ctx.cancel(finish_ev);
                let executed = now.saturating_since(started);
                let w = &mut self.workers[worker];
                w.clock.charge(TimeClass::Work, executed);
                w.clock.charge(TimeClass::Preemption, recv);
                w.seq += 1;
                task.remaining = task.remaining.saturating_sub(executed);
                if task.remaining.is_zero() {
                    // The IPI raced completion: treat as completed.
                    self.obs.emit(
                        now,
                        Event::TaskFinish {
                            worker: worker as u16,
                            fiber: task.fiber,
                            latency_ns: now.since(task.arrived).as_nanos(),
                        },
                    );
                    self.record_completion(task.arrived, task.class, now);
                } else {
                    task.remaining += self.cfg.hw.switch_pollution;
                    self.preemptions += 1;
                    self.obs.emit(
                        now,
                        Event::Preempt {
                            worker: worker as u16,
                            fiber: task.fiber,
                            ran_ns: executed.as_nanos(),
                        },
                    );
                    task.preempted = true;
                    // cFCFS: preempted work re-enters at the tail.
                    self.queue.push_back(task);
                }
                // The trampoline occupies this core for `recv`; other
                // idle workers may pick the requeued task meanwhile.
                ctx.at(now + recv, Ev::PreemptDone { worker });
                self.kick_dispatcher(ctx);
            }
            Ev::PreemptDone { worker } => {
                if matches!(self.workers[worker].state, WState::Switching) {
                    self.workers[worker].state = WState::Idle;
                    self.kick_dispatcher(ctx);
                }
            }
        }
    }
}

/// Runs Shinjuku on the given workload.
///
/// ```
/// use lp_baselines::shinjuku::{run_shinjuku, ShinjukuConfig};
/// use libpreemptible::{ServiceSource, WorkloadSpec};
/// use lp_sim::SimDur;
/// use lp_workload::{PhasedService, RateSchedule, ServiceDist};
///
/// let report = run_shinjuku(
///     ShinjukuConfig { workers: 2, ..ShinjukuConfig::default() },
///     WorkloadSpec {
///         source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_b())),
///         arrivals: RateSchedule::Constant(50_000.0),
///         duration: SimDur::millis(50),
///         warmup: SimDur::millis(5),
///     },
/// );
/// assert!(report.is_conserved());
/// ```
pub fn run_shinjuku(cfg: ShinjukuConfig, spec: WorkloadSpec) -> RunReport {
    let name = if cfg.quantum == SimDur::MAX {
        "Shinjuku (no preemption)".to_string()
    } else {
        format!("Shinjuku (q={})", cfg.quantum)
    };
    let duration = spec.duration;
    let offered = spec.arrivals.peak_rate();
    // Arrival-rate hint: ~100 us of peak arrivals in flight plus
    // per-worker bookkeeping events (see lp_sim::EventQueue docs).
    let queue_hint = 64 + (offered * 1e-4) as usize;
    let model = ShinjukuSystem::new(cfg, spec);
    let mut sim = Simulation::with_capacity(model, queue_hint);
    sim.schedule_at(SimTime::ZERO, Ev::Arrival);
    sim.run_until(SimTime::ZERO + duration);
    let mut m = sim.into_model();
    let per_worker: Vec<CoreClock> = m.workers.iter().map(|w| w.clock.clone()).collect();
    let mut cores = CoreClock::new();
    for w in &per_worker {
        cores.merge(w);
    }
    cores.merge(&m.dispatcher);
    let in_flight = m.queue.len() as u64
        + m.workers
            .iter()
            .filter(|w| matches!(w.state, WState::Running { .. }))
            .count() as u64;
    let end = SimTime::ZERO + duration;
    let oldest_inflight_ns = m
        .queue
        .iter()
        .map(|t| t.arrived)
        .chain(m.workers.iter().filter_map(|w| match &w.state {
            WState::Running { task, .. } => Some(task.arrived),
            _ => None,
        }))
        .map(|t| end.saturating_since(t).as_nanos())
        .max()
        .unwrap_or(0);
    RunReport {
        system: name,
        offered_rps: offered,
        duration,
        arrivals: m.arrivals,
        completions: m.completions,
        dropped: m.dropped,
        in_flight,
        oldest_inflight_ns,
        latency: m.latency,
        latency_by_class: m.latency_by_class,
        preemptions: m.preemptions,
        spurious_preemptions: m.spurious,
        cores,
        per_worker,
        timer_core: m.dispatcher,
        latency_series: m.latency_series,
        qps_series: None,
        quantum_series: None,
        slo_series: None,
        final_quantum: SimDur::ZERO,
        metrics: m.obs.snapshot(),
        events_dropped: m.obs.ring().overwritten(),
        events: m.obs.take_events(),
        phases: m.obs.take_phases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_workload::{PhasedService, RateSchedule, ServiceDist};

    fn spec(rate: f64, ms: u64, dist: ServiceDist) -> WorkloadSpec {
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(dist)),
            arrivals: RateSchedule::Constant(rate),
            duration: SimDur::millis(ms),
            warmup: SimDur::millis(ms / 10),
        }
    }

    #[test]
    fn conserves_and_completes_at_low_load() {
        let r = run_shinjuku(
            ShinjukuConfig::default(),
            spec(100_000.0, 100, ServiceDist::workload_b()),
        );
        assert!(r.is_conserved());
        assert!(r.completions > 8_000);
        assert!(r.median_us() < 20.0, "median {}", r.median_us());
    }

    #[test]
    fn preempts_long_requests() {
        let r = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::micros(10),
                ..ShinjukuConfig::default()
            },
            spec(10_000.0, 50, ServiceDist::Constant(SimDur::micros(100))),
        );
        assert!(r.preemptions > 4 * r.completions, "{r:?}");
        assert!(r.is_conserved());
    }

    #[test]
    fn no_preemption_mode() {
        let r = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::MAX,
                ..ShinjukuConfig::default()
            },
            spec(100_000.0, 50, ServiceDist::workload_b()),
        );
        assert_eq!(r.preemptions, 0);
        assert!(r.is_conserved());
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_shinjuku(
                ShinjukuConfig::default(),
                spec(300_000.0, 50, ServiceDist::workload_a1()),
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.latency.p99(), b.latency.p99());
    }

    #[test]
    fn phase_breakdown_sums_to_end_to_end_latency() {
        // Same tail-attribution contract as the runtime: the baseline's
        // event stream must keep every pinned exemplar's phase
        // breakdown summing exactly to its end-to-end latency.
        let r = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::micros(10),
                ..ShinjukuConfig::default()
            },
            spec(10_000.0, 50, ServiceDist::Constant(SimDur::micros(100))),
        );
        assert_eq!(r.phases.end_to_end.count(), r.completions);
        let exemplars = r.phases.exemplars();
        assert!(!exemplars.is_empty(), "no exemplar pinned");
        for ex in &exemplars {
            assert_eq!(
                ex.phase_sum(),
                ex.latency_ns,
                "phase breakdown does not sum to latency: {ex:?}"
            );
        }
        // 100us tasks on a 10us quantum: the worst request visibly
        // pays switch overhead, and trace capture works when asked.
        use lp_sim::obs::Phase;
        let worst = r.worst_exemplar().unwrap();
        assert!(worst.phase(Phase::PreemptSwitch) > 0, "{worst:?}");
        let traced = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::micros(10),
                trace_capacity: 4096,
                ..ShinjukuConfig::default()
            },
            spec(10_000.0, 50, ServiceDist::Constant(SimDur::micros(100))),
        );
        assert!(traced.events.iter().any(|te| te.ev.name() == "task_start"));
        assert!(traced.perfetto_json().contains("\"ph\":\"X\""));
    }

    #[test]
    fn preemption_helps_bimodal_tail_vs_run_to_completion() {
        let dist = ServiceDist::workload_a1();
        let rate = 1_000_000.0; // ~60% of 5 workers' capacity
        let pre = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::micros(5),
                ..ShinjukuConfig::default()
            },
            spec(rate, 200, dist.clone()),
        );
        let non = run_shinjuku(
            ShinjukuConfig {
                quantum: SimDur::MAX,
                ..ShinjukuConfig::default()
            },
            spec(rate, 200, dist),
        );
        assert!(
            pre.p99_us() * 2.0 < non.p99_us(),
            "pre {} vs non {}",
            pre.p99_us(),
            non.p99_us()
        );
    }
}
