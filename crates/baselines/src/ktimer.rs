//! Kernel-timer delivery strategies — the Fig. 11 scalability
//! microbenchmark.
//!
//! Four ways to give N threads periodic preemption timers, measured by
//! the mean delivery overhead (intended expiry → handler running) over
//! a fixed number of interrupts:
//!
//! * **per-thread (creation-time)** — every thread arms its own timer at
//!   thread-creation time, so all expiries align and storm the kernel
//!   signal lock each period (superlinear).
//! * **per-thread (aligned)** — expiries explicitly staggered across the
//!   period to avoid contention (flat, but the *intended* timing is
//!   shifted — the precision cost the paper notes).
//! * **per-process (chain)** — Shiina et al.'s chained signals: one
//!   kernel timer, the handler forwards to the next thread (linear).
//! * **per-thread (user-timer)** — LibUtimer: the timer core `SENDUIPI`s
//!   each thread (flat at user-interrupt latency).

use lp_hw::HwCosts;
use lp_kernel::{KernelCosts, SignalPath};
use lp_sim::rng::rng;
use lp_sim::{SimDur, SimTime};

/// The four strategies of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerStrategy {
    /// Per-thread timers armed at creation time (aligned expiries).
    PerThreadCreationTime,
    /// Per-thread timers explicitly staggered across the interval.
    PerThreadAligned,
    /// One per-process timer, chained signal forwarding.
    PerProcessChain,
    /// LibUtimer's user-timer (timer core + `SENDUIPI`).
    UserTimer,
}

impl TimerStrategy {
    /// All strategies in Fig. 11's legend order.
    pub const ALL: [TimerStrategy; 4] = [
        TimerStrategy::PerThreadCreationTime,
        TimerStrategy::PerThreadAligned,
        TimerStrategy::PerProcessChain,
        TimerStrategy::UserTimer,
    ];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            TimerStrategy::PerThreadCreationTime => "per-thread (creation-time)",
            TimerStrategy::PerThreadAligned => "per-thread (aligned)",
            TimerStrategy::PerProcessChain => "per-process (chain)",
            TimerStrategy::UserTimer => "per-thread (user-timer)",
        }
    }
}

/// Result of one strategy × thread-count cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerOverhead {
    /// Mean delivery overhead per interrupt, microseconds.
    pub mean_us: f64,
    /// Worst observed delivery overhead, microseconds.
    pub max_us: f64,
}

/// Measures timer delivery overhead for `threads` threads receiving
/// `rounds` periodic interrupts at `interval` (Fig. 11 uses 1000
/// interrupts at 100 us).
pub fn measure(
    strategy: TimerStrategy,
    threads: usize,
    rounds: usize,
    interval: SimDur,
    seed: u64,
) -> TimerOverhead {
    assert!(threads > 0 && rounds > 0);
    let kernel = KernelCosts::default();
    let hw = HwCosts::default();
    let mut hw_rng = rng(seed, 2);
    // One hop of a chained signal: the handler tgkill()s the next
    // thread and the warm uncontended kernel path delivers (Shiina et
    // al. report low-microsecond hops). Expiry *accuracy* is Fig. 12's
    // subject, not this benchmark's, so expiries are taken as on-time.
    let chain_hop = kernel.signal_handler + kernel.syscall + SimDur::nanos(1_200);

    let mut total_us = 0.0;
    let mut max_us: f64 = 0.0;
    let mut n = 0u64;
    let mut record = |overhead: SimDur| {
        let us = overhead.as_micros_f64();
        total_us += us;
        max_us = max_us.max(us);
        n += 1;
    };

    for round in 0..rounds {
        let intended = SimTime::ZERO + interval * (round as u64 + 1);
        // Each round's storm is independent: the previous round's
        // backlog has drained over the (long) interval. A fresh signal
        // path per round models that without cross-round divergence.
        let mut signal = SignalPath::new(kernel.clone(), rng(seed, 1_000 + round as u64));
        match strategy {
            TimerStrategy::PerThreadCreationTime => {
                // All threads' timers expire together and storm the
                // kernel signal lock.
                for _ in 0..threads {
                    let d = signal.deliver(intended);
                    record(d.handler_start.saturating_since(intended));
                }
            }
            TimerStrategy::PerThreadAligned => {
                // Thread i's expiry staggered by i * interval/threads:
                // no two signals contend. Overhead is measured against
                // each thread's own (staggered) intent; the stagger
                // itself is the *precision* cost Fig. 12 discusses, not
                // a delivery overhead.
                for i in 0..threads {
                    let phase = interval.mul_f64(i as f64 / threads as f64);
                    let this_intended = intended + phase;
                    let d = signal.deliver(this_intended);
                    record(d.handler_start.saturating_since(this_intended));
                }
            }
            TimerStrategy::PerProcessChain => {
                // One timer fires with a full (cold) signal delivery;
                // each handler then forwards along the warm chained
                // path, so hops are serial and uncontended but
                // accumulate down the chain.
                let first = signal.deliver(intended);
                let mut at = first.handler_start;
                record(at.saturating_since(intended));
                for _ in 1..threads {
                    at += lp_hw::jitter::sample(&mut hw_rng, chain_hop, 0.1);
                    record(at.saturating_since(intended));
                }
            }
            TimerStrategy::UserTimer => {
                // The timer core notices within a poll iteration and
                // SENDUIPIs each thread serially.
                let mut issue = intended + lp_hw::jitter::sample(&mut hw_rng, hw.poll_loop, 0.3);
                for _ in 0..threads {
                    issue += lp_hw::jitter::sample(&mut hw_rng, hw.senduipi_issue, hw.jitter_sigma);
                    let deliver = lp_hw::jitter::sample(
                        &mut hw_rng,
                        hw.uintr_delivery_running,
                        hw.jitter_sigma,
                    ) + hw.uintr_handler;
                    record((issue + deliver).saturating_since(intended));
                }
            }
        }
    }
    TimerOverhead {
        mean_us: total_us / n as f64,
        max_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(strategy: TimerStrategy, threads: usize) -> f64 {
        measure(strategy, threads, 200, SimDur::micros(100), 42).mean_us
    }

    #[test]
    fn fig11_ordering_at_32_threads() {
        let creation = mean(TimerStrategy::PerThreadCreationTime, 32);
        let aligned = mean(TimerStrategy::PerThreadAligned, 32);
        let chain = mean(TimerStrategy::PerProcessChain, 32);
        let utimer = mean(TimerStrategy::UserTimer, 32);
        // The paper's ordering: creation-time worst, aligned ~10x
        // better, chain in between, LibUtimer best.
        assert!(creation > chain, "creation {creation} vs chain {chain}");
        assert!(chain > utimer, "chain {chain} vs utimer {utimer}");
        assert!(aligned < creation / 2.0, "aligned {aligned} vs creation {creation}");
        // Serial SENDUIPI issue to 32 simultaneous targets costs a few
        // us in the worst case — still an order of magnitude under the
        // best kernel path.
        assert!(utimer < 4.0, "utimer overhead {utimer} us");
        assert!(utimer < aligned / 2.0, "utimer {utimer} vs aligned {aligned}");
        assert!(creation > 50.0, "creation-time should storm: {creation} us");
    }

    #[test]
    fn creation_time_is_superlinear() {
        let m4 = mean(TimerStrategy::PerThreadCreationTime, 4);
        let m32 = mean(TimerStrategy::PerThreadCreationTime, 32);
        assert!(m32 > 4.0 * m4, "4t {m4} vs 32t {m32}");
    }

    #[test]
    fn utimer_is_flat() {
        let m1 = mean(TimerStrategy::UserTimer, 1);
        let m32 = mean(TimerStrategy::UserTimer, 32);
        assert!(m32 < m1 + 4.0, "1t {m1} vs 32t {m32}");
    }

    #[test]
    fn chain_is_roughly_linear() {
        let m8 = mean(TimerStrategy::PerProcessChain, 8);
        let m32 = mean(TimerStrategy::PerProcessChain, 32);
        let ratio = m32 / m8;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn names_cover_legend() {
        assert_eq!(TimerStrategy::ALL.len(), 4);
        for s in TimerStrategy::ALL {
            assert!(!s.name().is_empty());
        }
    }
}
