//! The `lp-check` CLI: `lint`, `model`, or `all`.
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lp_check::model::Mode;
use lp_check::{lint, model};

const USAGE: &str = "\
usage: lp-check <lint|model|all> [options]

subcommands:
  lint    walk crates/*/src and enforce the determinism/observability
          rule table (docs/CHECKS.md)
  model   exhaustively explore the UPID sender/receiver interleavings
          and check the protocol invariants
  all     lint + model

options:
  --json         machine-readable output
  --root <path>  workspace root (default: discovered from cwd)
  --por          model: prune with partial-order reduction instead of
                 enumerating every schedule
";

struct Args {
    cmd: String,
    json: bool,
    por: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(|| "missing subcommand".to_string())?;
    let mut args = Args { cmd, json: false, por: false, root: None };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--por" => args.por = true,
            "--root" => {
                let p = argv.next().ok_or_else(|| "--root needs a path".to_string())?;
                args.root = Some(PathBuf::from(p));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// Ascends from the current directory to the first one that looks like
/// the workspace root (has both `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_lint(args: &Args) -> Result<bool, String> {
    let root = args
        .root
        .clone()
        .or_else(discover_root)
        .ok_or_else(|| "could not find the workspace root; pass --root".to_string())?;
    let report = lint::lint_workspace(&root).map_err(|e| format!("lint failed: {e}"))?;
    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    Ok(report.is_clean())
}

fn run_model(args: &Args) -> bool {
    let mode = if args.por { Mode::Por } else { Mode::Full };
    let report = model::check_default(mode);
    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    // The CI gate: every invariant holds, and (in full mode) the suite
    // actually enumerated a meaningful schedule count.
    report.holds() && (mode == Mode::Por || report.total_schedules() >= 1000)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lp-check: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let ok = match args.cmd.as_str() {
        "lint" => match run_lint(&args) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("lp-check: {e}");
                return ExitCode::from(2);
            }
        },
        "model" => run_model(&args),
        "all" => {
            let lint_ok = match run_lint(&args) {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("lp-check: {e}");
                    return ExitCode::from(2);
                }
            };
            let model_ok = run_model(&args);
            lint_ok && model_ok
        }
        other => {
            eprintln!("lp-check: unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
