//! The `lp-check` CLI: `lint`, `model`, `race`, or `all`.
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lp_check::model::Mode;
use lp_check::{lifecycle, lint, model, race, JSON_SCHEMA_VERSION};

const USAGE: &str = "\
usage: lp-check <lint|model|race|all> [options]

subcommands:
  lint    walk crates/*/src and enforce the determinism/observability
          rule table (docs/CHECKS.md)
  model   exhaustively explore the UPID sender/receiver interleavings
          and the watchdog retry/degrade/recover lifecycle (DPOR) and
          check the protocol invariants
  race    happens-before race detection over exported JSONL traces
          (--trace, repeatable)
  all     lint + model

options:
  --json          machine-readable output
  --root <path>   workspace root (default: discovered from cwd)
  --por           model: prune with partial-order reduction instead of
                  enumerating every schedule
  --trace <path>  race: a JSONL trace to analyze (repeatable)
";

struct Args {
    cmd: String,
    json: bool,
    por: bool,
    root: Option<PathBuf>,
    traces: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(|| "missing subcommand".to_string())?;
    let mut args = Args { cmd, json: false, por: false, root: None, traces: Vec::new() };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--por" => args.por = true,
            "--root" => {
                let p = argv.next().ok_or_else(|| "--root needs a path".to_string())?;
                args.root = Some(PathBuf::from(p));
            }
            "--trace" => {
                let p = argv.next().ok_or_else(|| "--trace needs a path".to_string())?;
                args.traces.push(PathBuf::from(p));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// Ascends from the current directory to the first one that looks like
/// the workspace root (has both `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_report(args: &Args) -> Result<lint::LintReport, String> {
    let root = args
        .root
        .clone()
        .or_else(discover_root)
        .ok_or_else(|| "could not find the workspace root; pass --root".to_string())?;
    lint::lint_workspace(&root).map_err(|e| format!("lint failed: {e}"))
}

fn run_lint(args: &Args) -> Result<bool, String> {
    let report = lint_report(args)?;
    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human());
    }
    Ok(report.is_clean())
}

fn model_reports(args: &Args) -> (model::ModelReport, lifecycle::LifecycleReport, bool) {
    let mode = if args.por { Mode::Por } else { Mode::Full };
    let upid = model::check_default(mode);
    let lc = lifecycle::check_default(mode);
    // The CI gate: every invariant holds, and (in full mode) the suite
    // actually enumerated a meaningful schedule count.
    let ok = upid.holds()
        && lc.holds()
        && (mode == Mode::Por || upid.total_schedules() >= 1000);
    (upid, lc, ok)
}

fn run_model(args: &Args) -> bool {
    let (upid, lc, ok) = model_reports(args);
    if args.json {
        println!(
            "{{\"version\":{JSON_SCHEMA_VERSION},\"upid\":{},\"lifecycle\":{}}}",
            upid.to_json(),
            lc.to_json()
        );
    } else {
        print!("{}", upid.human());
        print!("{}", lc.human());
    }
    ok
}

fn run_race(args: &Args) -> Result<bool, String> {
    if args.traces.is_empty() {
        return Err("race needs at least one --trace <path>".to_string());
    }
    let mut ok = true;
    let mut json_parts = Vec::new();
    for path in &args.traces {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report = race::analyze_jsonl(&text);
        ok &= report.is_clean();
        if args.json {
            json_parts.push(format!(
                "{{\"path\":\"{}\",\"report\":{}}}",
                path.display(),
                report.to_json()
            ));
        } else {
            println!("== {} ==", path.display());
            print!("{}", report.human());
        }
    }
    if args.json {
        println!(
            "{{\"version\":{JSON_SCHEMA_VERSION},\"traces\":[{}]}}",
            json_parts.join(",")
        );
    }
    Ok(ok)
}

fn run_all(args: &Args) -> Result<bool, String> {
    let lint_report = lint_report(args)?;
    let (upid, lc, model_ok) = model_reports(args);
    if args.json {
        println!("{}", lp_check::all_json(&lint_report, &upid, &lc));
    } else {
        print!("{}", lint_report.human());
        print!("{}", upid.human());
        print!("{}", lc.human());
    }
    Ok(lint_report.is_clean() && model_ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lp-check: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let ok = match args.cmd.as_str() {
        "lint" => match run_lint(&args) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("lp-check: {e}");
                return ExitCode::from(2);
            }
        },
        "model" => run_model(&args),
        "race" => match run_race(&args) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("lp-check: {e}");
                return ExitCode::from(2);
            }
        },
        "all" => match run_all(&args) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("lp-check: {e}");
                return ExitCode::from(2);
            }
        },
        other => {
            eprintln!("lp-check: unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
