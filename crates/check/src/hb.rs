//! Vector-clock happens-before machinery.
//!
//! A trace is a sequence of events, each performed by one **actor**
//! (a worker, the timer/watchdog core, the dispatcher). Actors give
//! program order; **typed edges** (send→deliver, retry→re-send,
//! arm→fire, dispatch→run, steal→run) give cross-actor causality.
//! Every event gets a vector clock: the component-wise join of its
//! actor's clock and the clocks of its incoming edges, plus one tick
//! of its own actor. Event `a` happens-before event `b` iff
//! `clock(a) <= clock(b)` component-wise — anything else is
//! concurrent, and two concurrent transitions on the same state are a
//! race.
//!
//! The graph is generic over what the events mean; `race.rs` maps the
//! `lp_sim::obs` vocabulary onto it.

use std::fmt;

/// A fixed-width vector clock, one component per actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock over `actors` components.
    pub fn new(actors: usize) -> Self {
        VClock(vec![0; actors])
    }

    /// Component-wise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Advances `actor`'s component by one.
    pub fn tick(&mut self, actor: usize) {
        self.0[actor] += 1;
    }

    /// `true` iff every component of `self` is `<=` the matching
    /// component of `other` — the happens-before-or-equal order.
    pub fn leq(&self, other: &VClock) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// The causality type of a cross-actor edge. The vocabulary is fixed
/// and documented in `docs/CHECKS.md`; `StealRun` is reserved for the
/// work-stealing runtime (a steal request's grant must happen-before
/// the thief running the stolen task) so traces from that PR slot in
/// without a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A preemption send to its matching landing (`preempt_issued` →
    /// `preempt_landed`, joined on `(worker, seq)`).
    SendDeliver,
    /// A watchdog retry decision to the re-send it triggers
    /// (`preempt_retry` → the next `preempt_issued` with the same
    /// `(worker, seq)` and a higher attempt).
    RetryResend,
    /// A timer arm to its expiry (`ktimer_armed` → `ktimer_fired`).
    ArmFire,
    /// A dispatcher placement to the placed task starting
    /// (`policy_dispatch` → `task_start`).
    DispatchRun,
    /// A granted steal to the thief running the stolen task (reserved
    /// for the work-stealing runtime).
    StealRun,
}

impl EdgeKind {
    /// Stable lowercase name used in diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            EdgeKind::SendDeliver => "send->deliver",
            EdgeKind::RetryResend => "retry->re-send",
            EdgeKind::ArmFire => "arm->fire",
            EdgeKind::DispatchRun => "dispatch->run",
            EdgeKind::StealRun => "steal->run",
        }
    }
}

/// One recorded cross-actor edge, by event index.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index of the causing event.
    pub from: usize,
    /// Index of the caused event.
    pub to: usize,
    /// What kind of causality the edge asserts.
    pub kind: EdgeKind,
}

/// The happens-before graph over one trace: per-event vector clocks
/// plus the typed cross-actor edges that produced them.
pub struct HbGraph {
    actors: usize,
    actor_clock: Vec<VClock>,
    event_clock: Vec<VClock>,
    event_actor: Vec<usize>,
    edges: Vec<Edge>,
}

impl HbGraph {
    /// An empty graph over `actors` actors.
    pub fn new(actors: usize) -> Self {
        HbGraph {
            actors,
            actor_clock: (0..actors).map(|_| VClock::new(actors)).collect(),
            event_clock: Vec::new(),
            event_actor: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Records the next event of `actor`, causally after `incoming`
    /// (pairs of prior event index and edge kind). Returns the new
    /// event's index. Edges from out-of-range indices panic — callers
    /// build edges from events they already observed.
    pub fn observe(&mut self, actor: usize, incoming: &[(usize, EdgeKind)]) -> usize {
        assert!(actor < self.actors, "actor {actor} out of range");
        let idx = self.event_clock.len();
        let mut clock = self.actor_clock[actor].clone();
        for &(from, kind) in incoming {
            clock.join(&self.event_clock[from]);
            self.edges.push(Edge { from, to: idx, kind });
        }
        clock.tick(actor);
        self.actor_clock[actor] = clock.clone();
        self.event_clock.push(clock);
        self.event_actor.push(actor);
        idx
    }

    /// `true` iff event `a` happens-before event `b` (strictly: `a`'s
    /// clock is `<=` `b`'s and the events differ).
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        a != b && self.event_clock[a].leq(&self.event_clock[b])
    }

    /// `true` iff neither event happens-before the other: the pair is
    /// concurrent, and if both touch the same state, racy.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// The actor that performed event `idx`.
    pub fn actor_of(&self, idx: usize) -> usize {
        self.event_actor[idx]
    }

    /// The vector clock assigned to event `idx`.
    pub fn clock_of(&self, idx: usize) -> &VClock {
        &self.event_clock[idx]
    }

    /// Number of events observed so far.
    pub fn len(&self) -> usize {
        self.event_clock.len()
    }

    /// `true` when no events were observed.
    pub fn is_empty(&self) -> bool {
        self.event_clock.is_empty()
    }

    /// All recorded cross-actor edges, in observation order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The causal history of `idx`: every event that happens-before
    /// it, oldest first, capped at the `limit` events closest to
    /// `idx`. This is the minimized slice attached to diagnostics — a
    /// reader sees only the chain that could have caused the event,
    /// not the whole trace.
    pub fn causal_slice(&self, idx: usize, limit: usize) -> Vec<usize> {
        let mut chain: Vec<usize> = (0..self.event_clock.len())
            .filter(|&e| e == idx || self.happens_before(e, idx))
            .collect();
        if chain.len() > limit {
            chain = chain.split_off(chain.len() - limit);
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_order_is_happens_before() {
        let mut g = HbGraph::new(2);
        let a = g.observe(0, &[]);
        let b = g.observe(0, &[]);
        assert!(g.happens_before(a, b));
        assert!(!g.happens_before(b, a));
        assert!(!g.happens_before(a, a), "strict order");
    }

    #[test]
    fn unrelated_actors_are_concurrent() {
        let mut g = HbGraph::new(2);
        let a = g.observe(0, &[]);
        let b = g.observe(1, &[]);
        assert!(g.concurrent(a, b));
    }

    #[test]
    fn edges_synchronize_actors() {
        let mut g = HbGraph::new(3);
        let send = g.observe(0, &[]);
        let deliver = g.observe(1, &[(send, EdgeKind::SendDeliver)]);
        let later = g.observe(1, &[]);
        assert!(g.happens_before(send, deliver));
        assert!(g.happens_before(send, later), "transitively");
        // A third actor never synchronized stays concurrent.
        let lone = g.observe(2, &[]);
        assert!(g.concurrent(send, lone));
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].kind, EdgeKind::SendDeliver);
    }

    #[test]
    fn transitivity_through_two_edges() {
        let mut g = HbGraph::new(3);
        let arm = g.observe(0, &[]);
        let fire = g.observe(1, &[(arm, EdgeKind::ArmFire)]);
        let run = g.observe(2, &[(fire, EdgeKind::DispatchRun)]);
        assert!(g.happens_before(arm, run));
        // A later event of the synchronized actor inherits the chain.
        let after = g.observe(2, &[]);
        assert!(g.happens_before(arm, after));
    }

    #[test]
    fn causal_slice_is_the_history_capped() {
        let mut g = HbGraph::new(2);
        let mut last = g.observe(0, &[]);
        for _ in 0..10 {
            last = g.observe(0, &[]);
        }
        let lone = g.observe(1, &[]);
        let slice = g.causal_slice(last, 4);
        assert_eq!(slice.len(), 4);
        assert_eq!(*slice.last().unwrap(), last);
        assert!(!slice.contains(&lone), "concurrent events excluded");
    }

    #[test]
    fn edge_kinds_have_stable_names() {
        assert_eq!(EdgeKind::SendDeliver.name(), "send->deliver");
        assert_eq!(EdgeKind::StealRun.name(), "steal->run");
    }
}
