//! `lp-check model` v2: sleep-set DPOR exploration of the *real*
//! watchdog/retry/degrade/recover machine.
//!
//! Where [`model`](crate::model) drives the UPID protocol
//! (`lp_hw::uintr`), this module drives
//! [`RetryMachine`] — the typed
//! transition function the runtime's watchdog uses — through every
//! inequivalent schedule of small concurrent scenario programs, with
//! the fault (an IPI drop) as an explicit scheduled operation so every
//! interleaving × fault combination is covered.
//!
//! Each scenario is a set of threads (a sender/watchdog thread and a
//! receiver thread per worker, plus optional steal-queue threads); the
//! explorer runs a depth-first search over schedules. In DPOR mode a
//! **sleep set** is threaded through the search: after exploring
//! thread `t` from a state, `t` enters the sleep set of its siblings'
//! subtrees and any schedule that would merely commute `t` with an
//! *independent* operation is pruned. Independence is decided by
//! resource footprints (each op touches a worker and/or a steal
//! queue; disjoint footprints commute). Sleep sets preserve one
//! representative per Mazurkiewicz trace, so every reachable terminal
//! state is still visited — the explorer asserts exactly that by
//! comparing terminal-state fingerprints against naive enumeration.
//!
//! Invariants, on every path:
//!
//! * **no double delivery** — a `(worker, seq)` preemption lands at
//!   most once;
//! * **no lost preemption** — at every completed terminal, every
//!   issued preemption landed, nothing is in flight, and the machine
//!   holds no unresolved losses;
//! * **monotone transitions** — degrade/recover strictly alternate,
//!   starting with degrade;
//! * **no stuck schedule** — threads never deadlock mid-program;
//! * **steal exactly-once** — every queued task runs exactly once,
//!   on exactly one worker.
//!
//! The model is bounded on purpose: the watchdog fires only on sends
//! the fault actually dropped (a spurious watchdog race is the
//! runtime's seq-check territory, covered by `lp-check race` and the
//! runtime tests), and a dropped send is re-sent before anything else
//! happens on that worker — program order within the sender thread
//! guarantees it, schedules choose only *when*.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use libpreemptible::{RetryInput, RetryMachine, RetryOutput, WatchdogConfig};

use crate::model::Mode;

/// One schedulable operation of a scenario thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// The sender issues the next preemption for worker `w`'s current
    /// run (through the machine: fast path, probe, or signal).
    Issue { w: usize },
    /// The fault: the in-flight UINTR send to worker `w` is dropped.
    /// A no-op when the delivery already won the race or the send went
    /// through the (reliable) signal path.
    Drop { w: usize },
    /// The watchdog declares worker `w`'s dropped send lost and
    /// re-sends per the machine's verdict. A no-op when nothing was
    /// dropped.
    WdFire { w: usize },
    /// Worker `w` observes the in-flight delivery. Blocks while the
    /// send is dropped (that is what the watchdog is for).
    Deliver { w: usize },
    /// A producer enqueues task `task` on steal queue `q`.
    Push { q: usize, task: u32 },
    /// Queue `q`'s owner pops locally and runs the task. No-op when
    /// the queue is empty (the owner idles).
    Take { q: usize },
    /// Worker `to` steals from queue `from` and runs the stolen task.
    /// No-op when the queue is empty.
    Steal { from: usize, to: usize },
}

impl Op {
    /// Resource footprint bitmask: bits 0..4 are workers, 4.. are
    /// steal queues. Ops with disjoint footprints commute.
    fn footprint(self) -> u32 {
        match self {
            Op::Issue { w } | Op::Drop { w } | Op::WdFire { w } | Op::Deliver { w } => 1 << w,
            Op::Push { q, .. } => 1 << (4 + q),
            Op::Take { q } => (1 << (4 + q)) | (1 << q),
            Op::Steal { from, to } => (1 << (4 + from)) | (1 << to),
        }
    }

    fn independent(self, other: Op) -> bool {
        self.footprint() & other.footprint() == 0
    }
}

/// An in-flight preemption send.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Inflight {
    seq: u64,
    uintr: bool,
    dropped: bool,
    attempt: u8,
}

/// Per-worker model state: the real machine plus the wires around it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkerSt {
    machine: RetryMachine,
    /// Current run identity; advances when a preemption lands on it.
    seq: u64,
    inflight: Option<Inflight>,
    /// Landed seqs, in landing order.
    landed: Vec<u64>,
    /// Degrade (`true`) / recover (`false`) transitions, in order.
    transitions: Vec<bool>,
    /// Stale arrivals (delivery after the run already advanced).
    spurious: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct World {
    workers: Vec<WorkerSt>,
    queues: Vec<Vec<u32>>,
    /// `(task, worker)` executions, steal scenarios only.
    ran: Vec<(u32, usize)>,
}

impl World {
    fn new(s: &Scenario) -> World {
        World {
            workers: (0..s.workers)
                .map(|_| WorkerSt {
                    machine: RetryMachine::new(&s.watchdog),
                    seq: 0,
                    inflight: None,
                    landed: Vec::new(),
                    transitions: Vec::new(),
                    spurious: 0,
                })
                .collect(),
            queues: vec![Vec::new(); s.queues],
            ran: Vec::new(),
        }
    }

    /// Order-independent terminal fingerprint. Schedules that commute
    /// independent ops reach the *same* fingerprint, so naive and DPOR
    /// coverage can be compared as sets.
    fn fingerprint(&self) -> String {
        let mut ran = self.ran.clone();
        ran.sort_unstable();
        let workers: Vec<_> = self
            .workers
            .iter()
            .map(|w| (w.machine.fingerprint(), w.seq, w.inflight.clone(), &w.landed, &w.transitions, w.spurious))
            .collect();
        format!("{workers:?} q={:?} ran={ran:?}", self.queues)
    }

    fn enabled(&self, op: Op) -> bool {
        match op {
            Op::Issue { w } => self.workers[w].inflight.is_none(),
            Op::Deliver { w } => self.workers[w]
                .inflight
                .as_ref()
                .is_some_and(|i| !i.dropped),
            // Faults, watchdogs, and queue ops never block; when the
            // race is already lost they degrade to no-ops.
            Op::Drop { .. } | Op::WdFire { .. } => true,
            Op::Push { .. } | Op::Take { .. } | Op::Steal { .. } => true,
        }
    }

    /// Applies `op`; records any invariant violation it exposes.
    fn apply(&mut self, op: Op, violations: &mut BTreeSet<String>) {
        match op {
            Op::Issue { w } => {
                let st = &mut self.workers[w];
                let seq = st.seq;
                let verdict = st.machine.step(RetryInput::Send { seq });
                let uintr = !matches!(verdict, RetryOutput::Signal);
                st.inflight = Some(Inflight { seq, uintr, dropped: false, attempt: 0 });
            }
            Op::Drop { w } => {
                if let Some(i) = &mut self.workers[w].inflight {
                    if i.uintr && !i.dropped {
                        i.dropped = true;
                    }
                }
            }
            Op::WdFire { w } => {
                let st = &mut self.workers[w];
                let Some(i) = st.inflight.clone() else { return };
                if !i.dropped {
                    return;
                }
                let verdict = st.machine.step(RetryInput::Lost { seq: i.seq, can_degrade: true });
                match verdict {
                    RetryOutput::Degrade { .. } => {
                        record_transition(w, st, true, violations);
                        st.inflight = Some(Inflight {
                            seq: i.seq,
                            uintr: false,
                            dropped: false,
                            attempt: i.attempt + 1,
                        });
                    }
                    RetryOutput::Brownout { .. } => {
                        // Brownout re-sends over the user-interrupt
                        // path with SN repair, exactly like
                        // `Retry { uintr: true }`; only the tier
                        // bookkeeping (and the emitted event) differ.
                        st.inflight = Some(Inflight {
                            seq: i.seq,
                            uintr: true,
                            dropped: false,
                            attempt: i.attempt + 1,
                        });
                    }
                    RetryOutput::Retry { uintr } => {
                        st.inflight = Some(Inflight {
                            seq: i.seq,
                            uintr,
                            dropped: false,
                            attempt: i.attempt + 1,
                        });
                    }
                    other => {
                        violations.insert(format!(
                            "worker {w}: Lost verdict must be Degrade, Brownout, or Retry, got {other:?}"
                        ));
                    }
                }
            }
            Op::Deliver { w } => {
                let st = &mut self.workers[w];
                let Some(i) = st.inflight.take() else { return };
                if i.seq != st.seq {
                    st.spurious += 1;
                    return;
                }
                if st.landed.contains(&i.seq) {
                    violations.insert(format!(
                        "worker {w}: preemption seq {} delivered twice",
                        i.seq
                    ));
                }
                st.landed.push(i.seq);
                let verdict = st.machine.step(RetryInput::Landed { seq: i.seq, uintr: i.uintr });
                if verdict == RetryOutput::Recovered {
                    record_transition(w, st, false, violations);
                }
                st.seq += 1;
            }
            Op::Push { q, task } => self.queues[q].push(task),
            Op::Take { q } => {
                if !self.queues[q].is_empty() {
                    let task = self.queues[q].remove(0);
                    self.ran.push((task, q));
                }
            }
            Op::Steal { from, to } => {
                if let Some(task) = self.queues[from].pop() {
                    self.ran.push((task, to));
                }
            }
        }
    }
}

/// Records a degrade (`true`) / recover (`false`) transition and
/// checks monotonicity: strict alternation, starting with degrade.
fn record_transition(w: usize, st: &mut WorkerSt, degrade: bool, violations: &mut BTreeSet<String>) {
    match (st.transitions.last(), degrade) {
        (None, false) => {
            violations.insert(format!("worker {w}: recovered without a preceding degrade"));
        }
        (Some(&last), now) if last == now => {
            let kind = if now { "degraded" } else { "recovered" };
            violations.insert(format!(
                "worker {w}: {kind} twice without the opposite transition in between"
            ));
        }
        _ => {}
    }
    st.transitions.push(degrade);
}

/// One concurrent scenario program.
struct Scenario {
    name: &'static str,
    workers: usize,
    queues: usize,
    watchdog: WatchdogConfig,
    threads: Vec<Vec<Op>>,
    /// Expected landed seqs per worker at completed terminals.
    expect_landed: Vec<Vec<u64>>,
    /// Tasks that must run exactly once (steal scenarios).
    expect_ran: Vec<u32>,
    /// Also run naive enumeration and assert equal terminal coverage.
    compare_naive: bool,
}

fn shortened_watchdog(degrade_after: u32, probe_every: u32) -> WatchdogConfig {
    WatchdogConfig { degrade_after, probe_every, ..WatchdogConfig::default() }
}

/// Per-worker thread pair driving one full degrade→probe→recover arc:
/// the sender issues, the fault may drop, the watchdog re-sends, and a
/// second issue while degraded goes out as the recovery probe.
fn lifecycle_threads(w: usize) -> [Vec<Op>; 2] {
    [
        vec![Op::Issue { w }, Op::Drop { w }, Op::WdFire { w }, Op::Issue { w }],
        vec![Op::Deliver { w }, Op::Deliver { w }],
    ]
}

fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    {
        let [s, r] = lifecycle_threads(0);
        v.push(Scenario {
            name: "degrade-recover-1w",
            workers: 1,
            queues: 0,
            watchdog: shortened_watchdog(1, 1),
            threads: vec![s, r],
            expect_landed: vec![vec![0, 1]],
            expect_ran: vec![],
            compare_naive: true,
        });
    }
    {
        let [s0, r0] = lifecycle_threads(0);
        let [s1, r1] = lifecycle_threads(1);
        v.push(Scenario {
            name: "degrade-recover-2w",
            workers: 2,
            queues: 0,
            watchdog: shortened_watchdog(1, 1),
            threads: vec![s0, r0, s1, r1],
            expect_landed: vec![vec![0, 1], vec![0, 1]],
            expect_ran: vec![],
            compare_naive: true,
        });
    }
    {
        // Two consecutive losses are needed to cross the degrade
        // threshold: the first watchdog fire must pick the UINTR
        // retry path (losses below threshold), the second must
        // degrade — unless a delivery won either race first.
        v.push(Scenario {
            name: "double-loss-degrade",
            workers: 1,
            queues: 0,
            watchdog: shortened_watchdog(2, 1),
            threads: vec![
                vec![
                    Op::Issue { w: 0 },
                    Op::Drop { w: 0 },
                    Op::WdFire { w: 0 },
                    Op::Drop { w: 0 },
                    Op::WdFire { w: 0 },
                    Op::Issue { w: 0 },
                ],
                vec![Op::Deliver { w: 0 }, Op::Deliver { w: 0 }],
            ],
            expect_landed: vec![vec![0, 1]],
            expect_ran: vec![],
            compare_naive: true,
        });
    }
    {
        // The probe itself can be dropped: the machine must stay
        // degraded (no false recovery) and still deliver through the
        // signal fallback.
        v.push(Scenario {
            name: "probe-failure",
            workers: 1,
            queues: 0,
            watchdog: shortened_watchdog(1, 1),
            threads: vec![
                vec![
                    Op::Issue { w: 0 },
                    Op::Drop { w: 0 },
                    Op::WdFire { w: 0 },
                    Op::Issue { w: 0 },
                    Op::Drop { w: 0 },
                    Op::WdFire { w: 0 },
                ],
                vec![Op::Deliver { w: 0 }, Op::Deliver { w: 0 }],
            ],
            expect_landed: vec![vec![0, 1]],
            expect_ran: vec![],
            compare_naive: true,
        });
    }
    {
        // Two-worker steal shape: each owner enqueues two tasks and
        // drains locally while the opposite worker may steal one. The
        // owner pushes before taking (program order), so a no-op Take
        // can only mean the work was already stolen, never that it has
        // not arrived yet.
        v.push(Scenario {
            name: "steal-2q",
            workers: 2,
            queues: 2,
            watchdog: WatchdogConfig::default(),
            threads: vec![
                vec![
                    Op::Push { q: 0, task: 10 },
                    Op::Push { q: 0, task: 11 },
                    Op::Take { q: 0 },
                    Op::Take { q: 0 },
                ],
                vec![Op::Steal { from: 0, to: 1 }],
                vec![
                    Op::Push { q: 1, task: 20 },
                    Op::Push { q: 1, task: 21 },
                    Op::Take { q: 1 },
                    Op::Take { q: 1 },
                ],
                vec![Op::Steal { from: 1, to: 0 }],
            ],
            expect_landed: vec![vec![], vec![]],
            expect_ran: vec![10, 11, 20, 21],
            compare_naive: true,
        });
    }
    v
}

/// Exploration result for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: &'static str,
    /// Schedules a naive enumeration explores (only measured when the
    /// scenario opts into the coverage comparison).
    pub naive_schedules: Option<u64>,
    /// Schedules the sleep-set search explores.
    pub dpor_schedules: u64,
    /// Distinct terminal-state fingerprints reached.
    pub terminal_states: u64,
    /// Invariant violations (deduplicated); empty when the scenario
    /// holds.
    pub violations: Vec<String>,
}

impl ScenarioResult {
    /// Naive-to-DPOR schedule reduction factor, when measured.
    pub fn reduction(&self) -> Option<f64> {
        self.naive_schedules
            .map(|n| n as f64 / self.dpor_schedules.max(1) as f64)
    }
}

/// The full lifecycle-model report.
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// Per-scenario results, in declaration order.
    pub scenarios: Vec<ScenarioResult>,
    /// Which exploration mode produced `dpor_schedules` (`Por` uses
    /// sleep sets; `Full` disables them everywhere).
    pub mode: Mode,
}

impl LifecycleReport {
    /// `true` when every scenario upheld every invariant.
    pub fn holds(&self) -> bool {
        self.scenarios.iter().all(|s| s.violations.is_empty())
    }

    /// Total schedules explored across scenarios (DPOR side).
    pub fn total_schedules(&self) -> u64 {
        self.scenarios.iter().map(|s| s.dpor_schedules).sum()
    }

    /// Human-readable rendering.
    pub fn human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lifecycle: {} scenario(s), {} schedule(s), {}",
            self.scenarios.len(),
            self.total_schedules(),
            if self.holds() { "all invariants hold" } else { "INVARIANT VIOLATIONS" }
        );
        for s in &self.scenarios {
            let red = match s.reduction() {
                Some(r) => format!(
                    ", naive {} -> {:.1}x reduction, coverage equal",
                    s.naive_schedules.unwrap(),
                    r
                ),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}: {} schedules, {} terminal states{red}",
                s.name, s.dpor_schedules, s.terminal_states
            );
            for v in &s.violations {
                let _ = writeln!(out, "    VIOLATION: {v}");
            }
        }
        out
    }

    /// Machine-readable rendering (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"holds\":{},\"total_schedules\":{},\"scenarios\":[",
            self.holds(),
            self.total_schedules()
        );
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let naive = match s.naive_schedules {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"naive_schedules\":{naive},\"dpor_schedules\":{},\
                 \"terminal_states\":{},\"violations\":[",
                s.name, s.dpor_schedules, s.terminal_states
            );
            for (j, v) in s.violations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", v.replace('"', "\\\""));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    sleep_sets: bool,
    schedules: u64,
    terminals: BTreeSet<String>,
    violations: BTreeSet<String>,
}

impl<'a> Explorer<'a> {
    fn run(scenario: &'a Scenario, sleep_sets: bool) -> (u64, BTreeSet<String>, BTreeSet<String>) {
        let mut e = Explorer {
            scenario,
            sleep_sets,
            schedules: 0,
            terminals: BTreeSet::new(),
            violations: BTreeSet::new(),
        };
        let world = World::new(scenario);
        let pcs = vec![0usize; scenario.threads.len()];
        e.explore(&world, &pcs, Vec::new());
        (e.schedules, e.terminals, e.violations)
    }

    fn next_op(&self, pcs: &[usize], t: usize) -> Option<Op> {
        self.scenario.threads[t].get(pcs[t]).copied()
    }

    fn explore(&mut self, world: &World, pcs: &[usize], sleep: Vec<usize>) {
        let enabled: Vec<usize> = (0..pcs.len())
            .filter(|&t| self.next_op(pcs, t).is_some_and(|op| world.enabled(op)))
            .collect();
        if enabled.is_empty() {
            self.schedules += 1;
            if pcs
                .iter()
                .enumerate()
                .any(|(t, &pc)| pc < self.scenario.threads[t].len())
            {
                self.violations.insert(format!(
                    "stuck schedule: threads blocked at {pcs:?} with no enabled op"
                ));
            } else {
                self.check_complete(world);
            }
            self.terminals.insert(world.fingerprint());
            return;
        }
        let mut explored: Vec<usize> = Vec::new();
        for &t in &enabled {
            if sleep.contains(&t) {
                continue;
            }
            let op = self.next_op(pcs, t).expect("enabled thread has an op");
            let child_sleep: Vec<usize> = if self.sleep_sets {
                sleep
                    .iter()
                    .chain(explored.iter())
                    .copied()
                    .filter(|&q| {
                        self.next_op(pcs, q)
                            .is_some_and(|oq| oq.independent(op))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut w2 = world.clone();
            w2.apply(op, &mut self.violations);
            let mut pcs2 = pcs.to_vec();
            pcs2[t] += 1;
            self.explore(&w2, &pcs2, child_sleep);
            if self.sleep_sets {
                explored.push(t);
            }
        }
    }

    /// Invariants that only make sense once every thread finished.
    fn check_complete(&mut self, world: &World) {
        for (w, st) in world.workers.iter().enumerate() {
            if st.inflight.is_some() {
                self.violations.insert(format!(
                    "worker {w}: preemption still in flight at a completed terminal (lost)"
                ));
            }
            if st.landed != self.scenario.expect_landed[w] {
                self.violations.insert(format!(
                    "worker {w}: landed {:?}, expected {:?} (lost preemption)",
                    st.landed, self.scenario.expect_landed[w]
                ));
            }
            let (losses, _, _, _, _) = st.machine.fingerprint();
            if losses != 0 {
                self.violations.insert(format!(
                    "worker {w}: machine holds {losses} unresolved losses at a completed terminal"
                ));
            }
        }
        if !self.scenario.expect_ran.is_empty() {
            let mut ran: Vec<u32> = world.ran.iter().map(|&(task, _)| task).collect();
            ran.sort_unstable();
            if ran != self.scenario.expect_ran {
                self.violations.insert(format!(
                    "steal: ran {ran:?}, expected each of {:?} exactly once",
                    self.scenario.expect_ran
                ));
            }
        }
    }
}

/// Explores every scenario. `Mode::Por` uses sleep-set DPOR (and, for
/// scenarios that opt in, cross-checks terminal coverage against a
/// naive enumeration); `Mode::Full` enumerates naively everywhere.
pub fn check_default(mode: Mode) -> LifecycleReport {
    let scenarios = scenarios();
    let mut results = Vec::with_capacity(scenarios.len());
    for s in &scenarios {
        let (dpor_schedules, dpor_terms, mut violations) =
            Explorer::run(s, mode == Mode::Por);
        let naive_schedules = if s.compare_naive && mode == Mode::Por {
            let (n, naive_terms, nv) = Explorer::run(s, false);
            violations.extend(nv);
            if naive_terms != dpor_terms {
                violations.insert(format!(
                    "{}: DPOR terminal coverage differs from naive ({} vs {})",
                    s.name,
                    dpor_terms.len(),
                    naive_terms.len()
                ));
            }
            Some(n)
        } else {
            None
        };
        results.push(ScenarioResult {
            name: s.name,
            naive_schedules,
            dpor_schedules,
            terminal_states: dpor_terms.len() as u64,
            violations: violations.into_iter().collect(),
        });
    }
    LifecycleReport { scenarios: results, mode }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_hold_under_dpor() {
        let r = check_default(Mode::Por);
        assert!(r.holds(), "{}", r.human());
        assert!(r.total_schedules() > 0);
    }

    #[test]
    fn all_scenarios_hold_under_naive_enumeration() {
        let r = check_default(Mode::Full);
        assert!(r.holds(), "{}", r.human());
    }

    #[test]
    fn dpor_reduces_at_least_10x_with_equal_coverage() {
        let r = check_default(Mode::Por);
        let flagship = r
            .scenarios
            .iter()
            .find(|s| s.name == "degrade-recover-2w")
            .expect("flagship scenario present");
        let reduction = flagship.reduction().expect("naive comparison ran");
        assert!(
            reduction >= 10.0,
            "expected >=10x reduction, got {reduction:.1}x \
             ({:?} naive vs {} dpor)",
            flagship.naive_schedules,
            flagship.dpor_schedules
        );
        // Coverage equality is asserted inside check_default; holds()
        // failing would surface a mismatch as a violation.
        assert!(r.holds(), "{}", r.human());
    }

    #[test]
    fn lost_preemption_mutant_is_caught() {
        // A scenario whose watchdog never fires after the drop: the
        // preemption is genuinely lost, and the explorer must say so.
        let s = Scenario {
            name: "mutant-no-watchdog",
            workers: 1,
            queues: 0,
            watchdog: shortened_watchdog(1, 1),
            threads: vec![
                vec![Op::Issue { w: 0 }, Op::Drop { w: 0 }],
                vec![Op::Deliver { w: 0 }],
            ],
            expect_landed: vec![vec![0]],
            expect_ran: vec![],
            compare_naive: false,
        };
        let (_, _, violations) = Explorer::run(&s, true);
        assert!(
            violations.iter().any(|v| v.contains("stuck schedule")),
            "the dropped-and-never-retried path must strand the receiver: {violations:?}"
        );
    }

    #[test]
    fn double_delivery_mutant_is_caught() {
        // Two sends for the same run with no seq advance in between
        // cannot happen through the real machine API; emulate the bug
        // by delivering a cloned inflight twice.
        let s = scenarios().remove(0);
        let mut world = World::new(&s);
        let mut violations = BTreeSet::new();
        world.apply(Op::Issue { w: 0 }, &mut violations);
        let saved = world.workers[0].inflight.clone();
        world.apply(Op::Deliver { w: 0 }, &mut violations);
        world.workers[0].inflight = saved;
        world.workers[0].seq = 0; // the buggy runtime forgot to advance
        world.apply(Op::Deliver { w: 0 }, &mut violations);
        assert!(
            violations.iter().any(|v| v.contains("delivered twice")),
            "{violations:?}"
        );
    }

    #[test]
    fn json_has_stable_shape() {
        let r = check_default(Mode::Por);
        let j = r.to_json();
        assert!(j.starts_with("{\"holds\":true,\"total_schedules\":"));
        assert!(j.contains("\"name\":\"degrade-recover-2w\""));
        assert!(j.contains("\"naive_schedules\":"));
    }
}
