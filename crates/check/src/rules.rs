//! The declared rule table: every lint `lp-check` enforces, with its
//! identifier (the name used in `lp-check: allow(...)` suppressions),
//! rationale, and scope. `docs/CHECKS.md` is the prose catalogue of
//! this table; keep the two in sync.

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism sources banned from sim-path crates.
    Nondet,
    /// Observability pairing: emitted events must be in the documented
    /// vocabulary and every `*_observed` wrapper must keep its plain
    /// twin.
    ObsPair,
    /// `unsafe` code is confined to `lp-fibers`.
    UnsafeScope,
    /// Every `unsafe` block / `unsafe impl` carries a `// SAFETY:`
    /// justification.
    SafetyComment,
    /// No `println!`/`eprintln!` in library code.
    NoPrint,
    /// A malformed suppression comment (missing rule or reason).
    BadAllow,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 6] = [
        RuleId::Nondet,
        RuleId::ObsPair,
        RuleId::UnsafeScope,
        RuleId::SafetyComment,
        RuleId::NoPrint,
        RuleId::BadAllow,
    ];

    /// The stable identifier used in diagnostics and in
    /// `// lp-check: allow(<id>, <reason>)` suppressions.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Nondet => "nondet",
            RuleId::ObsPair => "obs-pair",
            RuleId::UnsafeScope => "unsafe-scope",
            RuleId::SafetyComment => "safety-comment",
            RuleId::NoPrint => "no-print",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule identifier as written in a suppression.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == s)
    }

    /// One-line rationale, shown in `--explain`-style output and
    /// mirrored in `docs/CHECKS.md`.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::Nondet => {
                "the simulation must be byte-deterministic (same seed, same JSONL); \
                 randomized hashing, wall-clock reads, and OS sleeps silently break that"
            }
            RuleId::ObsPair => {
                "every state mutation that matters is mirrored by an `_observed` event; \
                 an event outside docs/TRACING.md's vocabulary (or a wrapper without its \
                 plain twin) means metrics can drift from the model"
            }
            RuleId::UnsafeScope => {
                "only the real-context crate lp-fibers has a reason to touch raw stacks; \
                 unsafe anywhere else is a smell in a pure simulation"
            }
            RuleId::SafetyComment => {
                "every unsafe block must state the invariant that makes it sound, where \
                 the next reader will see it"
            }
            RuleId::NoPrint => {
                "library crates report through the Observer/RunReport, never stdout; \
                 prints belong in bins and examples"
            }
            RuleId::BadAllow => {
                "a suppression without a known rule id and a reason defeats the audit \
                 trail suppressions exist to provide"
            }
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Source tokens the [`RuleId::Nondet`] rule bans (matched against
/// comment- and string-stripped code, on identifier boundaries, so
/// both `use std::collections::HashMap` and a later bare `HashMap`
/// reference fire).
pub const NONDET_TOKENS: [&str; 6] = [
    "HashMap",
    "HashSet",
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "thread::sleep",
];

/// Crates (directory names under `crates/`) exempt from
/// [`RuleId::Nondet`]: `fibers` runs *real* threads on real stacks with
/// real deadlines by design (it is the non-simulated artifact), and
/// `check` is the host-side analysis tool, not on any simulated path.
pub const NONDET_EXEMPT_CRATES: [&str; 2] = ["fibers", "check"];

/// The only crate allowed to contain `unsafe` code
/// ([`RuleId::UnsafeScope`]).
pub const UNSAFE_ALLOWED_CRATE: &str = "fibers";

/// Crates whose sources must only construct documented events and whose
/// `*_observed` wrappers must keep their plain twin
/// ([`RuleId::ObsPair`]).
pub const OBS_PAIRED_CRATES: [&str; 3] = ["hw", "kernel", "preemptible"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.id()), Some(r));
            assert!(!r.rationale().is_empty());
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }
}
