//! The declared rule table: every lint `lp-check` enforces, with its
//! identifier (the name used in `lp-check: allow(...)` suppressions),
//! rationale, and scope. `docs/CHECKS.md` is the prose catalogue of
//! this table; keep the two in sync.

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Nondeterminism sources banned from sim-path crates.
    Nondet,
    /// Observability pairing: emitted events must be in the documented
    /// vocabulary and every `*_observed` wrapper must keep its plain
    /// twin.
    ObsPair,
    /// `unsafe` code is confined to `lp-fibers`.
    UnsafeScope,
    /// Every `unsafe` block / `unsafe impl` carries a `// SAFETY:`
    /// justification.
    SafetyComment,
    /// No `println!`/`eprintln!` in library code.
    NoPrint,
    /// The fault injector must draw all randomness from the
    /// `lp_sim::rng` substream machinery — never seed or source an RNG
    /// of its own.
    FaultRng,
    /// Scheduling-policy modules must be pure: no wall clocks, no
    /// ad-hoc RNG, no environment reads.
    PolicyPurity,
    /// `Ordering::Relaxed` is banned outside a documented static
    /// allowlist.
    RelaxedOrdering,
    /// Cross-worker obs events must carry a worker (or slot) identity.
    WorkerId,
    /// Watchdog retry/degrade/recover state changes only through
    /// `RetryMachine::step`, never raw field writes.
    RetryTransition,
    /// No allocation in the event engine's pop/arm/cascade hot paths:
    /// container-growth tokens are banned from the wheel core outside a
    /// documented static allowlist.
    HotAlloc,
    /// The chaos adversary (plan sampling, search moves, evaluation)
    /// must draw all randomness from the frozen `streams::CHAOS`
    /// substream — never seed or source an RNG of its own.
    ChaosRng,
    /// A malformed suppression comment (missing rule or reason).
    BadAllow,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 13] = [
        RuleId::Nondet,
        RuleId::ObsPair,
        RuleId::UnsafeScope,
        RuleId::SafetyComment,
        RuleId::NoPrint,
        RuleId::FaultRng,
        RuleId::PolicyPurity,
        RuleId::RelaxedOrdering,
        RuleId::WorkerId,
        RuleId::RetryTransition,
        RuleId::HotAlloc,
        RuleId::ChaosRng,
        RuleId::BadAllow,
    ];

    /// The stable identifier used in diagnostics and in
    /// `// lp-check: allow(<id>, <reason>)` suppressions.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Nondet => "nondet",
            RuleId::ObsPair => "obs-pair",
            RuleId::UnsafeScope => "unsafe-scope",
            RuleId::SafetyComment => "safety-comment",
            RuleId::NoPrint => "no-print",
            RuleId::FaultRng => "fault-rng",
            RuleId::PolicyPurity => "policy-purity",
            RuleId::RelaxedOrdering => "relaxed-ordering",
            RuleId::WorkerId => "worker-id",
            RuleId::RetryTransition => "retry-transition",
            RuleId::HotAlloc => "hot-alloc",
            RuleId::ChaosRng => "chaos-rng",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule identifier as written in a suppression.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == s)
    }

    /// One-line rationale, shown in `--explain`-style output and
    /// mirrored in `docs/CHECKS.md`.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::Nondet => {
                "the simulation must be byte-deterministic (same seed, same JSONL); \
                 randomized hashing, wall-clock reads, and OS sleeps silently break that"
            }
            RuleId::ObsPair => {
                "every state mutation that matters is mirrored by an `_observed` event; \
                 an event outside docs/TRACING.md's vocabulary (or a wrapper without its \
                 plain twin) means metrics can drift from the model"
            }
            RuleId::UnsafeScope => {
                "only the real-context crate lp-fibers has a reason to touch raw stacks; \
                 unsafe anywhere else is a smell in a pure simulation"
            }
            RuleId::SafetyComment => {
                "every unsafe block must state the invariant that makes it sound, where \
                 the next reader will see it"
            }
            RuleId::NoPrint => {
                "library crates report through the Observer/RunReport, never stdout; \
                 prints belong in bins and examples"
            }
            RuleId::FaultRng => {
                "fault injection is only safe to ship because it is byte-reproducible; \
                 fault.rs seeding its own RNG (instead of the frozen streams::FAULTS \
                 substream) would silently decouple faulty runs from the master seed"
            }
            RuleId::PolicyPurity => {
                "policy decisions must be pure functions of hook arguments and policy \
                 state (docs/POLICIES.md); a wall clock, entropy source, or environment \
                 read inside the policy zoo would desynchronize the schedule from the \
                 master seed and break every byte-identity guarantee downstream"
            }
            RuleId::RelaxedOrdering => {
                "Relaxed atomics order nothing; a Relaxed access on a cross-thread \
                 handoff path is exactly the class of bug `lp-check race` hunts in \
                 traces, so every use must sit on the audited static allowlist with a \
                 written argument for why no ordering is needed"
            }
            RuleId::WorkerId => {
                "the happens-before engine assigns events to per-worker actors by \
                 their worker id; a cross-worker event without one cannot be placed \
                 in the causality graph and silently weakens every race verdict"
            }
            RuleId::RetryTransition => {
                "the watchdog's losses/degraded/probe state is model-checked through \
                 RetryMachine::step (lp-check model); a raw field write bypasses the \
                 typed transition function and voids the explored guarantees"
            }
            RuleId::HotAlloc => {
                "the wheel's arm/cancel/re-arm and pop/cascade paths are the per-event \
                 cost the paper's fast timers depend on; a stray Box, map insert, or \
                 growing collection there turns O(1) pointer moves back into allocator \
                 traffic, so growth tokens are confined to the audited slab/overflow \
                 sites in rules::HOT_ALLOC_ALLOWLIST"
            }
            RuleId::ChaosRng => {
                "the adversarial search is only trustworthy because its cliffs replay \
                 byte-identically from the corpus; a chaos module seeding its own RNG \
                 (instead of the frozen streams::CHAOS substream) would decouple the \
                 searched plans from the master seed and make every minimized cliff \
                 unreproducible"
            }
            RuleId::BadAllow => {
                "a suppression without a known rule id and a reason defeats the audit \
                 trail suppressions exist to provide"
            }
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Source tokens the [`RuleId::Nondet`] rule bans (matched against
/// comment- and string-stripped code, on identifier boundaries, so
/// both `use std::collections::HashMap` and a later bare `HashMap`
/// reference fire).
pub const NONDET_TOKENS: [&str; 9] = [
    "HashMap",
    "HashSet",
    "Instant::now",
    "SystemTime",
    "available_parallelism",
    "thread_rng",
    "thread::scope",
    "thread::sleep",
    "thread::spawn",
];

/// The static per-file allowance for [`RuleId::Nondet`]: `(file,
/// tokens, reason)` triples naming the only places a banned token may
/// appear without an inline suppression. These are *architectural*
/// allowances — the deterministic parallel runner and the wall-clock
/// bench harness — documented in `docs/CHECKS.md`; hits here are
/// reported as suppressed diagnostics so the audit trail stays visible.
///
/// The invariant that keeps the list sound: every entry is code that
/// parallelizes or times *whole runs*; no simulated state ever crosses
/// a thread, and no listed token can change output bytes (see
/// `docs/PERFORMANCE.md` for the determinism argument).
pub const NONDET_FILE_ALLOWLIST: [(&str, &[&str], &str); 3] = [
    (
        "crates/sim/src/par.rs",
        &["thread::scope"],
        "the deterministic fan-out primitive: results are slotted by submission index",
    ),
    (
        "crates/experiments/src/runner.rs",
        &["available_parallelism"],
        "default job count only — affects wall-clock, never output bytes",
    ),
    (
        "crates/bench/src/main.rs",
        &["Instant::now"],
        "lp-bench measures wall-clock by design; it is not on any simulated path",
    ),
];

/// The documented reason `file` may contain `token` despite
/// [`RuleId::Nondet`], if the static allowlist covers the pair.
pub fn nondet_file_allowance(file: &str, token: &str) -> Option<&'static str> {
    NONDET_FILE_ALLOWLIST
        .iter()
        .find(|(f, tokens, _)| *f == file && tokens.contains(&token))
        .map(|&(_, _, why)| why)
}

/// Crates (directory names under `crates/`) exempt from
/// [`RuleId::Nondet`]: `fibers` runs *real* threads on real stacks with
/// real deadlines by design (it is the non-simulated artifact), and
/// `check` is the host-side analysis tool, not on any simulated path.
pub const NONDET_EXEMPT_CRATES: [&str; 2] = ["fibers", "check"];

/// The only crate allowed to contain `unsafe` code
/// ([`RuleId::UnsafeScope`]).
pub const UNSAFE_ALLOWED_CRATE: &str = "fibers";

/// Crates whose sources must only construct documented events and whose
/// `*_observed` wrappers must keep their plain twin
/// ([`RuleId::ObsPair`]).
pub const OBS_PAIRED_CRATES: [&str; 3] = ["hw", "kernel", "preemptible"];

/// The file [`RuleId::FaultRng`] polices: the fault injector.
pub const FAULT_RNG_FILE: &str = "crates/sim/src/fault.rs";

/// RNG seeding/sourcing tokens banned from [`FAULT_RNG_FILE`]. The
/// injector receives its generator fully formed from
/// `lp_sim::rng::rng(master, streams::FAULTS)`; any of these tokens
/// would mean it is minting entropy or substreams of its own.
pub const FAULT_RNG_TOKENS: [&str; 5] = [
    "OsRng",
    "SeedableRng",
    "StdRng",
    "from_entropy",
    "seed_from_u64",
];

/// The directory [`RuleId::PolicyPurity`] polices: the scheduling
/// policy zoo (every module under it, including future additions).
pub const POLICY_DIR: &str = "crates/preemptible/src/policies/";

/// Nondeterminism-source tokens banned from [`POLICY_DIR`]. Broader
/// than [`NONDET_TOKENS`] (which already applies there too): a policy
/// may not even *accept* ambient entropy or environment configuration —
/// decisions must derive from hook arguments and policy state alone,
/// per the determinism rules of `docs/POLICIES.md`.
pub const POLICY_PURITY_TOKENS: [&str; 9] = [
    "Instant",
    "OsRng",
    "SeedableRng",
    "StdRng",
    "SystemTime",
    "from_entropy",
    "seed_from_u64",
    "std::env",
    "thread_rng",
];

/// The static per-file allowance for [`RuleId::RelaxedOrdering`]:
/// `(file, reason)` pairs naming the only places `Ordering::Relaxed`
/// may appear. Hits here are reported as suppressed diagnostics so the
/// audit trail stays visible; anywhere else the rule fails the build.
pub const RELAXED_ALLOWLIST: [(&str, &str); 1] = [(
    "crates/sim/src/par.rs",
    "a work-claiming counter: fetch_add's atomicity alone guarantees \
     index uniqueness, and result publication is ordered by the per-slot \
     Mutex, so no cross-thread data flows through this ordering",
)];

/// The documented reason `file` may use `Ordering::Relaxed`, if the
/// static allowlist covers it.
pub fn relaxed_file_allowance(file: &str) -> Option<&'static str> {
    RELAXED_ALLOWLIST
        .iter()
        .find(|(f, _)| *f == file)
        .map(|&(_, why)| why)
}

/// The file [`RuleId::WorkerId`] polices: the obs event vocabulary.
pub const EVENT_VOCAB_FILE: &str = "crates/sim/src/obs/event.rs";

/// `Event` variants allowed to omit a `worker`/`slot` identity because
/// they are not cross-worker: dispatcher-global admission events,
/// timer-core aggregates, and free-form markers. Everything else must
/// say which worker it concerns or the happens-before engine cannot
/// place it ([`RuleId::WorkerId`]).
pub const WORKERLESS_EVENTS: [&str; 8] = [
    "Admitted",
    "Arrival",
    "Drop",
    "IpcSampled",
    "Marker",
    "QuantumAdjusted",
    "Shed",
    "TimerPoll",
];

/// `Event` variants the tail-attribution accountant keys on
/// ([`RuleId::WorkerId`], strengthened): the phase accountant keys
/// its per-worker segments on these events, so each must carry *both*
/// a `worker` and a `fiber` identity — and must appear in the
/// `docs/TRACING.md` vocabulary — or exemplar breakdowns would charge
/// time to the wrong request. `SwitchBegin` is listed even though the
/// accountant itself reads the switch window off `TaskStart`'s
/// `switch_ns` field: the Perfetto exporter pairs it with the
/// following `task_start` to render the switch slice, which needs the
/// same identities. Extend this list together with
/// `Attribution::observe` when new phase-driving spans are added.
pub const ATTRIBUTION_EVENTS: [&str; 4] =
    ["TaskStart", "TaskFinish", "Preempt", "SwitchBegin"];

/// The files [`RuleId::HotAlloc`] polices: the event engine's hot
/// core — the hierarchical timing wheel and its `EventQueue` facade.
/// Everything on the pop/arm/cancel/cascade path lives in these two
/// files; the engine driver and utimer layers above them only move
/// already-allocated values.
pub const HOT_ALLOC_FILES: [&str; 2] = ["crates/sim/src/queue.rs", "crates/sim/src/wheel.rs"];

/// Allocation / container-growth tokens banned from
/// [`HOT_ALLOC_FILES`] (matched on identifier boundaries against
/// comment- and string-stripped code, like [`NONDET_TOKENS`]). The hot
/// path may only move nodes between intrusive lists, the slab
/// freelist, and the pre-sized overflow heap.
pub const HOT_ALLOC_TOKENS: [&str; 10] = [
    "BTreeMap",
    "Box::new",
    "HashMap",
    "Vec::new",
    "VecDeque",
    "collect",
    "insert",
    "push",
    "to_vec",
    "vec!",
];

/// The static per-file allowance for [`RuleId::HotAlloc`]: `(file,
/// tokens, reason)` triples naming the only growth points the hot path
/// keeps on purpose. Hits here are reported as suppressed diagnostics
/// so the audit trail stays visible; any other banned token in
/// [`HOT_ALLOC_FILES`] fails the build.
pub const HOT_ALLOC_ALLOWLIST: [(&str, &[&str], &str); 2] = [
    (
        "crates/sim/src/queue.rs",
        &["push"],
        "the facade's `push` API delegates to the wheel and grows no container of its own",
    ),
    (
        "crates/sim/src/wheel.rs",
        &["push"],
        "the two deliberate growth points: slab extension when the freelist is dry and \
         far-future filing into the overflow heap — both amortized to zero in steady \
         state by `with_capacity` pre-sizing (pinned by the million-re-arm slab test)",
    ),
];

/// The documented reason `file` may contain `token` despite
/// [`RuleId::HotAlloc`], if the static allowlist covers the pair.
pub fn hot_alloc_allowance(file: &str, token: &str) -> Option<&'static str> {
    HOT_ALLOC_ALLOWLIST
        .iter()
        .find(|(f, tokens, _)| *f == file && tokens.contains(&token))
        .map(|&(_, _, why)| why)
}

/// The crate [`RuleId::RetryTransition`] polices and the one file
/// inside it that legitimately mutates the machine's fields.
pub const RETRY_STATE_CRATE: &str = "preemptible";
/// The typed-transition-function home, exempt from the rule.
pub const RETRY_STATE_FILE: &str = "crates/preemptible/src/retry.rs";

/// Field names of the watchdog health state. A write access spelled
/// `.{field} = / += / -=` outside [`RETRY_STATE_FILE`] bypasses
/// `RetryMachine::step` and fires [`RuleId::RetryTransition`].
pub const RETRY_STATE_FIELDS: [&str; 5] =
    ["losses", "degraded", "brownout", "degraded_sends", "probe_for"];

/// The directory [`RuleId::ChaosRng`] polices: the chaos adversary
/// (every module under it, including future additions).
pub const CHAOS_RNG_DIR: &str = "crates/chaos/src/";

/// RNG seeding/sourcing tokens banned from [`CHAOS_RNG_DIR`]. Chaos
/// plan sampling, search moves, and tie-breaking all receive their
/// generator fully formed from `lp_sim::rng::rng(master,
/// streams::CHAOS)`; any of these tokens would mean the adversary is
/// minting entropy or substreams of its own.
pub const CHAOS_RNG_TOKENS: [&str; 5] = [
    "OsRng",
    "SeedableRng",
    "StdRng",
    "from_entropy",
    "seed_from_u64",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.id()), Some(r));
            assert!(!r.rationale().is_empty());
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn file_allowlist_lookup() {
        assert!(nondet_file_allowance("crates/sim/src/par.rs", "thread::scope").is_some());
        // The allowance is per (file, token): other tokens in the same
        // file, and the same token elsewhere, still fire.
        assert!(nondet_file_allowance("crates/sim/src/par.rs", "Instant::now").is_none());
        assert!(nondet_file_allowance("crates/sim/src/engine.rs", "thread::scope").is_none());
        // Every allowlisted token must be one the rule actually bans,
        // and every entry must carry a reason.
        for (file, tokens, why) in NONDET_FILE_ALLOWLIST {
            assert!(!why.is_empty(), "{file} allowance has no reason");
            for t in tokens {
                assert!(NONDET_TOKENS.contains(t), "{file} allows unbanned `{t}`");
            }
        }
    }

    #[test]
    fn hot_alloc_allowlist_lookup() {
        assert!(hot_alloc_allowance("crates/sim/src/wheel.rs", "push").is_some());
        // Per (file, token): other growth tokens in the hot files, and
        // `push` anywhere else, are not covered.
        assert!(hot_alloc_allowance("crates/sim/src/wheel.rs", "Box::new").is_none());
        assert!(hot_alloc_allowance("crates/sim/src/engine.rs", "push").is_none());
        for (file, tokens, why) in HOT_ALLOC_ALLOWLIST {
            assert!(!why.is_empty(), "{file} allowance has no reason");
            assert!(HOT_ALLOC_FILES.contains(&file), "{file} is not a policed file");
            for t in tokens {
                assert!(HOT_ALLOC_TOKENS.contains(t), "{file} allows unbanned `{t}`");
            }
        }
    }
}
