//! Exhaustive-interleaving checker for the UPID ON/SN/PIR protocol.
//!
//! The paper's correctness story rests on a lock-free-style state
//! machine: senders post vectors and race the receiver's drain,
//! suppression window, masking, and migration. Lost wakeups and broken
//! coalescing are exactly the bugs that survive unit tests (which pick
//! one interleaving) — so this module enumerates **all** of them.
//!
//! Each [`Scenario`] is a small concurrent program: thread 0 is the
//! receiver (drains, toggles `SN`, changes its scheduling state,
//! migrates), threads 1.. are senders (each a sequence of `SENDUIPI`s).
//! A bounded DFS explores every interleaving of the threads' programs
//! — each op is one atomic protocol transition, matching the SDM's
//! locked-RMW posting semantics — and after *every* transition checks
//! the protocol invariants (see [`Invariant`] docs and
//! `docs/CHECKS.md`) against both the real
//! [`UintrDomain`] and the independently written [`SpecUpid`] oracle.
//! At every
//! complete schedule a *schedule-in epilogue* (clear `SN`, drain) runs
//! and the checker asserts that every vector ever sent was drained
//! exactly once — the "no lost wakeup" liveness obligation reduced to a
//! safety check at the bounded horizon.
//!
//! A simple partial-order reduction is available ([`Mode::Por`]):
//! memoize `(program counters, world state)` pairs and prune revisits.
//! Two interleavings that converge to the same state and control point
//! have identical futures, so exploring one suffices for the safety
//! invariants; the full mode ([`Mode::Full`]) walks every schedule and
//! is the one the `>= 1000 distinct schedules` CI gate runs.

use std::collections::BTreeSet;
use std::fmt;

use lp_hw::uintr::{DropReason, ReceiverState, SendOutcome, Uitt, UintrDomain, UpidHandle};
use lp_hw::uintr_spec::SpecUpid;
use lp_hw::CoreId;
use lp_sim::fault::IpiFault;

/// One atomic protocol transition in a scenario program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A sender executes `SENDUIPI` posting `vector`.
    Send {
        /// User vector 0..64 to post.
        vector: u8,
    },
    /// A sender executes `SENDUIPI` but the fabric drops it
    /// (fault-injected [`IpiFault::Drop`]): the instruction retires,
    /// nothing reaches the UPID, and the outcome must be a typed
    /// `Dropped` — never a silent success.
    SendLost {
        /// User vector 0..64 the lost send was carrying.
        vector: u8,
    },
    /// The receiver drains its UPID (`acknowledge`).
    Ack,
    /// The kernel toggles the receiver's `SN` bit.
    Suppress(bool),
    /// The receiver's scheduling/masking state changes (affects how
    /// subsequent sends notify).
    SetRecvState(ReceiverState),
    /// The receiver migrates: its notification destination moves to
    /// `Some(core)` or is cleared.
    SetNdst(Option<usize>),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Send { vector } => write!(f, "send(v{vector})"),
            Op::SendLost { vector } => write!(f, "send-lost(v{vector})"),
            Op::Ack => write!(f, "ack"),
            Op::Suppress(b) => write!(f, "sn={}", u8::from(*b)),
            Op::SetRecvState(s) => write!(f, "recv={s:?}"),
            Op::SetNdst(c) => write!(f, "ndst={c:?}"),
        }
    }
}

/// A small concurrent program: `threads[0]` is the receiver, the rest
/// are senders. The DFS explores every interleaving that respects each
/// thread's program order.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name shown in reports.
    pub name: &'static str,
    /// What the scenario stresses (one line, for the report).
    pub what: &'static str,
    /// Per-thread op sequences; index 0 is the receiver.
    pub threads: Vec<Vec<Op>>,
}

/// The protocol invariants checked after every transition (and at the
/// end of every schedule). Documented in `docs/CHECKS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// The real domain's (`ON`, `SN`, `PUIR`) always equals the spec's.
    SpecAgreement,
    /// `ON` is never set while `PUIR` is empty (no phantom
    /// notifications).
    OnImpliesPending,
    /// Sent vectors are never lost: `drained ∪ pending == sent` at all
    /// times, and `drained == sent` after the schedule-in epilogue.
    Conservation,
    /// Each `acknowledge` drains exactly the vectors posted since the
    /// previous drain — never more, never twice.
    DrainExactlyOnce,
    /// A send under `SN` reports `Suppressed` and does not set `ON`; a
    /// send under `ON` reports `Coalesced` and keeps the vector set.
    SuppressCoalesce,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Invariant::SpecAgreement => "spec-agreement",
            Invariant::OnImpliesPending => "on-implies-pending",
            Invariant::Conservation => "conservation",
            Invariant::DrainExactlyOnce => "drain-exactly-once",
            Invariant::SuppressCoalesce => "suppress-coalesce",
        };
        f.write_str(s)
    }
}

/// Exploration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Enumerate every schedule (the CI gate counts these).
    Full,
    /// Partial-order reduction: prune `(pcs, state)` revisits.
    Por,
}

/// One invariant violation with the schedule that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable detail (expected vs. got).
    pub detail: String,
    /// The interleaving as `thread:op` steps, in execution order.
    pub schedule: String,
}

/// Exploration statistics + violations for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// What the scenario stresses.
    pub what: &'static str,
    /// Complete schedules reached (leaves). In [`Mode::Por`] this is
    /// the number of *explored* leaves after pruning.
    pub schedules: u64,
    /// Individual transitions executed.
    pub steps: u64,
    /// Distinct `(pcs, state)` pairs seen (only tracked under
    /// [`Mode::Por`]).
    pub states: u64,
    /// Invariant violations (capped at [`MAX_VIOLATIONS`] per
    /// scenario).
    pub violations: Vec<Violation>,
}

/// The aggregate over all scenarios.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Mode the exploration ran under.
    pub mode: Mode,
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioReport>,
}

impl ModelReport {
    /// Total complete schedules across scenarios.
    pub fn total_schedules(&self) -> u64 {
        self.scenarios.iter().map(|s| s.schedules).sum()
    }

    /// Total transitions executed.
    pub fn total_steps(&self) -> u64 {
        self.scenarios.iter().map(|s| s.steps).sum()
    }

    /// All violations across scenarios.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.scenarios.iter().flat_map(|s| s.violations.iter())
    }

    /// `true` when every invariant held on every explored path.
    pub fn holds(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Human-readable summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<18} {:>6} schedules  {:>7} steps{}  {}\n",
                s.name,
                s.schedules,
                s.steps,
                if self.mode == Mode::Por {
                    format!("  {:>6} states", s.states)
                } else {
                    String::new()
                },
                if s.violations.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} VIOLATION(S)", s.violations.len())
                },
            ));
            for v in &s.violations {
                out.push_str(&format!(
                    "  [{}] {}\n    schedule: {}\n",
                    v.invariant, v.detail, v.schedule
                ));
            }
        }
        out.push_str(&format!(
            "lp-check model ({:?}): {} scenario(s), {} schedules, {} steps — {}\n",
            self.mode,
            self.scenarios.len(),
            self.total_schedules(),
            self.total_steps(),
            if self.holds() {
                "all invariants hold"
            } else {
                "INVARIANT VIOLATIONS"
            }
        ));
        out
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"mode\":\"{:?}\",\"total_schedules\":{},\"total_steps\":{},\"holds\":{},",
            self.mode,
            self.total_schedules(),
            self.total_steps(),
            self.holds()
        ));
        out.push_str("\"scenarios\":[");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"schedules\":{},\"steps\":{},\"states\":{},\"violations\":{}}}",
                s.name,
                s.schedules,
                s.steps,
                s.states,
                s.violations.len()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Cap on recorded violations per scenario (exploration continues, but
/// a broken invariant usually breaks on thousands of paths at once).
pub const MAX_VIOLATIONS: usize = 8;

// ---------------------------------------------------------------------------
// The world: real domain + spec oracle + accounting.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct World {
    dom: UintrDomain,
    uitt: Uitt,
    h: UpidHandle,
    spec: SpecUpid,
    recv_state: ReceiverState,
    /// Union of all vectors ever posted.
    sent: u64,
    /// Union of all vectors returned by drains.
    drained: u64,
    /// Vectors posted since the last drain (independent bookkeeping for
    /// the exactly-once check; must track `PUIR` if the model is
    /// right).
    live: u64,
}

impl World {
    fn new() -> Self {
        let mut dom = UintrDomain::new();
        let h = dom.register_receiver();
        let mut uitt = Uitt::new();
        // Entry index i targets vector i; scenarios use vectors 0..16.
        for v in 0..16 {
            uitt.register(h, v);
        }
        World {
            dom,
            uitt,
            h,
            spec: SpecUpid::new(),
            recv_state: ReceiverState::RunningUifSet,
            sent: 0,
            drained: 0,
            live: 0,
        }
    }

    /// Fingerprint for the PoR memo: everything the future depends on.
    fn fingerprint(&self) -> ((bool, bool, u64), u8, u64, u64, u64) {
        let u = self.dom.upid(self.h).expect("receiver registered");
        let rs = match self.recv_state {
            ReceiverState::RunningUifSet => 0u8,
            ReceiverState::RunningUifClear => 1,
            ReceiverState::Blocked => 2,
        };
        (u.state_key(), rs, self.sent, self.drained, self.live)
    }

    /// Applies one op; returns the invariant it broke, if any.
    fn apply(&mut self, op: Op) -> Result<(), (Invariant, String)> {
        match op {
            Op::Send { vector } => {
                let on_before = self.dom.upid(self.h).expect("registered").outstanding;
                let sn_before = self.dom.upid(self.h).expect("registered").suppress;
                let entry = self.uitt.get(vector as usize).expect("uitt entry");
                let got = self
                    .dom
                    .senduipi(entry, self.recv_state)
                    .map_err(|e| (Invariant::SpecAgreement, format!("send failed: {e}")))?;
                let want = self.spec.send(vector, self.recv_state);
                self.sent |= 1u64 << vector;
                self.live |= 1u64 << vector;
                if got != want {
                    return Err((
                        Invariant::SpecAgreement,
                        format!("send(v{vector}) -> {got:?}, spec says {want:?}"),
                    ));
                }
                let on_after = self.dom.upid(self.h).expect("registered").outstanding;
                if sn_before && (got != SendOutcome::Suppressed || on_after != on_before) {
                    return Err((
                        Invariant::SuppressCoalesce,
                        format!("send under SN gave {got:?} (ON {on_before}->{on_after})"),
                    ));
                }
                if !sn_before && on_before && got != SendOutcome::Coalesced {
                    return Err((
                        Invariant::SuppressCoalesce,
                        format!("send under ON gave {got:?}, expected Coalesced"),
                    ));
                }
            }
            Op::SendLost { vector } => {
                let entry = self.uitt.get(vector as usize).expect("uitt entry");
                let got = self
                    .dom
                    .senduipi_with_fault(entry, self.recv_state, Some(IpiFault::Drop))
                    .map_err(|e| (Invariant::SpecAgreement, format!("lost send failed: {e}")))?;
                if got != (SendOutcome::Dropped { reason: DropReason::Faulted }) {
                    return Err((
                        Invariant::SpecAgreement,
                        format!("lost send(v{vector}) -> {got:?}, expected Dropped/Faulted"),
                    ));
                }
                // Nothing was posted: `sent`/`live`/spec stay untouched,
                // and check_state() below verifies the domain agrees.
            }
            Op::Ack => {
                let got = self
                    .dom
                    .acknowledge(self.h)
                    .map_err(|e| (Invariant::DrainExactlyOnce, format!("ack failed: {e}")))?;
                let want = self.spec.acknowledge();
                if got != want {
                    return Err((
                        Invariant::SpecAgreement,
                        format!("ack drained {got:#x}, spec says {want:#x}"),
                    ));
                }
                if got & !self.live != 0 {
                    return Err((
                        Invariant::DrainExactlyOnce,
                        format!(
                            "ack drained {:#x} not posted since the last drain (live {:#x})",
                            got & !self.live,
                            self.live
                        ),
                    ));
                }
                if got != self.live {
                    return Err((
                        Invariant::DrainExactlyOnce,
                        format!("ack drained {got:#x} but {:#x} was live", self.live),
                    ));
                }
                self.drained |= got;
                self.live = 0;
            }
            Op::Suppress(b) => {
                self.dom
                    .set_suppress(self.h, b)
                    .map_err(|e| (Invariant::SpecAgreement, format!("set_suppress: {e}")))?;
                self.spec.set_suppress(b);
            }
            Op::SetRecvState(s) => {
                self.recv_state = s;
            }
            Op::SetNdst(core) => {
                self.dom
                    .set_ndst(self.h, core.map(CoreId))
                    .map_err(|e| (Invariant::SpecAgreement, format!("set_ndst: {e}")))?;
            }
        }
        self.check_state()
    }

    /// The always-on invariants, checked after every transition.
    fn check_state(&self) -> Result<(), (Invariant, String)> {
        let u = self.dom.upid(self.h).expect("receiver registered");
        if u.outstanding != self.spec.on
            || u.suppress != self.spec.sn
            || u.pending != self.spec.pir
        {
            return Err((
                Invariant::SpecAgreement,
                format!(
                    "domain (ON={} SN={} PIR={:#x}) != spec (ON={} SN={} PIR={:#x})",
                    u.outstanding, u.suppress, u.pending, self.spec.on, self.spec.sn, self.spec.pir
                ),
            ));
        }
        if u.outstanding && u.pending == 0 {
            return Err((
                Invariant::OnImpliesPending,
                "ON set with empty PIR (phantom notification)".to_string(),
            ));
        }
        if self.drained | u.pending != self.sent || self.live != u.pending {
            return Err((
                Invariant::Conservation,
                format!(
                    "drained {:#x} | pending {:#x} != sent {:#x} (live {:#x})",
                    self.drained, u.pending, self.sent, self.live
                ),
            ));
        }
        Ok(())
    }

    /// End-of-schedule epilogue: the kernel schedules the receiver back
    /// in (clears `SN`) and the handler drains. Afterwards *every* sent
    /// vector must have been delivered exactly once and nothing may
    /// remain pending — the bounded-horizon form of "no lost wakeup".
    fn epilogue(&mut self) -> Result<(), (Invariant, String)> {
        self.apply(Op::Suppress(false))?;
        self.apply(Op::Ack)?;
        let u = self.dom.upid(self.h).expect("receiver registered");
        if self.drained != self.sent || u.pending != 0 || u.outstanding {
            return Err((
                Invariant::Conservation,
                format!(
                    "after schedule-in epilogue: drained {:#x}, sent {:#x}, pending {:#x}, ON={}",
                    self.drained, self.sent, u.pending, u.outstanding
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Exploration.
// ---------------------------------------------------------------------------

struct Explorer<'a> {
    sc: &'a Scenario,
    mode: Mode,
    report: ScenarioReport,
    memo: BTreeSet<(Vec<usize>, ((bool, bool, u64), u8, u64, u64, u64))>,
    trace: Vec<String>,
}

impl Explorer<'_> {
    fn record(&mut self, invariant: Invariant, detail: String) {
        if self.report.violations.len() < MAX_VIOLATIONS {
            self.report.violations.push(Violation {
                invariant,
                detail,
                schedule: self.trace.join(" "),
            });
        }
    }

    fn dfs(&mut self, pcs: &mut Vec<usize>, world: &World) {
        let enabled: Vec<usize> = (0..self.sc.threads.len())
            .filter(|&t| pcs[t] < self.sc.threads[t].len())
            .collect();
        if enabled.is_empty() {
            self.report.schedules += 1;
            let mut w = world.clone();
            if let Err((inv, detail)) = w.epilogue() {
                self.record(inv, detail);
            }
            return;
        }
        if self.mode == Mode::Por {
            let key = (pcs.clone(), world.fingerprint());
            if !self.memo.insert(key) {
                return;
            }
            self.report.states += 1;
        }
        for t in enabled {
            let op = self.sc.threads[t][pcs[t]];
            let mut w = world.clone();
            self.report.steps += 1;
            self.trace.push(format!("T{t}:{op}"));
            match w.apply(op) {
                Ok(()) => {
                    pcs[t] += 1;
                    self.dfs(pcs, &w);
                    pcs[t] -= 1;
                }
                Err((inv, detail)) => self.record(inv, detail),
            }
            self.trace.pop();
        }
    }
}

/// Explores one scenario exhaustively under `mode`.
pub fn explore(sc: &Scenario, mode: Mode) -> ScenarioReport {
    let mut ex = Explorer {
        sc,
        mode,
        report: ScenarioReport {
            name: sc.name,
            what: sc.what,
            schedules: 0,
            steps: 0,
            states: 0,
            violations: Vec::new(),
        },
        memo: BTreeSet::new(),
        trace: Vec::new(),
    };
    let mut pcs = vec![0usize; sc.threads.len()];
    ex.dfs(&mut pcs, &World::new());
    ex.report
}

/// The checked-in scenario suite: 2 senders × 1 receiver, ≤ 8 ops per
/// thread, covering the drain race, the suppression window,
/// masking/blocking transitions, migration, and same-vector
/// coalescing. Together they enumerate several thousand distinct
/// schedules (the CI gate requires ≥ 1000).
pub fn default_scenarios() -> Vec<Scenario> {
    use Op::*;
    use ReceiverState::*;
    vec![
        Scenario {
            name: "drain-race",
            what: "two 3-send bursts race three drains (coalescing vs. delivery)",
            threads: vec![
                vec![Ack, Ack, Ack],
                vec![Send { vector: 0 }, Send { vector: 1 }, Send { vector: 2 }],
                vec![Send { vector: 3 }, Send { vector: 4 }, Send { vector: 5 }],
            ],
        },
        Scenario {
            name: "suppress-window",
            what: "sends landing inside and around an SN=1 window",
            threads: vec![
                vec![Suppress(true), Suppress(false), Ack],
                vec![Send { vector: 0 }, Send { vector: 1 }],
                vec![Send { vector: 2 }, Send { vector: 3 }],
            ],
        },
        Scenario {
            name: "mask-block",
            what: "receiver masks (UIF=0) then blocks mid-burst",
            threads: vec![
                vec![
                    SetRecvState(RunningUifClear),
                    Ack,
                    SetRecvState(Blocked),
                    Ack,
                    SetRecvState(RunningUifSet),
                ],
                vec![Send { vector: 0 }, Send { vector: 1 }],
                vec![Send { vector: 2 }],
            ],
        },
        Scenario {
            name: "migrate-coalesce",
            what: "same-vector sends coalesce across an NDST migration",
            threads: vec![
                vec![SetNdst(Some(1)), Ack, SetNdst(None), Ack],
                vec![Send { vector: 7 }, Send { vector: 7 }],
                vec![Send { vector: 7 }],
            ],
        },
        Scenario {
            name: "lossy-retry",
            what: "a watchdog re-send races the original it presumed lost (no double-deliver)",
            threads: vec![
                // The receiver drains twice: if the retry could ever be
                // delivered as a second, distinct wakeup for the same
                // preemption, DrainExactlyOnce/Conservation would trip.
                vec![Ack, Ack],
                // The original send: in the racy interleavings it is
                // still in flight when the watchdog gives up on it.
                vec![Send { vector: 5 }],
                // The watchdog: its first attempt is eaten by the
                // fabric (typed Dropped, no UPID state), then it
                // re-sends the same vector.
                vec![SendLost { vector: 5 }, Send { vector: 5 }],
            ],
        },
        Scenario {
            name: "suppress-drain-race",
            what: "SN toggles race drains and a two-sender burst",
            threads: vec![
                vec![Suppress(true), Ack, Suppress(false), Ack],
                vec![Send { vector: 1 }, Send { vector: 2 }],
                vec![Send { vector: 2 }, Send { vector: 9 }],
            ],
        },
    ]
}

/// Runs the default suite under `mode`.
pub fn check_default(mode: Mode) -> ModelReport {
    ModelReport {
        mode,
        scenarios: default_scenarios().iter().map(|sc| explore(sc, mode)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multinomial coefficient: the number of interleavings of programs
    /// with the given lengths.
    fn interleavings(lens: &[usize]) -> u64 {
        let total: usize = lens.iter().sum();
        let mut num = 1u128;
        for i in 1..=total {
            num *= i as u128;
        }
        for &l in lens {
            for i in 1..=l {
                num /= i as u128;
            }
        }
        num as u64
    }

    #[test]
    fn full_mode_counts_every_interleaving() {
        for sc in default_scenarios() {
            let lens: Vec<usize> = sc.threads.iter().map(Vec::len).collect();
            let r = explore(&sc, Mode::Full);
            assert_eq!(
                r.schedules,
                interleavings(&lens),
                "{}: expected the exact multinomial count",
                sc.name
            );
            assert!(r.violations.is_empty(), "{}: {:?}", sc.name, r.violations);
        }
    }

    #[test]
    fn suite_meets_the_schedule_floor() {
        let r = check_default(Mode::Full);
        assert!(r.holds(), "{}", r.human());
        assert!(
            r.total_schedules() >= 1000,
            "only {} schedules",
            r.total_schedules()
        );
    }

    #[test]
    fn por_explores_fewer_or_equal_leaves_and_agrees() {
        let full = check_default(Mode::Full);
        let por = check_default(Mode::Por);
        assert!(por.holds() == full.holds());
        assert!(por.total_schedules() <= full.total_schedules());
        assert!(por.total_steps() <= full.total_steps());
    }

    /// A deliberately broken drain (clears ON but forgets PUIR bits
    /// posted under SN) must be caught. This mutates via the real API:
    /// we simulate the bug by draining twice and pretending both counts
    /// — i.e. the checker's own bookkeeping flags a double-credit.
    #[test]
    fn checker_catches_a_lost_vector() {
        let mut w = World::new();
        w.apply(Op::Suppress(true)).unwrap();
        w.apply(Op::Send { vector: 4 }).unwrap();
        // Model a buggy kernel that clears SN without a follow-up drain
        // and then loses the pending bit: emulate by tampering with the
        // accounting the way a lost vector would look.
        w.sent |= 1 << 5; // a send the hardware dropped entirely
        let err = w.check_state().unwrap_err();
        assert_eq!(err.0, Invariant::Conservation);
    }

    /// A fault-dropped send must be a perfect no-op: typed `Dropped`
    /// outcome, no UPID mutation, no spec divergence, no credit in the
    /// conservation ledger. This is the single-op core of the
    /// `lossy-retry` scenario.
    #[test]
    fn lost_send_changes_nothing() {
        let mut w = World::new();
        w.apply(Op::Send { vector: 7 }).unwrap();
        let before = w.fingerprint();
        let sent = w.sent;
        w.apply(Op::SendLost { vector: 7 }).unwrap();
        assert_eq!(w.fingerprint(), before);
        assert_eq!(w.sent, sent, "a dropped send must not earn drain credit");
        w.check_state().unwrap();
        w.epilogue().unwrap();
    }

    #[test]
    fn lossy_retry_scenario_is_in_the_default_suite() {
        let sc = default_scenarios();
        let lossy = sc
            .iter()
            .find(|s| s.name == "lossy-retry")
            .expect("lossy-retry scenario registered");
        assert!(lossy
            .threads
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::SendLost { .. })));
        let r = explore(lossy, Mode::Full);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn epilogue_flags_unacked_residue() {
        let mut w = World::new();
        w.apply(Op::Send { vector: 3 }).unwrap();
        // Healthy world: epilogue drains and passes.
        assert!(w.clone().epilogue().is_ok());
        // A world whose drain accounting lost a bit fails.
        let mut bad = w.clone();
        bad.sent |= 1 << 8;
        assert!(bad.epilogue().is_err());
    }
}
