//! `lp-check race`: happens-before race detection over the
//! deterministic `lp_sim::obs` event stream.
//!
//! The trace (in-memory `TimedEvent`s or exported JSONL) is replayed
//! onto a [`HbGraph`]: each event is assigned to
//! an actor (dispatcher, the timer/watchdog control core, or a
//! worker), program order gives per-actor edges, and the typed
//! causality vocabulary —
//!
//! * **send→deliver**: `preempt_issued (worker, seq)` →
//!   `preempt_landed (worker, seq)`
//! * **retry→re-send**: `preempt_retry (worker, seq)` → the next
//!   `preempt_issued` for the same pair with `attempt > 0`
//! * **arm→fire**: `ktimer_armed (worker)` → `ktimer_fired (worker)`
//! * **dispatch→run**: `policy_dispatch (worker)` → the next fresh
//!   `task_start (worker)`
//! * **steal→run**: reserved for the work-stealing runtime
//!
//! — gives cross-actor edges. On top of the graph the analyzer
//! reports:
//!
//! * **uncaused deliveries** — a `preempt_landed` with no
//!   happens-before path from a matching `preempt_issued` (the
//!   delivery came from nowhere), including double-landings of one
//!   `(worker, seq)` identity;
//! * **lost wakeups** — a `preempt_retry` whose target never observes
//!   delivery, degradation, or run progress although the trace keeps
//!   going long past the backoff;
//! * **conflicting transitions** — degrade/recover transitions on one
//!   worker's mechanism state that are not monotone, or a recovery
//!   with no happens-before path from the degradation it undoes;
//! * **stranded fibers** — a parked fiber that never runs again while
//!   its worker keeps executing other work.
//!
//! Every finding carries a minimized event slice: the causal history
//! of the anchoring event (capped), rendered as JSONL, so a reader
//! sees the chain that led to the diagnostic rather than the whole
//! trace.
//!
//! Shipped-figure traces must produce **zero** findings; the tier-1
//! gate (`tests/static_analysis.rs`) seeds a lost-wakeup mutant and
//! asserts it is caught. Truncated rings are tolerated: a landing
//! whose issue predates the captured window is skipped, never
//! reported.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lp_sim::obs::{Event, TimedEvent};

use crate::hb::{EdgeKind, HbGraph};

/// The kind of concurrency defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A delivery with no happens-before path from any issue.
    UncausedDelivery,
    /// A retry whose target never observed delivery or degradation.
    LostWakeup,
    /// Non-monotone or causally unordered degrade/recover transitions.
    ConflictingTransition,
    /// A parked fiber that never ran again.
    StrandedFiber,
}

impl RaceKind {
    /// Stable kebab-case name used in human and JSON output.
    pub const fn name(self) -> &'static str {
        match self {
            RaceKind::UncausedDelivery => "uncaused-delivery",
            RaceKind::LostWakeup => "lost-wakeup",
            RaceKind::ConflictingTransition => "conflicting-transition",
            RaceKind::StrandedFiber => "stranded-fiber",
        }
    }
}

/// One race diagnostic: the defect kind, the worker it concerns, a
/// human message, and the minimized causal slice (JSONL lines).
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// What class of defect this is.
    pub kind: RaceKind,
    /// The worker the defect concerns.
    pub worker: u16,
    /// One-line description with the identifying details.
    pub message: String,
    /// The causal history of the anchoring event, oldest first,
    /// rendered as trace JSONL (capped at [`SLICE_CAP`] lines).
    pub slice: Vec<String>,
}

/// Maximum events in a finding's minimized slice.
pub const SLICE_CAP: usize = 12;

/// How far past a retry's backoff the trace must extend before an
/// unresolved retry counts as a lost wakeup (filters end-of-run
/// truncation).
const LOST_WAKEUP_MARGIN_NS: u64 = 1_000_000;

/// A park must be at least this far from the end of the trace before
/// the fiber can be called stranded.
const STRANDED_TAIL_NS: u64 = 5_000_000;

/// The parking worker must start this many other tasks, with the
/// parked fiber still waiting, before the fiber is called stranded.
const STRANDED_STARTS: usize = 16;

/// The result of one race analysis.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Events analyzed (after dropping unparseable lines).
    pub events: usize,
    /// Cross-actor happens-before edges constructed.
    pub edges: usize,
    /// Actors discovered (dispatcher + control + workers).
    pub actors: usize,
    /// Input lines skipped as unparseable (JSONL input only).
    pub skipped: usize,
    /// The findings, in trace order of their anchors.
    pub findings: Vec<RaceFinding>,
}

impl RaceReport {
    /// `true` when the trace is race-free.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "race: {} events, {} hb edges, {} actors, {} finding(s)",
            self.events,
            self.edges,
            self.actors,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(out, "  [{}] worker {}: {}", f.kind.name(), f.worker, f.message);
            for line in &f.slice {
                let _ = writeln!(out, "    | {line}");
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "  clean: every delivery is caused, no lost wakeups");
        }
        out
    }

    /// Machine-readable rendering (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"events\":{},\"edges\":{},\"actors\":{},\"skipped\":{},\"findings\":[",
            self.events, self.edges, self.actors, self.skipped
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"worker\":{},\"message\":\"{}\",\"slice\":[",
                f.kind.name(),
                f.worker,
                escape(&f.message)
            );
            for (j, line) in f.slice.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(line));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The worker an event belongs to, if it is a per-worker event.
fn event_worker(ev: &Event) -> Option<u16> {
    match *ev {
        Event::UipiSent { worker, .. }
        | Event::UipiDelivered { worker, .. }
        | Event::UipiPended { worker }
        | Event::UipiSuppressed { worker }
        | Event::KernelAssistWake { worker }
        | Event::SignalSent { worker, .. }
        | Event::KtimerArmed { worker, .. }
        | Event::KtimerFired { worker }
        | Event::TaskStart { worker, .. }
        | Event::SwitchBegin { worker, .. }
        | Event::TaskFinish { worker, .. }
        | Event::Preempt { worker, .. }
        | Event::SpuriousPreempt { worker }
        | Event::PolicyDispatch { worker, .. }
        | Event::SliceGranted { worker, .. }
        | Event::FaultInjected { worker, .. }
        | Event::PreemptIssued { worker, .. }
        | Event::PreemptLanded { worker, .. }
        | Event::PreemptRetry { worker, .. }
        | Event::MechDegraded { worker, .. }
        | Event::MechRecovered { worker }
        | Event::MechBrownout { worker, .. } => Some(worker),
        Event::DeadlineArmed { slot, .. } | Event::DeadlineDisarmed { slot } => Some(slot),
        Event::TimerPoll { .. }
        | Event::IpcSampled { .. }
        | Event::Arrival { .. }
        | Event::Drop { .. }
        | Event::Shed { .. }
        | Event::Admitted { .. }
        | Event::QuantumAdjusted { .. }
        | Event::Marker { .. } => None,
    }
}

/// Actor index for an event: 0 = dispatcher, 1 = timer/watchdog
/// control core (all issue-side and kernel-send events), 2+w =
/// receiving side of worker `w`.
fn actor_of(ev: &Event) -> Actor {
    match *ev {
        Event::Arrival { .. }
        | Event::Drop { .. }
        | Event::Shed { .. }
        | Event::Admitted { .. }
        | Event::PolicyDispatch { .. } => Actor::Dispatcher,
        Event::UipiDelivered { worker, .. }
        | Event::DeadlineArmed { slot: worker, .. }
        | Event::DeadlineDisarmed { slot: worker }
        | Event::TaskStart { worker, .. }
        | Event::SwitchBegin { worker, .. }
        | Event::TaskFinish { worker, .. }
        | Event::Preempt { worker, .. }
        | Event::SpuriousPreempt { worker }
        | Event::SliceGranted { worker, .. }
        | Event::KtimerArmed { worker, .. }
        | Event::PreemptLanded { worker, .. }
        | Event::MechRecovered { worker } => Actor::Worker(worker),
        _ => Actor::Control,
    }
}

#[derive(Debug, Clone, Copy)]
enum Actor {
    Dispatcher,
    Control,
    Worker(u16),
}

impl Actor {
    fn index(self) -> usize {
        match self {
            Actor::Dispatcher => 0,
            Actor::Control => 1,
            Actor::Worker(w) => 2 + w as usize,
        }
    }
}

/// Analyzes an in-memory trace (e.g. `RunReport::events`).
pub fn analyze_events(events: &[TimedEvent]) -> RaceReport {
    Analyzer::run(events, 0)
}

/// Analyzes an exported JSONL trace. Unparseable or unknown lines are
/// skipped and counted, matching the documented schema-evolution rule
/// (parsers skip unknown `ev` values).
pub fn analyze_jsonl(text: &str) -> RaceReport {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match TimedEvent::parse_jsonl(line) {
            Some(te) => events.push(te),
            None => skipped += 1,
        }
    }
    Analyzer::run(&events, skipped)
}

struct Analyzer<'a> {
    events: &'a [TimedEvent],
    graph: HbGraph,
    findings: Vec<RaceFinding>,
}

impl<'a> Analyzer<'a> {
    fn run(events: &'a [TimedEvent], skipped: usize) -> RaceReport {
        let workers = events
            .iter()
            .filter_map(|te| event_worker(&te.ev))
            .max()
            .map_or(0, |w| w as usize + 1);
        let actors = 2 + workers;
        let mut a = Analyzer {
            events,
            graph: HbGraph::new(actors),
            findings: Vec::new(),
        };
        a.build_graph();
        a.check_deliveries();
        a.check_lost_wakeups();
        a.check_transitions();
        a.check_stranded_fibers();
        a.findings.sort_by_key(|f| (f.worker, f.kind.name()));
        RaceReport {
            events: events.len(),
            edges: a.graph.edges().len(),
            actors,
            skipped,
            findings: a.findings,
        }
    }

    /// First pass: assign actors and construct the typed edges.
    fn build_graph(&mut self) {
        // Unconsumed issues per (worker, seq): (event idx, uintr).
        let mut open_issues: BTreeMap<(u16, u64), Vec<(usize, bool)>> = BTreeMap::new();
        // Pending retry decisions per (worker, seq).
        let mut pending_retry: BTreeMap<(u16, u64), usize> = BTreeMap::new();
        // Latest degrade decision per worker (joins its signal
        // re-send when there was no preempt_retry in between).
        let mut last_degrade: BTreeMap<u16, usize> = BTreeMap::new();
        // Armed kernel timer per worker.
        let mut pending_arm: BTreeMap<u16, usize> = BTreeMap::new();
        // FIFO of dispatch placements per worker.
        let mut pending_dispatch: BTreeMap<u16, Vec<usize>> = BTreeMap::new();

        for te in self.events {
            let actor = actor_of(&te.ev).index();
            let mut incoming: Vec<(usize, EdgeKind)> = Vec::new();
            match te.ev {
                Event::PreemptIssued { worker, seq, attempt, uintr } => {
                    if attempt > 0 {
                        if let Some(r) = pending_retry.remove(&(worker, seq)) {
                            incoming.push((r, EdgeKind::RetryResend));
                        } else if let Some(d) = last_degrade.remove(&worker) {
                            // A degrade decision re-sends through the
                            // signal path without a preempt_retry.
                            incoming.push((d, EdgeKind::RetryResend));
                        }
                    }
                    let idx = self.graph.observe(actor, &incoming);
                    open_issues.entry((worker, seq)).or_default().push((idx, uintr));
                    continue;
                }
                Event::PreemptLanded { worker, seq, uintr } => {
                    if let Some(list) = open_issues.get_mut(&(worker, seq)) {
                        // Prefer the newest issue on the same path; a
                        // landing retires the whole run, so every
                        // remaining in-flight send for it is stale.
                        let pick = list
                            .iter()
                            .rev()
                            .find(|&&(_, u)| u == uintr)
                            .or_else(|| list.last())
                            .map(|&(i, _)| i);
                        if let Some(i) = pick {
                            incoming.push((i, EdgeKind::SendDeliver));
                        }
                        list.clear();
                    }
                }
                Event::PreemptRetry { worker, seq, .. } => {
                    let idx = self.graph.observe(actor, &incoming);
                    pending_retry.insert((worker, seq), idx);
                    continue;
                }
                Event::MechDegraded { worker, .. } => {
                    let idx = self.graph.observe(actor, &incoming);
                    last_degrade.insert(worker, idx);
                    continue;
                }
                Event::KtimerArmed { worker, .. } => {
                    let idx = self.graph.observe(actor, &incoming);
                    pending_arm.insert(worker, idx);
                    continue;
                }
                Event::KtimerFired { worker } => {
                    if let Some(armed) = pending_arm.remove(&worker) {
                        incoming.push((armed, EdgeKind::ArmFire));
                    }
                }
                Event::PolicyDispatch { worker, .. } => {
                    let idx = self.graph.observe(actor, &incoming);
                    pending_dispatch.entry(worker).or_default().push(idx);
                    continue;
                }
                Event::TaskStart { worker, resumed, .. } => {
                    if !resumed {
                        if let Some(q) = pending_dispatch.get_mut(&worker) {
                            if !q.is_empty() {
                                incoming.push((q.remove(0), EdgeKind::DispatchRun));
                            }
                        }
                    }
                }
                _ => {}
            }
            self.graph.observe(actor, &incoming);
        }
    }

    /// Renders the capped causal history of `anchor` as JSONL lines.
    fn slice_of(&self, anchor: usize) -> Vec<String> {
        self.graph
            .causal_slice(anchor, SLICE_CAP)
            .into_iter()
            .map(|i| {
                let mut s = String::new();
                self.events[i].write_jsonl(&mut s);
                s
            })
            .collect()
    }

    fn push(&mut self, kind: RaceKind, worker: u16, message: String, anchor: usize) {
        let slice = self.slice_of(anchor);
        self.findings.push(RaceFinding { kind, worker, message, slice });
    }

    /// Uncaused and double deliveries: every `preempt_landed` must
    /// have a happens-before path from exactly one live issue.
    fn check_deliveries(&mut self) {
        // (worker, seq) identities already landed.
        let mut landed: BTreeMap<(u16, u64), usize> = BTreeMap::new();
        // Issue indices per (worker, seq), populated in trace order.
        let mut issues: BTreeMap<(u16, u64), Vec<usize>> = BTreeMap::new();
        let mut first_issue_at: BTreeMap<u16, usize> = BTreeMap::new();
        for (idx, te) in self.events.iter().enumerate() {
            match te.ev {
                Event::PreemptIssued { worker, seq, .. } => {
                    issues.entry((worker, seq)).or_default().push(idx);
                    first_issue_at.entry(worker).or_insert(idx);
                }
                Event::PreemptLanded { worker, seq, .. } => {
                    if let Some(&prev) = landed.get(&(worker, seq)) {
                        self.push(
                            RaceKind::ConflictingTransition,
                            worker,
                            format!(
                                "preemption (worker {worker}, seq {seq}) landed twice \
                                 (events {prev} and {idx}): double delivery"
                            ),
                            idx,
                        );
                        continue;
                    }
                    landed.insert((worker, seq), idx);
                    let cause = issues
                        .get(&(worker, seq))
                        .into_iter()
                        .flatten()
                        .rev()
                        .find(|&&i| self.graph.happens_before(i, idx));
                    if cause.is_none() {
                        // Ring truncation can cut the issue off the
                        // front of the window. Issues for one worker
                        // carry nondecreasing seq, so an *earlier*
                        // in-window issue for this worker proves the
                        // matching issue would have been captured —
                        // only then is the landing truly uncaused.
                        let provable = first_issue_at.get(&worker).is_some_and(|&f| f < idx);
                        if provable {
                            self.push(
                                RaceKind::UncausedDelivery,
                                worker,
                                format!(
                                    "preempt_landed (worker {worker}, seq {seq}) has no \
                                     happens-before path from any preempt_issued: the \
                                     delivery is uncaused"
                                ),
                                idx,
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Lost wakeups: the last retry of a `(worker, seq)` chain must be
    /// followed by delivery, degradation, or run progress — given the
    /// trace keeps going long enough that resolution was due.
    fn check_lost_wakeups(&mut self) {
        let Some(last) = self.events.last() else { return };
        let trace_end = last.at.as_nanos().max(
            self.events.iter().map(|te| te.at.as_nanos()).max().unwrap_or(0),
        );
        // Last retry per (worker, seq).
        let mut last_retry: BTreeMap<(u16, u64), (usize, u64, u64)> = BTreeMap::new();
        for (idx, te) in self.events.iter().enumerate() {
            if let Event::PreemptRetry { worker, seq, delay_ns, .. } = te.ev {
                last_retry.insert((worker, seq), (idx, te.at.as_nanos(), delay_ns));
            }
        }
        for (&(worker, seq), &(idx, at, delay)) in &last_retry {
            let due = at.saturating_add(delay).saturating_add(LOST_WAKEUP_MARGIN_NS);
            if trace_end < due {
                continue; // the window ends before resolution was due
            }
            let resolved = self.events[idx + 1..].iter().any(|te| match te.ev {
                Event::PreemptLanded { worker: w, seq: s, .. } => w == worker && s == seq,
                Event::MechDegraded { worker: w, .. } => w == worker,
                Event::TaskFinish { worker: w, .. } => w == worker,
                Event::Preempt { worker: w, .. } => w == worker,
                Event::PreemptIssued { worker: w, seq: s, .. } => w == worker && s > seq,
                _ => false,
            });
            if !resolved {
                self.push(
                    RaceKind::LostWakeup,
                    worker,
                    format!(
                        "preempt_retry (worker {worker}, seq {seq}) is never followed by \
                         delivery, degradation, or run progress although the trace \
                         continues {}us past the backoff: the wakeup is lost",
                        (trace_end - at) / 1_000
                    ),
                    idx,
                );
            }
        }
    }

    /// Degrade/recover monotonicity and causality: transitions on one
    /// worker's mechanism state must alternate degrade → recover, and
    /// each recovery must be causally reachable from the degradation
    /// it undoes (degrade —po→ probe issue —send→deliver→ landing
    /// —po→ recover). The reverse direction (recover → next degrade)
    /// has no trace-visible synchronization — the watchdog's read of
    /// victim state is internal — so only monotonicity is asserted.
    fn check_transitions(&mut self) {
        let mut by_worker: BTreeMap<u16, Vec<(usize, bool)>> = BTreeMap::new();
        for (idx, te) in self.events.iter().enumerate() {
            match te.ev {
                Event::MechDegraded { worker, .. } => {
                    by_worker.entry(worker).or_default().push((idx, true));
                }
                Event::MechRecovered { worker } => {
                    by_worker.entry(worker).or_default().push((idx, false));
                }
                _ => {}
            }
        }
        for (&worker, transitions) in &by_worker {
            let mut degraded_since: Option<usize> = None;
            let mut seen_any_degrade = false;
            for &(idx, is_degrade) in transitions {
                if is_degrade {
                    if degraded_since.is_some() {
                        self.push(
                            RaceKind::ConflictingTransition,
                            worker,
                            format!(
                                "mech_degraded on worker {worker} while already degraded: \
                                 transitions are not monotone"
                            ),
                            idx,
                        );
                    }
                    degraded_since = Some(idx);
                    seen_any_degrade = true;
                } else {
                    match degraded_since.take() {
                        None => {
                            // Ring truncation can cut the degrade off
                            // the window front; only flag when a
                            // degrade for this worker was captured.
                            if seen_any_degrade {
                                self.push(
                                    RaceKind::ConflictingTransition,
                                    worker,
                                    format!(
                                        "mech_recovered on worker {worker} without a \
                                         preceding mech_degraded"
                                    ),
                                    idx,
                                );
                            }
                        }
                        Some(d) => {
                            if !self.graph.happens_before(d, idx) {
                                self.push(
                                    RaceKind::ConflictingTransition,
                                    worker,
                                    format!(
                                        "mech_recovered on worker {worker} is concurrent \
                                         with the mech_degraded it undoes: no \
                                         happens-before path through a probe delivery"
                                    ),
                                    idx,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Stranded fibers: a `preempt` parks a fiber; if the fiber never
    /// starts again while its worker keeps picking other work (and the
    /// park is not in the trace tail), its causality chain dead-ends.
    fn check_stranded_fibers(&mut self) {
        let Some(last) = self.events.last() else { return };
        let trace_end = last.at.as_nanos();
        // Fiber ids are pool slots, reused only after release — a
        // parked fiber holds its slot, so "never starts again" is
        // exact, not a heuristic.
        let mut parked: BTreeMap<u32, (usize, u16, u64)> = BTreeMap::new();
        let mut starts_after: BTreeMap<u32, usize> = BTreeMap::new();
        for (idx, te) in self.events.iter().enumerate() {
            match te.ev {
                Event::Preempt { worker, fiber, .. } => {
                    parked.insert(fiber, (idx, worker, te.at.as_nanos()));
                    starts_after.insert(fiber, 0);
                }
                Event::TaskStart { worker, fiber, .. } => {
                    if parked.remove(&fiber).is_some() {
                        starts_after.remove(&fiber);
                    }
                    // Any other fiber starting on a worker with parked
                    // fibers advances their starvation counters.
                    for (f, &(_, w, _)) in parked.iter() {
                        if w == worker && *f != fiber {
                            *starts_after.entry(*f).or_insert(0) += 1;
                        }
                    }
                    let _ = idx;
                }
                _ => {}
            }
        }
        for (&fiber, &(idx, worker, at)) in &parked {
            let starved = starts_after.get(&fiber).copied().unwrap_or(0);
            if trace_end.saturating_sub(at) >= STRANDED_TAIL_NS && starved >= STRANDED_STARTS {
                self.push(
                    RaceKind::StrandedFiber,
                    worker,
                    format!(
                        "fiber {fiber} was parked on worker {worker} and never resumed \
                         although the worker started {starved} other tasks afterwards: \
                         the fiber's causality chain dead-ends"
                    ),
                    idx,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::SimTime;

    fn te(at_ns: u64, ev: Event) -> TimedEvent {
        TimedEvent { at: SimTime::from_nanos(at_ns), ev }
    }

    fn issue(at: u64, worker: u16, seq: u64, attempt: u8) -> TimedEvent {
        te(at, Event::PreemptIssued { worker, seq, attempt, uintr: true })
    }

    fn landed(at: u64, worker: u16, seq: u64) -> TimedEvent {
        te(at, Event::PreemptLanded { worker, seq, uintr: true })
    }

    #[test]
    fn clean_cycle_has_no_findings() {
        let trace = vec![
            issue(100, 0, 0, 0),
            landed(500, 0, 0),
            te(600, Event::Preempt { worker: 0, fiber: 1, ran_ns: 500 }),
            issue(1_000, 0, 1, 0),
            landed(1_400, 0, 1),
            te(1_500, Event::Preempt { worker: 0, fiber: 2, ran_ns: 400 }),
        ];
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
        assert_eq!(r.events, 6);
        assert!(r.edges >= 2, "send->deliver edges missing");
    }

    #[test]
    fn uncaused_delivery_is_detected() {
        // The seeded mutant: a delivery whose issue never happened.
        let trace = vec![
            issue(100, 0, 0, 0),
            landed(500, 0, 0),
            landed(900, 0, 7), // no issue for seq 7 anywhere
        ];
        let r = analyze_events(&trace);
        assert_eq!(r.findings.len(), 1, "{}", r.human());
        assert_eq!(r.findings[0].kind, RaceKind::UncausedDelivery);
        assert_eq!(r.findings[0].worker, 0);
        assert!(!r.findings[0].slice.is_empty(), "finding carries a slice");
    }

    #[test]
    fn truncated_head_is_not_reported() {
        // Ring truncation: the trace opens mid-stream with a landing
        // whose issue fell off the window. No earlier issue for the
        // worker exists, so the analyzer must stay quiet.
        let trace = vec![
            landed(500, 0, 41),
            issue(1_000, 0, 42, 0),
            landed(1_400, 0, 42),
        ];
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
    }

    #[test]
    fn double_delivery_is_detected() {
        let trace = vec![
            issue(100, 0, 0, 0),
            landed(500, 0, 0),
            landed(700, 0, 0),
        ];
        let r = analyze_events(&trace);
        assert_eq!(r.findings.len(), 1, "{}", r.human());
        assert_eq!(r.findings[0].kind, RaceKind::ConflictingTransition);
        assert!(r.findings[0].message.contains("double delivery"));
    }

    #[test]
    fn lost_wakeup_is_detected() {
        let mut trace = vec![
            issue(100, 0, 0, 0),
            te(50_000, Event::PreemptRetry { worker: 0, seq: 0, attempt: 1, delay_ns: 5_000 }),
            issue(55_000, 0, 0, 1),
        ];
        // The trace continues far past the backoff with unrelated
        // activity, but worker 0 never observes anything.
        for i in 0..20 {
            trace.push(te(
                100_000 + i * 500_000,
                Event::TaskFinish { worker: 1, fiber: 9, latency_ns: 10 },
            ));
        }
        let r = analyze_events(&trace);
        assert!(
            r.findings.iter().any(|f| f.kind == RaceKind::LostWakeup && f.worker == 0),
            "{}",
            r.human()
        );
    }

    #[test]
    fn resolved_retry_is_not_a_lost_wakeup() {
        let trace = vec![
            issue(100, 0, 0, 0),
            te(50_000, Event::PreemptRetry { worker: 0, seq: 0, attempt: 1, delay_ns: 5_000 }),
            issue(55_000, 0, 0, 1),
            landed(56_000, 0, 0),
            te(56_100, Event::Preempt { worker: 0, fiber: 3, ran_ns: 56_000 }),
            te(10_000_000, Event::TaskFinish { worker: 1, fiber: 9, latency_ns: 10 }),
        ];
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
    }

    #[test]
    fn retry_near_trace_end_is_tolerated() {
        // Resolution was never due inside the window: quiet.
        let trace = vec![
            issue(100, 0, 0, 0),
            te(50_000, Event::PreemptRetry { worker: 0, seq: 0, attempt: 1, delay_ns: 5_000 }),
            te(60_000, Event::TaskFinish { worker: 1, fiber: 9, latency_ns: 10 }),
        ];
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
    }

    #[test]
    fn recovery_without_probe_chain_is_conflicting() {
        // Degrade, then a recovery with no probe issue/landing chain:
        // the two transitions are concurrent in the hb graph.
        let trace = vec![
            issue(100, 0, 0, 0),
            te(200, Event::MechDegraded { worker: 0, losses: 3 }),
            te(900, Event::MechRecovered { worker: 0 }),
        ];
        let r = analyze_events(&trace);
        assert_eq!(r.findings.len(), 1, "{}", r.human());
        assert_eq!(r.findings[0].kind, RaceKind::ConflictingTransition);
        assert!(r.findings[0].message.contains("concurrent"));
    }

    #[test]
    fn causal_recovery_is_clean() {
        // The real chain: degrade -> probe issue -> landing -> recover.
        let trace = vec![
            issue(100, 0, 0, 0),
            te(200, Event::MechDegraded { worker: 0, losses: 3 }),
            issue(300, 0, 0, 1),
            landed(700, 0, 0),
            te(700, Event::MechRecovered { worker: 0 }),
            te(710, Event::Preempt { worker: 0, fiber: 1, ran_ns: 600 }),
        ];
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
    }

    #[test]
    fn double_degrade_is_not_monotone() {
        let trace = vec![
            te(200, Event::MechDegraded { worker: 0, losses: 3 }),
            te(400, Event::MechDegraded { worker: 0, losses: 4 }),
        ];
        let r = analyze_events(&trace);
        assert_eq!(r.findings.len(), 1, "{}", r.human());
        assert!(r.findings[0].message.contains("monotone"));
    }

    #[test]
    fn stranded_fiber_is_detected() {
        let mut trace = vec![te(
            100,
            Event::Preempt { worker: 0, fiber: 7, ran_ns: 100 },
        )];
        // The worker keeps starting other fibers; 7 never returns, and
        // the trace runs long past the park.
        for i in 0..20 {
            trace.push(te(
                1_000_000 + i * 1_000_000,
                Event::TaskStart { worker: 0, fiber: 100 + i as u32, resumed: false, switch_ns: 0 },
            ));
        }
        let r = analyze_events(&trace);
        assert!(
            r.findings.iter().any(|f| f.kind == RaceKind::StrandedFiber),
            "{}",
            r.human()
        );
    }

    #[test]
    fn resumed_fiber_is_not_stranded() {
        let mut trace = vec![te(
            100,
            Event::Preempt { worker: 0, fiber: 7, ran_ns: 100 },
        )];
        for i in 0..20 {
            trace.push(te(
                1_000_000 + i * 1_000_000,
                Event::TaskStart { worker: 0, fiber: 100 + i as u32, resumed: false, switch_ns: 0 },
            ));
        }
        trace.push(te(
            30_000_000,
            Event::TaskStart { worker: 0, fiber: 7, resumed: true, switch_ns: 0 },
        ));
        let r = analyze_events(&trace);
        assert!(r.is_clean(), "{}", r.human());
    }

    #[test]
    fn jsonl_round_trip_matches_in_memory() {
        let trace = vec![
            issue(100, 0, 0, 0),
            landed(500, 0, 0),
            landed(900, 0, 7),
        ];
        let mut text = String::new();
        for te in &trace {
            te.write_jsonl(&mut text);
            text.push('\n');
        }
        text.push_str("{\"t\":1000,\"ev\":\"some_future_event\",\"x\":1}\n");
        let r = analyze_jsonl(&text);
        assert_eq!(r.skipped, 1, "unknown events skipped, not fatal");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, RaceKind::UncausedDelivery);
        assert!(r.to_json().contains("\"kind\":\"uncaused-delivery\""));
    }
}
