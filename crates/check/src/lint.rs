//! The workspace linter: a lightweight token/line-level analyzer (no
//! external parser — consistent with the vendored-offline policy) that
//! walks every `crates/*/src/**/*.rs` file and enforces the rule table
//! in [`crate::rules`].
//!
//! The analyzer first strips comments and string/char literals with a
//! small character-level state machine (line comments, nested block
//! comments, raw strings, lifetimes vs. char literals), so rules match
//! *code* tokens only — a `HashMap` in a doc example or an "unsafe" in
//! a diagnostic string never fires. Stripped comment text is kept
//! per-line for the rules that read comments: `// SAFETY:`
//! justifications and `// lp-check: allow(rule, reason)` suppressions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{
    hot_alloc_allowance, nondet_file_allowance, relaxed_file_allowance, RuleId, ATTRIBUTION_EVENTS,
    CHAOS_RNG_DIR, CHAOS_RNG_TOKENS, EVENT_VOCAB_FILE, FAULT_RNG_FILE, FAULT_RNG_TOKENS,
    HOT_ALLOC_FILES,
    HOT_ALLOC_TOKENS, NONDET_EXEMPT_CRATES, NONDET_TOKENS, OBS_PAIRED_CRATES, POLICY_DIR,
    POLICY_PURITY_TOKENS, RETRY_STATE_CRATE, RETRY_STATE_FIELDS, RETRY_STATE_FILE,
    UNSAFE_ALLOWED_CRATE, WORKERLESS_EVENTS,
};

/// One finding, pinned to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong, with the offending token.
    pub message: String,
    /// `true` when an `lp-check: allow(...)` at/above the site covers
    /// it (reported for audit, but not a failure).
    pub suppressed: bool,
    /// `true` when the suppression came from a static allowlist in
    /// `rules.rs` rather than an inline `lp-check: allow` comment —
    /// lets the docs distinguish architectural allowances from one-off
    /// source-level suppressions.
    pub forced: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.rule,
            self.message,
            if self.suppressed { " (suppressed)" } else { "" }
        )
    }
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, suppressed ones included, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings that actually fail the build (not suppressed).
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed)
    }

    /// Number of unsuppressed findings.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Number of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.suppressed).count()
    }

    /// Suppressions granted by inline `lp-check: allow` comments only
    /// (static-allowlist hits excluded) — the number `docs/CHECKS.md`
    /// quotes as the workspace's inline-suppression count.
    pub fn inline_suppressed_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed && !d.forced)
            .count()
    }

    /// `true` when no unsuppressed finding remains.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Human-readable diagnostics, one per line, plus a summary tail.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lp-check lint: {} file(s), {} violation(s), {} suppressed\n",
            self.files_scanned,
            self.violation_count(),
            self.suppressed_count()
        ));
        out
    }

    /// Machine-readable JSON (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"violations\":{},", self.violation_count()));
        out.push_str(&format!("\"suppressed\":{},", self.suppressed_count()));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"suppressed\":{},\"message\":\"{}\"}}",
                d.rule,
                json_escape(&d.file),
                d.line,
                d.suppressed,
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Source model: one file split into per-line code text + comment text.
// ---------------------------------------------------------------------------

/// A source file after comment/string stripping.
struct StrippedFile {
    /// Code with comments and string/char literal *contents* blanked to
    /// spaces (line lengths preserved).
    code: Vec<String>,
    /// Comment text per line (both `//` and `/* */` bodies).
    comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Strips comments and literals. A small, honest state machine: it
/// handles nested block comments, escapes, raw strings (`r"…"`,
/// `r#"…"#`, byte variants) and tells lifetimes from char literals by
/// one character of lookahead.
fn strip(source: &str) -> StrippedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code_line.push(' ');
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br#"…"#.
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            code_line.push(' ');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal iff it closes within two chars or
                    // escapes; otherwise it is a lifetime.
                    let is_char = next == Some('\\')
                        || (chars.get(i + 2) == Some(&'\'') && next != Some('\''));
                    if is_char {
                        state = State::CharLit;
                        code_line.push(' ');
                        i += 1;
                        continue;
                    }
                }
                code_line.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                    continue;
                }
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                }
                code_line.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            code_line.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code_line.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                }
                code_line.push(' ');
                i += 1;
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    StrippedFile { code, comments }
}

/// `true` if `hay` contains `needle` delimited by non-identifier
/// characters on both sides (so `HashMap` does not match `FxHashMap`).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(hay[..at].chars().next_back().unwrap());
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

/// Parsed `lp-check: allow(rule, reason)` markers per line, plus the
/// malformed ones (which become [`RuleId::BadAllow`] findings).
struct Allows {
    by_line: BTreeMap<usize, Vec<RuleId>>,
    bad: Vec<(usize, String)>,
}

fn parse_allows(f: &StrippedFile) -> Allows {
    let mut by_line = BTreeMap::new();
    let mut bad = Vec::new();
    for (idx, comment) in f.comments.iter().enumerate() {
        let line = idx + 1;
        // Suppressions are plain `//` comments; doc comments (`///`,
        // `//!` — whose stripped text starts with `/` or `!`) merely
        // *describe* the syntax and never suppress anything.
        let trimmed = comment.trim_start();
        if trimmed.starts_with('/') || trimmed.starts_with('!') {
            continue;
        }
        let Some(pos) = comment.find("lp-check: allow(") else {
            continue;
        };
        let rest = &comment[pos + "lp-check: allow(".len()..];
        let Some(close) = rest.find(')') else {
            bad.push((line, "unclosed lp-check: allow(".to_string()));
            continue;
        };
        let inner = &rest[..close];
        let (rule_s, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        match RuleId::parse(rule_s) {
            Some(rule) if !reason.is_empty() => {
                by_line.entry(line).or_insert_with(Vec::new).push(rule);
            }
            Some(_) => bad.push((
                line,
                format!("allow({rule_s}) is missing its reason — write allow({rule_s}, <why>)"),
            )),
            None => bad.push((line, format!("allow names unknown rule `{rule_s}`"))),
        }
    }
    Allows { by_line, bad }
}

impl Allows {
    /// A finding at `line` is covered by an allow on the same line or
    /// the line directly above it.
    fn covers(&self, rule: RuleId, line: usize) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.by_line.get(l).is_some_and(|rs| rs.contains(&rule)))
    }
}

// ---------------------------------------------------------------------------
// The workspace walk + rule passes.
// ---------------------------------------------------------------------------

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// root). Deterministic: files are visited in sorted order.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let vocab = tracing_vocabulary(root)?;
    let mut report = LintReport::default();
    for file in workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        lint_file(&rel, &source, &vocab, &mut report);
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// All `.rs` files under `crates/*/src`, sorted.
fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The event-name vocabulary declared in `docs/TRACING.md`: the first
/// backticked snake_case token of every table row. Emitting an
/// `Event::Variant` whose snake_case name is not in this set is an
/// [`RuleId::ObsPair`] violation — the docs and the code drifted.
fn tracing_vocabulary(root: &Path) -> io::Result<BTreeSet<String>> {
    let doc = std::fs::read_to_string(root.join("docs/TRACING.md"))?;
    let mut vocab = BTreeSet::new();
    for line in doc.lines() {
        let Some(cell) = line.strip_prefix('|') else {
            continue;
        };
        let Some(first_cell) = cell.split('|').next() else {
            continue;
        };
        // Every backticked token in the first cell (counter rows list
        // several).
        let mut rest = first_cell;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let token = &tail[..close];
            if !token.is_empty()
                && token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                vocab.insert(token.to_string());
            }
            rest = &tail[close + 1..];
        }
    }
    Ok(vocab)
}

fn camel_to_snake(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The crate name (`crates/<name>/…`) a workspace-relative path belongs
/// to, if any.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn lint_file(rel: &str, source: &str, vocab: &BTreeSet<String>, report: &mut LintReport) {
    let stripped = strip(source);
    let allows = parse_allows(&stripped);
    let krate = crate_of(rel).unwrap_or("");
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");

    // `forced` marks a diagnostic suppressed regardless of inline
    // `lp-check: allow` comments — used by the static nondet allowlist.
    let mut push = |rule: RuleId, line: usize, message: String, forced: bool| {
        let suppressed = forced || allows.covers(rule, line);
        report.diagnostics.push(Diagnostic {
            rule,
            file: rel.to_string(),
            line,
            message,
            suppressed,
            forced,
        });
    };

    for (line, msg) in &allows.bad {
        push(RuleId::BadAllow, *line, msg.clone(), false);
    }

    // Pass 1: per-line token rules.
    for (idx, code) in stripped.code.iter().enumerate() {
        let line = idx + 1;

        if !NONDET_EXEMPT_CRATES.contains(&krate) {
            for token in NONDET_TOKENS {
                if contains_token(code, token) {
                    // The static per-file allowance (rules.rs): the hit
                    // is still reported — as suppressed — so the audit
                    // trail survives, but it does not fail the build.
                    if let Some(why) = nondet_file_allowance(rel, token) {
                        push(
                            RuleId::Nondet,
                            line,
                            format!("nondeterminism source `{token}` (static allowlist: {why})"),
                            true,
                        );
                        continue;
                    }
                    push(
                        RuleId::Nondet,
                        line,
                        format!("nondeterminism source `{token}` in sim-path crate `{krate}`"),
                        false,
                    );
                }
            }
        }

        if HOT_ALLOC_FILES.contains(&rel) {
            for token in HOT_ALLOC_TOKENS {
                if contains_token(code, token) {
                    // The static allowance (rules.rs) keeps the two
                    // deliberate growth points visible as suppressed
                    // diagnostics without failing the build.
                    if let Some(why) = hot_alloc_allowance(rel, token) {
                        push(
                            RuleId::HotAlloc,
                            line,
                            format!("hot-path growth token `{token}` (static allowlist: {why})"),
                            true,
                        );
                        continue;
                    }
                    push(
                        RuleId::HotAlloc,
                        line,
                        format!(
                            "hot-path growth token `{token}` in the event engine core — \
                             the pop/arm/cascade paths must only move pre-allocated \
                             nodes (or extend rules::HOT_ALLOC_ALLOWLIST with a \
                             written amortization argument)"
                        ),
                        false,
                    );
                }
            }
        }

        if rel == FAULT_RNG_FILE {
            for token in FAULT_RNG_TOKENS {
                if contains_token(code, token) {
                    push(
                        RuleId::FaultRng,
                        line,
                        format!(
                            "`{token}` in the fault injector — draw from \
                             `rng(master, streams::FAULTS)` only, never seed an RNG here"
                        ),
                        false,
                    );
                }
            }
        }

        if rel.starts_with(POLICY_DIR) {
            for token in POLICY_PURITY_TOKENS {
                if contains_token(code, token) {
                    push(
                        RuleId::PolicyPurity,
                        line,
                        format!(
                            "`{token}` in a scheduling-policy module — decisions must be \
                             pure functions of hook arguments and policy state \
                             (docs/POLICIES.md determinism rules)"
                        ),
                        false,
                    );
                }
            }
        }

        if rel.starts_with(CHAOS_RNG_DIR) {
            for token in CHAOS_RNG_TOKENS {
                if contains_token(code, token) {
                    push(
                        RuleId::ChaosRng,
                        line,
                        format!(
                            "`{token}` in the chaos adversary — draw from \
                             `rng(master, streams::CHAOS)` only, never seed an RNG here \
                             (corpus replay depends on it; see docs/CHAOS.md)"
                        ),
                        false,
                    );
                }
            }
        }

        if contains_token(code, "Relaxed") {
            if let Some(why) = relaxed_file_allowance(rel) {
                push(
                    RuleId::RelaxedOrdering,
                    line,
                    format!("`Ordering::Relaxed` (static allowlist: {why})"),
                    true,
                );
            } else {
                push(
                    RuleId::RelaxedOrdering,
                    line,
                    "`Ordering::Relaxed` outside the audited allowlist — use Acquire/\
                     Release (or add the file to rules::RELAXED_ALLOWLIST with a \
                     written no-ordering-needed argument)"
                        .to_string(),
                    false,
                );
            }
        }

        if krate == RETRY_STATE_CRATE && rel != RETRY_STATE_FILE {
            for field in RETRY_STATE_FIELDS {
                if raw_retry_field_write(code, field) {
                    push(
                        RuleId::RetryTransition,
                        line,
                        format!(
                            "raw write to watchdog state `.{field}` — route the \
                             transition through `RetryMachine::step` so the \
                             model-checked machine stays the only mutator"
                        ),
                        false,
                    );
                }
            }
        }

        if !is_bin {
            for mac in ["println!", "eprintln!"] {
                if code.contains(mac) {
                    push(
                        RuleId::NoPrint,
                        line,
                        format!("`{mac}` in library code — report through the Observer instead"),
                        false,
                    );
                }
            }
        }

        if contains_token(code, "unsafe") {
            if krate != UNSAFE_ALLOWED_CRATE {
                push(
                    RuleId::UnsafeScope,
                    line,
                    format!("`unsafe` outside `{UNSAFE_ALLOWED_CRATE}` (crate `{krate}`)"),
                    false,
                );
            }
            if unsafe_needs_safety_comment(&stripped.code, idx)
                && !has_safety_comment(&stripped, idx)
            {
                push(
                    RuleId::SafetyComment,
                    line,
                    "`unsafe` block without a `// SAFETY:` comment on or above it".to_string(),
                    false,
                );
            }
        }

        // Event vocabulary (only in the observability-paired crates).
        if OBS_PAIRED_CRATES.contains(&krate) {
            for variant in event_variants(code) {
                let snake = camel_to_snake(&variant);
                if !vocab.contains(&snake) {
                    push(
                        RuleId::ObsPair,
                        line,
                        format!(
                            "`Event::{variant}` (wire name `{snake}`) is not in the \
                             docs/TRACING.md vocabulary — document it before emitting it"
                        ),
                        false,
                    );
                }
            }
        }
    }

    // Pass 2: the event vocabulary file — every variant carries a
    // `worker` (or `slot`) identity unless it is a declared global
    // event, so the happens-before engine can place it on an actor;
    // and the attribution-driving span events additionally carry a
    // `fiber` identity and a documented wire name, so the phase
    // accountant can charge time to the right request.
    if rel == EVENT_VOCAB_FILE {
        for (variant, line, has_id, has_fiber) in event_enum_variants(&stripped.code) {
            if !has_id && !WORKERLESS_EVENTS.contains(&variant.as_str()) {
                push(
                    RuleId::WorkerId,
                    line,
                    format!(
                        "`Event::{variant}` carries no `worker`/`slot` field — the \
                         race detector cannot place it on an actor; add the id or \
                         declare it global in rules::WORKERLESS_EVENTS"
                    ),
                    false,
                );
            }
            if ATTRIBUTION_EVENTS.contains(&variant.as_str()) {
                if !has_id || !has_fiber {
                    push(
                        RuleId::WorkerId,
                        line,
                        format!(
                            "`Event::{variant}` drives the phase accountant but lacks \
                             a `worker` and `fiber` identity — exemplar breakdowns \
                             would charge time to the wrong request (see \
                             rules::ATTRIBUTION_EVENTS)"
                        ),
                        false,
                    );
                }
                let snake = camel_to_snake(&variant);
                if !vocab.contains(&snake) {
                    push(
                        RuleId::ObsPair,
                        line,
                        format!(
                            "attribution event `Event::{variant}` (wire name `{snake}`) \
                             is not in the docs/TRACING.md vocabulary — the phase \
                             semantics must be documented where the phases are"
                        ),
                        false,
                    );
                }
            }
        }
    }

    // Pass 3: `_observed` wrappers must keep their plain twin in the
    // same file (the mutator/event pair the tracing contract rests on).
    if OBS_PAIRED_CRATES.contains(&krate) {
        let fns = fn_names(&stripped.code);
        for (name, line) in &fns {
            if let Some(base) = name.strip_suffix("_observed") {
                if !fns.iter().any(|(n, _)| n == base) {
                    push(
                        RuleId::ObsPair,
                        *line,
                        format!(
                            "`fn {name}` has no plain `fn {base}` twin in this file — \
                             the observed wrapper must delegate to an unobserved mutator"
                        ),
                        false,
                    );
                }
            }
        }
    }
}

/// `true` when `code` writes to `.{field}` (`=`, `+=`, `-=`, …) rather
/// than reading or comparing it. Line-level on purpose: the fields are
/// private to `RetryMachine`, so this is belt-and-suspenders against
/// the fields being re-inlined into a runtime struct.
fn raw_retry_field_write(code: &str, field: &str) -> bool {
    let pat = format!(".{field}");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&pat) {
        let at = start + pos;
        let after = &code[at + pat.len()..];
        if after.chars().next().is_none_or(|c| !is_ident(c)) {
            let rest = after.trim_start().as_bytes();
            let is_write = match rest.first() {
                Some(b'=') => !matches!(rest.get(1), Some(b'=') | Some(b'>')),
                Some(b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^') => {
                    rest.get(1) == Some(&b'=')
                }
                _ => false,
            };
            if is_write {
                return true;
            }
        }
        start = at + 1;
    }
    false
}

/// The variants of `pub enum Event` in the vocabulary file: `(name,
/// 1-based line, carries a worker/slot field)`. Brace-depth scan over
/// stripped code — variants open at depth 1, their fields sit below.
fn event_enum_variants(code_lines: &[String]) -> Vec<(String, usize, bool, bool)> {
    let start = code_lines.iter().position(|code| {
        code.find("pub enum Event").is_some_and(|pos| {
            code[pos + "pub enum Event".len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident(c))
        })
    });
    let Some(start) = start else { return Vec::new() };
    let mut out: Vec<(String, usize, bool, bool)> = Vec::new();
    let mut depth = 0i32;
    for (idx, code) in code_lines.iter().enumerate().skip(start) {
        let trimmed = code.trim();
        if depth == 1 && trimmed.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            let name: String = trimmed.chars().take_while(|&c| is_ident(c)).collect();
            out.push((name, idx + 1, false, false));
        }
        if let Some(last) = out.last_mut() {
            if depth >= 1 && (contains_token(code, "worker") || contains_token(code, "slot")) {
                last.2 = true;
            }
            if depth >= 1 && contains_token(code, "fiber") {
                last.3 = true;
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && idx > start {
            break;
        }
    }
    out
}

/// `Event::Variant` occurrences (CamelCase idents only) in a code line.
fn event_variants(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("Event::") {
        let tail = &rest[pos + "Event::".len()..];
        let ident: String = tail.chars().take_while(|&c| is_ident(c)).collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.push(ident);
        }
        rest = tail;
    }
    out
}

/// All `fn <name>` definitions in a file with their 1-based lines.
fn fn_names(code_lines: &[String]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, code) in code_lines.iter().enumerate() {
        let mut rest = code.as_str();
        while let Some(pos) = rest.find("fn ") {
            let token_ok = {
                let before = &rest[..pos];
                before.is_empty() || !is_ident(before.chars().next_back().unwrap())
            };
            let tail = &rest[pos + 3..];
            if token_ok {
                let name: String = tail
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident(c))
                    .collect();
                if !name.is_empty() {
                    out.push((name, idx + 1));
                }
            }
            rest = tail;
        }
    }
    out
}

/// Whether the `unsafe` on line `idx` opens an unsafe *block* or an
/// `unsafe impl` (the forms that need a `// SAFETY:` justification;
/// `unsafe fn` declarations document their contract in a `# Safety`
/// doc section instead, which rustdoc already enforces).
fn unsafe_needs_safety_comment(code_lines: &[String], idx: usize) -> bool {
    let code = &code_lines[idx];
    let mut rest = code.as_str();
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = {
            let before = &rest[..pos];
            before.is_empty() || !is_ident(before.chars().next_back().unwrap())
        };
        let tail = &rest[pos + "unsafe".len()..];
        if before_ok && !tail.chars().next().is_some_and(is_ident) {
            let next_tokens = tail.trim_start();
            if next_tokens.starts_with('{') || next_tokens.starts_with("impl") {
                return true;
            }
            // `unsafe` at end of line with the `{` opening on the next.
            if next_tokens.is_empty()
                && code_lines
                    .get(idx + 1)
                    .is_some_and(|l| l.trim_start().starts_with('{'))
            {
                return true;
            }
        }
        rest = tail;
    }
    false
}

/// A `SAFETY:` comment counts if it appears on the same line as the
/// `unsafe`, or anywhere in the contiguous run of comment/attribute
/// lines directly above it (multi-line justifications are the norm).
fn has_safety_comment(f: &StrippedFile, idx: usize) -> bool {
    if f.comments[idx].contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code = f.code[j].trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#!");
        if !code.is_empty() && !is_attr {
            break; // a real code line ends the run
        }
        if f.comments[j].contains("SAFETY:") {
            return true;
        }
        if code.is_empty() && f.comments[j].trim().is_empty() {
            break; // a fully blank line ends the run too
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_separates_code_and_comments() {
        let src = "let a = 1; // trailing note\nlet s = \"HashMap inside\";\n/* block\nstill block */ let b = 2;\n";
        let f = strip(src);
        assert!(f.code[0].contains("let a = 1;"));
        assert!(!f.code[0].contains("trailing"));
        assert!(f.comments[0].contains("trailing note"));
        assert!(!f.code[1].contains("HashMap"));
        assert!(f.comments[2].contains("block"));
        assert!(f.comments[3].contains("still block"));
        assert!(f.code[3].contains("let b = 2;"));
    }

    #[test]
    fn stripper_handles_lifetimes_and_chars() {
        let f = strip("fn f<'a>(x: &'a str) { let c = 'y'; let q = '\\''; }\n");
        assert!(f.code[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!f.code[0].contains('y'), "char literal content blanked: {}", f.code[0]);
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let f = strip("let s = r#\"unsafe { println!() }\"#; let t = 3;\n");
        assert!(!f.code[0].contains("unsafe"));
        assert!(f.code[0].contains("let t = 3;"));
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("use fx::FxHashMap;", "HashMap"));
        assert!(!contains_token("let hash_map_like = 1;", "HashMap"));
        assert!(contains_token("std::thread::sleep(d)", "thread::sleep"));
    }

    #[test]
    fn event_variant_extraction() {
        let vs = event_variants("obs.emit(at, Event::UipiSent { worker, vector });");
        assert_eq!(vs, vec!["UipiSent".to_string()]);
        assert_eq!(camel_to_snake("UipiSent"), "uipi_sent");
        assert_eq!(camel_to_snake("KernelAssistWake"), "kernel_assist_wake");
    }

    #[test]
    fn allow_parsing_and_coverage() {
        let f = strip("// lp-check: allow(nondet, timing loop is test-only)\nlet t = Instant::now();\n// lp-check: allow(nondet)\n// lp-check: allow(frobnicate, x)\n");
        let allows = parse_allows(&f);
        assert!(allows.covers(RuleId::Nondet, 2));
        assert!(!allows.covers(RuleId::NoPrint, 2));
        assert_eq!(allows.bad.len(), 2, "missing reason + unknown rule: {:?}", allows.bad);
    }

    #[test]
    fn nondet_static_allowlist_suppresses_only_listed_pairs() {
        let vocab = BTreeSet::new();
        // The allowlisted (file, token) pair: reported, but suppressed.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/par.rs",
            "std::thread::scope(|s| { let _ = s; });\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
        assert_eq!(r.suppressed_count(), 1);
        assert!(r.diagnostics[0].message.contains("static allowlist"));
        // The same token in any other file still fails.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/engine.rs",
            "std::thread::scope(|s| { let _ = s; });\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1);
        // A different banned token in an allowlisted file still fails.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/par.rs",
            "let t = std::time::Instant::now();\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1);
    }

    #[test]
    fn hot_alloc_rule_is_scoped_to_the_wheel_core() {
        let vocab = BTreeSet::new();
        // The allowlisted (file, token) pair: reported, but suppressed.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/wheel.rs",
            "self.heap.push(entry);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
        assert_eq!(r.suppressed_count(), 1);
        assert!(r.diagnostics[0].message.contains("static allowlist"));
        // An unlisted growth token in a hot file fails the build.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/wheel.rs",
            "let b = Box::new(node);\nlet m = HashMap::default();\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics
                .iter()
                .filter(|d| d.rule == RuleId::HotAlloc && !d.suppressed)
                .count()
                == 2,
            "{}",
            r.human()
        );
        // The same tokens outside the hot files are not this rule's
        // business (nondet still owns HashMap there).
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/engine.rs",
            "let b = Box::new(node); v.push(b);\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::HotAlloc),
            "{}",
            r.human()
        );
        // Moving nodes between intrusive lists is clean.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/wheel.rs",
            "self.nodes[prev as usize].next = next;\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
    }

    #[test]
    fn fault_rng_rule_is_scoped_to_the_injector_file() {
        let vocab = BTreeSet::new();
        // Seeding an RNG inside fault.rs fails the build.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/fault.rs",
            "let r = SmallRng::seed_from_u64(7);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1, "{}", r.human());
        assert!(r.diagnostics[0].message.contains("streams::FAULTS"));
        // The same token elsewhere is not this rule's business (other
        // rules may still apply).
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/rng.rs",
            "let r = SmallRng::seed_from_u64(7);\n",
            &vocab,
            &mut r,
        );
        assert!(r
            .diagnostics
            .iter()
            .all(|d| d.rule != RuleId::FaultRng), "{}", r.human());
        // Drawing via the blessed substream helper is clean.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/fault.rs",
            "let r = rng(master, streams::FAULTS);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
    }

    #[test]
    fn chaos_rng_rule_is_scoped_to_the_chaos_directory() {
        let vocab = BTreeSet::new();
        // Seeding an RNG anywhere in the chaos crate fails the build.
        let mut r = LintReport::default();
        lint_file(
            "crates/chaos/src/search.rs",
            "let r = SmallRng::seed_from_u64(7);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1, "{}", r.human());
        assert!(r.diagnostics[0].message.contains("streams::CHAOS"));
        // The same token elsewhere is not this rule's business (other
        // rules may still apply).
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/rng.rs",
            "let r = SmallRng::seed_from_u64(7);\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::ChaosRng),
            "{}",
            r.human()
        );
        // Drawing via the blessed substream helper is clean.
        let mut r = LintReport::default();
        lint_file(
            "crates/chaos/src/plan.rs",
            "let r = rng(master, streams::CHAOS);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
    }

    #[test]
    fn policy_purity_rule_is_scoped_to_the_zoo_directory() {
        let vocab = BTreeSet::new();
        // Ambient entropy inside a zoo module fails the build. (The
        // nondet rule fires on `thread_rng` too; the purity rule must
        // be among the diagnostics with its own message.)
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/policies/mine.rs",
            "let q = rand::thread_rng().gen_range(0..4);\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == RuleId::PolicyPurity && !d.suppressed),
            "{}",
            r.human()
        );
        assert!(r.human().contains("docs/POLICIES.md"));
        // Environment reads and wall clocks are banned there as well.
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/policies/mine.rs",
            "let j = std::env::var(\"LP_JOBS\");\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1, "{}", r.human());
        // The same tokens outside the zoo are not this rule's business
        // (other rules may still apply).
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/runtime.rs",
            "let j = std::env::var(\"LP_JOBS\");\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::PolicyPurity),
            "{}",
            r.human()
        );
        // A clean zoo module passes.
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/policies/mine.rs",
            "pub struct Mine { slice: u64 }\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 0, "{}", r.human());
    }

    #[test]
    fn relaxed_ordering_banned_outside_allowlist() {
        let vocab = BTreeSet::new();
        // Anywhere unlisted: a violation.
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/runtime.rs",
            "flag.store(true, Ordering::Relaxed);\n",
            &vocab,
            &mut r,
        );
        assert_eq!(r.violation_count(), 1, "{}", r.human());
        assert!(r.human().contains("relaxed-ordering"));
        // The allowlisted file: reported, but suppressed.
        let mut r = LintReport::default();
        lint_file(
            "crates/sim/src/par.rs",
            "let i = next.fetch_add(1, Ordering::Relaxed);\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics
                .iter()
                .all(|d| d.rule != RuleId::RelaxedOrdering || d.suppressed),
            "{}",
            r.human()
        );
        // Other orderings never fire.
        let mut r = LintReport::default();
        lint_file(
            "crates/preemptible/src/runtime.rs",
            "flag.store(true, Ordering::Release);\n",
            &vocab,
            &mut r,
        );
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::RelaxedOrdering),
            "{}",
            r.human()
        );
    }

    #[test]
    fn retry_state_writes_must_go_through_the_machine() {
        let vocab = BTreeSet::new();
        for write in [
            "w.losses = 0;\n",
            "self.workers[i].losses += 1;\n",
            "w.degraded = true;\n",
            "w.degraded_sends -= 1;\n",
            "w.probe_for = Some(seq);\n",
        ] {
            let mut r = LintReport::default();
            lint_file("crates/preemptible/src/runtime.rs", write, &vocab, &mut r);
            assert_eq!(r.violation_count(), 1, "`{write}` must fire: {}", r.human());
            assert!(r.human().contains("RetryMachine::step"));
        }
        // Reads and comparisons are fine.
        for read in [
            "if w.losses == 0 {}\n",
            "let d = w.degraded;\n",
            "assert!(m.losses() >= 1);\n",
            "match w.probe_for { _ => {} }\n",
        ] {
            let mut r = LintReport::default();
            lint_file("crates/preemptible/src/runtime.rs", read, &vocab, &mut r);
            assert!(
                r.diagnostics.iter().all(|d| d.rule != RuleId::RetryTransition),
                "`{read}` must not fire: {}",
                r.human()
            );
        }
        // The machine's own home is exempt — and so is any other crate.
        let mut r = LintReport::default();
        lint_file("crates/preemptible/src/retry.rs", "self.losses = 0;\n", &vocab, &mut r);
        assert_eq!(r.violation_count(), 0, "{}", r.human());
        let mut r = LintReport::default();
        lint_file("crates/check/src/lifecycle.rs", "st.losses = 0;\n", &vocab, &mut r);
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::RetryTransition),
            "{}",
            r.human()
        );
    }

    #[test]
    fn worker_id_required_on_event_variants() {
        let vocab = BTreeSet::new();
        let enum_src = "\
pub enum Event {
    UipiSent { worker: u16, vector: u8 },
    DeadlineArmed { slot: u32, deadline_ns: u64 },
    Arrival { class: u8 },
    Rogue { latency_ns: u64 },
}
";
        // Parsed shape first.
        let stripped = strip(enum_src);
        let vs = event_enum_variants(&stripped.code);
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], ("UipiSent".to_string(), 2, true, false));
        assert_eq!(vs[1].2, true, "slot counts as an identity");
        assert_eq!(vs[3], ("Rogue".to_string(), 5, false, false));
        // The rule: only the undeclared worker-less variant fires, and
        // only in the vocabulary file.
        let mut r = LintReport::default();
        lint_file("crates/sim/src/obs/event.rs", enum_src, &vocab, &mut r);
        let hits: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::WorkerId)
            .collect();
        assert_eq!(hits.len(), 1, "{}", r.human());
        assert!(hits[0].message.contains("Rogue"));
        assert_eq!(hits[0].line, 5);
        let mut r = LintReport::default();
        lint_file("crates/sim/src/other.rs", enum_src, &vocab, &mut r);
        assert!(
            r.diagnostics.iter().all(|d| d.rule != RuleId::WorkerId),
            "{}",
            r.human()
        );
    }

    #[test]
    fn fn_pairing_detects_missing_twin() {
        let code = strip("pub fn arm(&mut self) {}\npub fn arm_observed(&mut self) {}\npub fn lonely_observed(&mut self) {}\n");
        let fns = fn_names(&code.code);
        assert!(fns.iter().any(|(n, _)| n == "arm"));
        assert!(fns.iter().any(|(n, _)| n == "lonely_observed"));
    }

    #[test]
    fn safety_comment_detection() {
        let src = "// SAFETY: the pointer is valid for the lifetime of the call.\nunsafe { do_it() }\nlet a = 1;\nlet b = 2;\nlet c = 3;\nunsafe { bare() }\n";
        let f = strip(src);
        assert!(unsafe_needs_safety_comment(&f.code, 1));
        assert!(has_safety_comment(&f, 1));
        assert!(unsafe_needs_safety_comment(&f.code, 5));
        assert!(!has_safety_comment(&f, 5));
        // `unsafe fn` declarations are handled by `# Safety` docs, not
        // this rule.
        let g = strip("pub unsafe fn raw() -> u8 { 0 }\n");
        assert!(!unsafe_needs_safety_comment(&g.code, 0));
    }
}
