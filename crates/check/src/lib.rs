//! # lp-check — machine-checked guardrails for the reproduction
//!
//! Every result in this repository rests on two unchecked promises:
//!
//! 1. **Determinism** — the simulator is byte-deterministic (same seed,
//!    same JSONL trace, pinned by `tests/observability.rs`). One
//!    `std::collections::HashMap` iteration or `Instant::now()` on a
//!    sim path silently breaks it.
//! 2. **Observability pairing** — every hardware/kernel state mutation
//!    that matters is mirrored by an `_observed` event from the
//!    `docs/TRACING.md` vocabulary, so metrics can never drift from the
//!    model.
//!
//! `lp-check` turns both promises (plus the `unsafe` hygiene and
//! concurrency rules) into a CI gate with four engines:
//!
//! * [`lint`] — a token/line-level analyzer over all `crates/*/src`
//!   files enforcing the declared rule table in [`rules`], with
//!   per-site `// lp-check: allow(<rule>, <reason>)` suppressions and
//!   JSON + human diagnostics.
//! * [`model`] — an exhaustive-interleaving checker (bounded DFS with
//!   optional partial-order reduction) that drives the *real*
//!   [`UintrDomain`](lp_hw::uintr::UintrDomain) API through every
//!   schedule of small sender/receiver programs and asserts the UPID
//!   ON/SN/PIR protocol invariants on every path.
//! * [`lifecycle`] — a sleep-set DPOR explorer over the runtime's
//!   watchdog retry/degrade/recover machine and steal-shaped queue
//!   programs.
//! * [`race`] — a vector-clock happens-before race detector over the
//!   deterministic `lp_sim::obs` event stream ([`hb`] holds the
//!   graph).
//!
//! Run them from the workspace root:
//!
//! ```sh
//! cargo run -p lp-check -- lint     # determinism/observability linter
//! cargo run -p lp-check -- model    # exhaustive UINTR + lifecycle check
//! cargo run -p lp-check -- race --trace results/traces/figr.jsonl
//! cargo run -p lp-check -- all      # lint + model; nonzero exit on any finding
//! ```
//!
//! The rule catalogue and invariant list live in `docs/CHECKS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hb;
pub mod lifecycle;
pub mod lint;
pub mod model;
pub mod race;
pub mod rules;

/// Version of the compound `--json` schemas emitted by the CLI (`all`,
/// `model`, `race`). Bump when keys move; `tests/static_analysis.rs`
/// pins the `all` shape against a golden key-path list.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// The combined `all --json` payload: lint findings plus both model
/// checkers, under a top-level schema version. The CLI prints this
/// verbatim; the tier-1 golden test re-derives it through this same
/// function so binary and gate cannot drift.
pub fn all_json(
    lint: &lint::LintReport,
    upid: &model::ModelReport,
    lc: &lifecycle::LifecycleReport,
) -> String {
    format!(
        "{{\"version\":{JSON_SCHEMA_VERSION},\"lint\":{},\"model\":{},\"lifecycle\":{}}}",
        lint.to_json(),
        upid.to_json(),
        lc.to_json()
    )
}
