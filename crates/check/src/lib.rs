//! # lp-check — machine-checked guardrails for the reproduction
//!
//! Every result in this repository rests on two unchecked promises:
//!
//! 1. **Determinism** — the simulator is byte-deterministic (same seed,
//!    same JSONL trace, pinned by `tests/observability.rs`). One
//!    `std::collections::HashMap` iteration or `Instant::now()` on a
//!    sim path silently breaks it.
//! 2. **Observability pairing** — every hardware/kernel state mutation
//!    that matters is mirrored by an `_observed` event from the
//!    `docs/TRACING.md` vocabulary, so metrics can never drift from the
//!    model.
//!
//! `lp-check` turns both promises (plus the `unsafe` hygiene rules)
//! into a CI gate with two engines:
//!
//! * [`lint`] — a token/line-level analyzer over all `crates/*/src`
//!   files enforcing the declared rule table in [`rules`], with
//!   per-site `// lp-check: allow(<rule>, <reason>)` suppressions and
//!   JSON + human diagnostics.
//! * [`model`] — an exhaustive-interleaving checker (bounded DFS with
//!   optional partial-order reduction) that drives the *real*
//!   [`UintrDomain`](lp_hw::uintr::UintrDomain) API through every
//!   schedule of small sender/receiver programs and asserts the UPID
//!   ON/SN/PIR protocol invariants on every path.
//!
//! Run both from the workspace root:
//!
//! ```sh
//! cargo run -p lp-check -- lint     # determinism/observability linter
//! cargo run -p lp-check -- model    # exhaustive UINTR protocol check
//! cargo run -p lp-check -- all      # both; nonzero exit on any finding
//! ```
//!
//! The rule catalogue and invariant list live in `docs/CHECKS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lint;
pub mod model;
pub mod rules;
