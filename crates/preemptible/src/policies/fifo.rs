//! Preemptive FIFO: run requests in arrival order under a fixed time
//! slice; resume preempted work oldest-first. The simplest possible
//! [`SchedPolicy`] and the zoo's baseline.

use lp_sim::SimDur;

use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// Preemptive first-in-first-out with a fixed slice.
///
/// New requests run before preempted ones (the paper's cFCFS-P shape):
/// under bursty arrivals this keeps the dispatcher queue short, while
/// the slice bounds how long a long request can block the queue.
#[derive(Debug, Clone)]
pub struct Fifo {
    slice: SimDur,
}

impl Fifo {
    /// A FIFO policy granting every task the same `slice`.
    pub fn new(slice: SimDur) -> Self {
        Fifo { slice }
    }
}

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::Fifo)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.slice
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::obs::Observer;
    use lp_sim::SimTime;

    fn ctx<'a>(runnable: usize, parked: usize, obs: &'a mut Observer) -> SchedCtx<'a> {
        SchedCtx {
            now: SimTime::ZERO,
            queue_depths: &[],
            runnable,
            parked,
            window: None,
            obs,
        }
    }

    #[test]
    fn prefers_new_then_parked_then_idles() {
        let mut obs = Observer::counters_only();
        let mut p = Fifo::new(SimDur::micros(10));
        assert_eq!(p.dispatch(0, &mut ctx(2, 5, &mut obs)), Dispatch::New);
        assert_eq!(
            p.dispatch(0, &mut ctx(0, 5, &mut obs)),
            Dispatch::Parked(ResumeSel::Fifo)
        );
        assert_eq!(p.dispatch(0, &mut ctx(0, 0, &mut obs)), Dispatch::Idle);
    }

    #[test]
    fn slice_is_fixed_for_every_task_and_class() {
        let mut obs = Observer::counters_only();
        let mut p = Fifo::new(SimDur::micros(7));
        let mut t = TaskView {
            request: 1,
            fiber: 0,
            arrived: SimTime::ZERO,
            remaining: SimDur::micros(500),
            total: SimDur::micros(500),
            preemptions: 3,
            class: 0,
        };
        assert_eq!(p.time_slice(&t, &mut ctx(0, 0, &mut obs)), SimDur::micros(7));
        t.class = 1;
        assert_eq!(p.time_slice(&t, &mut ctx(0, 0, &mut obs)), SimDur::micros(7));
        assert_eq!(p.quantum_hint(0), SimDur::micros(7));
    }
}
