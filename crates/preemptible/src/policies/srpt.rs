//! Shortest-remaining-processing-time, using the simulator's oracle
//! knowledge of each task's remaining service demand.

use lp_sim::SimDur;

use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// SRPT over the parked set: resume whichever preempted task is
/// closest to finishing. Mean-latency-optimal in theory; only possible
/// here because the simulation knows true remaining work (a real
/// system would estimate it). Behaviorally identical to the legacy
/// [`SrptOracle`](crate::policy::SrptOracle), but expressed through the
/// generic [`ResumeSel::MinKey`] path instead of a bespoke pool method.
#[derive(Debug, Clone)]
pub struct Srpt {
    slice: SimDur,
}

impl Srpt {
    /// An SRPT policy with a fixed preemption `slice`.
    pub fn new(slice: SimDur) -> Self {
        Srpt { slice }
    }
}

impl SchedPolicy for Srpt {
    fn name(&self) -> &'static str {
        "srpt"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::MinKey)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.slice
    }

    fn resume_key(&self, task: &TaskView) -> u64 {
        task.remaining.as_nanos()
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::SimTime;

    fn task(remaining_us: u64) -> TaskView {
        TaskView {
            request: remaining_us,
            fiber: 0,
            arrived: SimTime::ZERO,
            remaining: SimDur::micros(remaining_us),
            total: SimDur::micros(500),
            preemptions: 1,
            class: 0,
        }
    }

    #[test]
    fn resume_key_is_remaining_work() {
        let p = Srpt::new(SimDur::micros(10));
        assert!(p.resume_key(&task(3)) < p.resume_key(&task(400)));
        assert_eq!(p.resume_key(&task(7)), 7_000);
    }
}
