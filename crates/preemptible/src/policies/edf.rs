//! Earliest-deadline-first: every request's deadline is its arrival
//! plus a per-class latency budget; parked work resumes in deadline
//! order and takes priority over new arrivals.

use lp_sim::SimDur;

use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// Deadline-aware scheduling for the paper's LC/BE co-location setup:
/// class 0 (latency-critical) gets a tight budget, class 1 (best
/// effort) a loose one, and the scheduler always works on whatever is
/// closest to missing its deadline.
#[derive(Debug, Clone)]
pub struct Edf {
    slice: SimDur,
    lc_budget: SimDur,
    be_budget: SimDur,
}

impl Edf {
    /// An EDF policy with a fixed preemption `slice` and per-class
    /// latency budgets (class 0 → `lc_budget`, others → `be_budget`).
    pub fn new(slice: SimDur, lc_budget: SimDur, be_budget: SimDur) -> Self {
        Edf { slice, lc_budget, be_budget }
    }

    fn deadline_ns(&self, task: &TaskView) -> u64 {
        let budget = if task.class == 0 { self.lc_budget } else { self.be_budget };
        task.arrived.as_nanos().saturating_add(budget.as_nanos())
    }
}

impl SchedPolicy for Edf {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // Parked tasks arrived earlier than anything still queued, so
        // under EDF they are the urgent ones: resume deadline-first,
        // then drain new arrivals.
        if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::MinKey)
        } else if ctx.runnable > 0 {
            Dispatch::New
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.slice
    }

    fn resume_key(&self, task: &TaskView) -> u64 {
        self.deadline_ns(task)
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::obs::Observer;
    use lp_sim::SimTime;

    fn task(arrived_ns: u64, class: u8) -> TaskView {
        TaskView {
            request: arrived_ns,
            fiber: 0,
            arrived: SimTime::from_nanos(arrived_ns),
            remaining: SimDur::micros(100),
            total: SimDur::micros(100),
            preemptions: 0,
            class,
        }
    }

    #[test]
    fn parked_work_preempts_new_arrivals() {
        let mut obs = Observer::counters_only();
        let mut p = Edf::new(SimDur::micros(10), SimDur::micros(50), SimDur::millis(1));
        let mut ctx = SchedCtx {
            now: SimTime::ZERO,
            queue_depths: &[],
            runnable: 4,
            parked: 1,
            window: None,
            obs: &mut obs,
        };
        assert_eq!(p.dispatch(0, &mut ctx), Dispatch::Parked(ResumeSel::MinKey));
        ctx.parked = 0;
        assert_eq!(p.dispatch(0, &mut ctx), Dispatch::New);
    }

    #[test]
    fn lc_deadlines_come_before_be_deadlines() {
        let p = Edf::new(SimDur::micros(10), SimDur::micros(50), SimDur::millis(1));
        // Same arrival: the LC budget expires ~20x sooner.
        let lc = task(1_000, 0);
        let be = task(1_000, 1);
        assert!(p.resume_key(&lc) < p.resume_key(&be));
        // An old BE request eventually outranks a fresh LC one.
        let stale_be = task(0, 1);
        let fresh_lc = task(2_000_000, 0);
        assert!(p.resume_key(&stale_be) < p.resume_key(&fresh_lc));
    }
}
