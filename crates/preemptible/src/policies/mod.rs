//! The policy zoo: ready-made [`SchedPolicy`](crate::sched::SchedPolicy)
//! implementations, each a self-contained ~100-line module with its own
//! unit tests.
//!
//! | Policy | Discipline | Resume order |
//! |---|---|---|
//! | [`Fifo`] | preemptive FCFS, fixed slice | oldest parked first |
//! | [`Mlfq`] | multi-level feedback queue, slice doubles per demotion | lowest level first |
//! | [`Edf`] | earliest-deadline-first (per-class latency budgets) | earliest deadline first |
//! | [`Vruntime`] | CFS-like fair scheduling on accumulated runtime | smallest vruntime first |
//! | [`Srpt`] | shortest-remaining-processing-time (oracle) | least remaining first |
//! | [`AdaptiveQuantum`] | the paper's Algorithm 1 controller as a zoo citizen | oldest parked first |
//!
//! These modules are held to a stricter hygiene bar than the rest of
//! the workspace: `lp-check`'s `policy-purity` rule forbids any wall
//! clock, RNG seeding, or environment access here (docs/CHECKS.md),
//! which is what makes every policy safe to drop into the
//! deterministic tournament harness (`lp-experiments::tournament`).
//! The authoring guide is `docs/POLICIES.md`.

mod adaptive;
mod edf;
mod fifo;
mod mlfq;
mod srpt;
mod vruntime;

pub use adaptive::AdaptiveQuantum;
pub use edf::Edf;
pub use fifo::Fifo;
pub use mlfq::Mlfq;
pub use srpt::Srpt;
pub use vruntime::Vruntime;
