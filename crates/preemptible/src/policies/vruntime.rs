//! CFS-like fair scheduling: track each task's accumulated on-CPU time
//! (its *vruntime*) and always resume the task that has run least.

use std::collections::BTreeMap;

use lp_sim::SimDur;

use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// Completely-fair-style scheduling. New tasks start at vruntime 0 —
/// the minimum — so they run promptly; every preempted slice adds its
/// executed time, and resumption always picks the task that has
/// consumed the least CPU so far. Long hogs therefore interleave fairly
/// instead of monopolizing a worker.
#[derive(Debug, Clone)]
pub struct Vruntime {
    slice: SimDur,
    /// Accumulated executed nanoseconds per task, keyed by request
    /// number (fiber indexes are recycled; request numbers are not).
    vrt: BTreeMap<u64, u64>,
}

impl Vruntime {
    /// A fair scheduler granting every task the same `slice`.
    pub fn new(slice: SimDur) -> Self {
        Vruntime { slice, vrt: BTreeMap::new() }
    }
}

impl SchedPolicy for Vruntime {
    fn name(&self) -> &'static str {
        "vruntime"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // New tasks hold the minimum vruntime (zero), so they go first;
        // parked tasks resume least-run-first.
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::MinKey)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.slice
    }

    fn resume_key(&self, task: &TaskView) -> u64 {
        self.vrt.get(&task.request).copied().unwrap_or(0)
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.slice
    }

    fn task_preempted(&mut self, task: &TaskView, ran: SimDur) {
        *self.vrt.entry(task.request).or_insert(0) += ran.as_nanos();
    }

    fn task_finished(&mut self, task: &TaskView) {
        self.vrt.remove(&task.request);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::SimTime;

    fn task(request: u64) -> TaskView {
        TaskView {
            request,
            fiber: 0,
            arrived: SimTime::ZERO,
            remaining: SimDur::micros(100),
            total: SimDur::micros(100),
            preemptions: 0,
            class: 0,
        }
    }

    #[test]
    fn vruntime_accumulates_and_orders_resumes() {
        let mut p = Vruntime::new(SimDur::micros(10));
        let (hog, light) = (task(1), task(2));
        p.task_preempted(&hog, SimDur::micros(30));
        p.task_preempted(&light, SimDur::micros(10));
        assert!(p.resume_key(&light) < p.resume_key(&hog));
        // Another slice widens the gap.
        p.task_preempted(&hog, SimDur::micros(30));
        assert_eq!(p.resume_key(&hog), 60_000);
    }

    #[test]
    fn fresh_tasks_hold_the_minimum_key() {
        let mut p = Vruntime::new(SimDur::micros(10));
        p.task_preempted(&task(1), SimDur::micros(1));
        assert_eq!(p.resume_key(&task(99)), 0);
    }

    #[test]
    fn completion_drops_the_entry() {
        let mut p = Vruntime::new(SimDur::micros(10));
        p.task_preempted(&task(1), SimDur::micros(5));
        p.task_finished(&task(1));
        assert!(p.vrt.is_empty());
    }
}
