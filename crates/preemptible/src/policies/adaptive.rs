//! The paper's adaptive time-quantum controller (Algorithm 1) as an
//! ordinary zoo citizen: FCFS dispatch with a slice that tracks the
//! observed workload each control window.

use lp_sim::obs::Observer;
use lp_sim::{SimDur, SimTime};
use lp_stats::WindowSummary;

use crate::adaptive::{AdaptiveConfig, QuantumController};
use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// Adaptive-quantum scheduling: dispatch is plain preemptive FCFS, but
/// the slice is re-derived every control window by
/// [`QuantumController`] from the window's load, queue length and
/// service-time dispersion. Behaviorally identical to the legacy
/// `FcfsPreempt::adaptive(..)` construction — the controller, the
/// window cadence and the decision sequence are all unchanged — so the
/// paper's Fig. 8/9 numbers are reproduced exactly.
#[derive(Debug, Clone)]
pub struct AdaptiveQuantum {
    ctl: QuantumController,
}

impl AdaptiveQuantum {
    /// Wraps an explicitly configured controller.
    pub fn new(ctl: QuantumController) -> Self {
        AdaptiveQuantum { ctl }
    }

    /// The paper's default controller tuning for a system whose
    /// saturation throughput is `max_load_rps`, starting from
    /// `initial` until the first window closes.
    pub fn paper(max_load_rps: f64, initial: SimDur) -> Self {
        AdaptiveQuantum::new(QuantumController::new(
            AdaptiveConfig::paper_defaults(max_load_rps),
            initial,
        ))
    }

    /// The controller's current quantum.
    pub fn quantum(&self) -> SimDur {
        self.ctl.quantum()
    }
}

impl SchedPolicy for AdaptiveQuantum {
    fn name(&self) -> &'static str {
        "adaptive-quantum"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::Fifo)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, _task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.ctl.quantum()
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.ctl.quantum()
    }

    fn on_window(&mut self, summary: &WindowSummary) {
        self.ctl.update(summary);
    }

    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        self.ctl.update_observed(summary, at, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FcfsPreempt;
    use crate::runtime::{run, RuntimeConfig, ServiceSource, WorkloadSpec};
    use lp_workload::{PhasedService, RateSchedule, ServiceDist};

    #[test]
    fn controller_reacts_to_windows_through_the_trait() {
        let mut p = AdaptiveQuantum::paper(1_000_000.0, SimDur::micros(20));
        assert_eq!(SchedPolicy::quantum_hint(&p, 0), SimDur::micros(20));
        // A heavy-tailed, overloaded window forces a different quantum.
        SchedPolicy::on_window(&mut p, &WindowSummary {
            load_rps: 950_000.0,
            throughput_rps: 900_000.0,
            median_ns: 1_000,
            p99_ns: 500_000,
            mean_qlen: 10.0,
            completed: 1,
            arrived: 1,
            service_scv: 140.0,
        });
        assert_ne!(SchedPolicy::quantum_hint(&p, 0), SimDur::micros(20));
    }

    /// The refactor's no-regression guarantee: the zoo policy and the
    /// legacy `FcfsPreempt::adaptive` construction drive the runtime
    /// through byte-identical schedules.
    #[test]
    fn matches_the_legacy_adaptive_policy_exactly() {
        let spec = || WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_a1())),
            arrivals: RateSchedule::Constant(400_000.0),
            duration: SimDur::millis(20),
            warmup: SimDur::millis(2),
        };
        let cfg = || RuntimeConfig {
            workers: 4,
            control_period: SimDur::millis(2),
            trace_capacity: 1 << 14,
            ..RuntimeConfig::default()
        };
        let mk_ctl = || {
            QuantumController::new(
                AdaptiveConfig::paper_defaults(800_000.0),
                SimDur::micros(20),
            )
        };
        let legacy = run(cfg(), Box::new(FcfsPreempt::adaptive(mk_ctl())), spec());
        let zoo = run(cfg(), Box::new(AdaptiveQuantum::new(mk_ctl())), spec());
        assert_eq!(legacy.completions, zoo.completions);
        assert_eq!(legacy.preemptions, zoo.preemptions);
        assert_eq!(legacy.latency.p99(), zoo.latency.p99());
        assert_eq!(legacy.final_quantum, zoo.final_quantum);
        assert_eq!(legacy.events_jsonl(), zoo.events_jsonl());
    }
}
