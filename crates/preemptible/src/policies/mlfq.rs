//! Multi-level feedback queue: every preemption demotes a task one
//! level, each level doubles the slice, and a periodic priority boost
//! (on the control window) resets all levels to prevent starvation.

use std::collections::BTreeMap;

use lp_sim::SimDur;
use lp_stats::WindowSummary;

use crate::sched::{Dispatch, ResumeSel, SchedCtx, SchedPolicy, TaskView};

/// Classic MLFQ on top of the preemption mechanism: short requests
/// finish inside the level-0 slice; long requests sink to lower levels
/// where they run with longer slices (fewer preemption round-trips) but
/// always yield to fresher work.
#[derive(Debug, Clone)]
pub struct Mlfq {
    base: SimDur,
    levels: u8,
    /// Per-task level, keyed by request number (never by fiber index —
    /// fiber slots are recycled).
    level: BTreeMap<u64, u8>,
}

impl Mlfq {
    /// An MLFQ with `levels` levels starting from a `base` slice;
    /// level *n* runs with `base << n`.
    pub fn new(base: SimDur, levels: u8) -> Self {
        assert!(levels > 0, "need at least one level");
        Mlfq { base, levels, level: BTreeMap::new() }
    }

    fn level_of(&self, task: &TaskView) -> u8 {
        self.level.get(&task.request).copied().unwrap_or(0)
    }
}

impl SchedPolicy for Mlfq {
    fn name(&self) -> &'static str {
        "mlfq"
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // New work is level 0 — the highest priority — so it runs
        // first; parked work resumes lowest-level-first.
        if ctx.runnable > 0 {
            Dispatch::New
        } else if ctx.parked > 0 {
            Dispatch::Parked(ResumeSel::MinKey)
        } else {
            Dispatch::Idle
        }
    }

    fn time_slice(&mut self, task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        let level = self.level_of(task);
        SimDur::nanos(self.base.as_nanos().saturating_mul(1 << level.min(62)))
    }

    fn resume_key(&self, task: &TaskView) -> u64 {
        u64::from(self.level_of(task))
    }

    fn quantum_hint(&self, _class: u8) -> SimDur {
        self.base
    }

    fn task_preempted(&mut self, task: &TaskView, _ran: SimDur) {
        let level = self.level.entry(task.request).or_insert(0);
        *level = (*level + 1).min(self.levels - 1);
    }

    fn task_finished(&mut self, task: &TaskView) {
        self.level.remove(&task.request);
    }

    fn on_window(&mut self, _summary: &WindowSummary) {
        // Priority boost: forgive all demotions each control window.
        self.level.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::obs::Observer;
    use lp_sim::SimTime;

    fn task(request: u64) -> TaskView {
        TaskView {
            request,
            fiber: 0,
            arrived: SimTime::ZERO,
            remaining: SimDur::micros(100),
            total: SimDur::micros(100),
            preemptions: 0,
            class: 0,
        }
    }

    fn ctx(obs: &mut Observer) -> SchedCtx<'_> {
        SchedCtx {
            now: SimTime::ZERO,
            queue_depths: &[],
            runnable: 0,
            parked: 0,
            window: None,
            obs,
        }
    }

    #[test]
    fn each_demotion_doubles_the_slice_up_to_the_last_level() {
        let mut obs = Observer::counters_only();
        let mut p = Mlfq::new(SimDur::micros(5), 3);
        let t = task(9);
        assert_eq!(p.time_slice(&t, &mut ctx(&mut obs)), SimDur::micros(5));
        p.task_preempted(&t, SimDur::micros(5));
        assert_eq!(p.time_slice(&t, &mut ctx(&mut obs)), SimDur::micros(10));
        p.task_preempted(&t, SimDur::micros(10));
        assert_eq!(p.time_slice(&t, &mut ctx(&mut obs)), SimDur::micros(20));
        // Bottom level: no further demotion.
        p.task_preempted(&t, SimDur::micros(20));
        assert_eq!(p.time_slice(&t, &mut ctx(&mut obs)), SimDur::micros(20));
    }

    #[test]
    fn resume_key_orders_by_level_and_boost_resets_it() {
        let mut p = Mlfq::new(SimDur::micros(5), 4);
        let (hot, cold) = (task(1), task(2));
        p.task_preempted(&cold, SimDur::micros(5));
        p.task_preempted(&cold, SimDur::micros(10));
        p.task_preempted(&hot, SimDur::micros(5));
        assert!(p.resume_key(&hot) < p.resume_key(&cold));
        p.on_window(&WindowSummary {
            load_rps: 0.0,
            throughput_rps: 0.0,
            median_ns: 0,
            p99_ns: 0,
            mean_qlen: 0.0,
            completed: 0,
            arrived: 0,
            service_scv: 0.0,
        });
        assert_eq!(p.resume_key(&cold), 0, "boost forgives demotions");
    }

    #[test]
    fn finished_tasks_leave_no_state_behind() {
        let mut p = Mlfq::new(SimDur::micros(5), 3);
        let t = task(3);
        p.task_preempted(&t, SimDur::micros(5));
        assert_eq!(p.level.len(), 1);
        p.task_finished(&t);
        assert!(p.level.is_empty());
    }
}
