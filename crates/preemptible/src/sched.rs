//! The sched_ext-shaped scheduling-policy surface.
//!
//! [`SchedPolicy`] is the full policy contract the runtime drives:
//! per-CPU placement ([`SchedPolicy::select_cpu`]), queue-shape control
//! ([`SchedPolicy::enqueue`]), next-task choice
//! ([`SchedPolicy::dispatch`]) and a per-task time slice
//! ([`SchedPolicy::time_slice`]), mirroring the hook set popularized by
//! sched_ext's `scx_rustland_core` (paper §III-C: mechanism in the
//! runtime, policy in a small user module). Every hook receives a
//! [`SchedCtx`] exposing read-only runtime state — per-worker queue
//! depths, the last control-window summary, the simulated clock — plus
//! the typed [`Observer`] so policies can emit
//! events and bump gauges without side channels.
//!
//! The original, narrower [`Policy`] trait stays as the compatibility
//! surface: a blanket adapter maps any `Policy` onto `SchedPolicy` with
//! *byte-identical* behavior (same decision sequence, no extra RNG
//! draws or cost charges), so all pre-existing call sites and pinned
//! figure numbers are preserved verbatim.
//!
//! Authoring guidance — hook ordering, determinism rules, worked
//! examples — lives in `docs/POLICIES.md`. Ready-made policies live in
//! [`crate::policies`].

use lp_sim::obs::Observer;
use lp_sim::{SimDur, SimTime};
use lp_stats::WindowSummary;

use crate::policy::{NextTask, Policy, ResumeOrder};

/// Read-only snapshot of one runnable or parked task, handed to policy
/// hooks. Copied out of the runtime's context pool — policies never see
/// (or mutate) live runtime state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskView {
    /// Globally unique request number (monotonic per run). Use this —
    /// not `fiber` — to key per-task policy state: fiber slots are
    /// recycled, request numbers never are.
    pub request: u64,
    /// Fiber slot index currently hosting the task (recycled).
    pub fiber: u32,
    /// Arrival time at the dispatcher.
    pub arrived: SimTime,
    /// Service time still to run (oracle knowledge; see POLICIES.md on
    /// which policies may consult it).
    pub remaining: SimDur,
    /// Total service demand of the request.
    pub total: SimDur,
    /// Times this task has been preempted so far.
    pub preemptions: u32,
    /// Workload class tag (0 = latency-critical by convention).
    pub class: u8,
}

/// Read-only runtime state offered to every [`SchedPolicy`] hook, plus
/// mutable access to the typed observability layer.
///
/// Everything here is derived from simulation state — never from wall
/// clocks — so consulting it keeps a policy deterministic.
pub struct SchedCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Per-worker local queue depths, indexed by worker id.
    pub queue_depths: &'a [usize],
    /// New (never-started) requests visible to the calling hook: for
    /// `dispatch` this is the calling worker's own queue plus, when
    /// that queue is empty and stealing is on, the longest sibling
    /// queue; for `select_cpu`/`enqueue`/`time_slice` it is the total
    /// queued across workers.
    pub runnable: usize,
    /// Preempted-and-parked tasks waiting to be resumed.
    pub parked: usize,
    /// The most recent control-window summary, if a window has closed.
    pub window: Option<&'a WindowSummary>,
    /// Typed observability: emit events, bump counters and gauges.
    /// Emissions are passive — they never perturb the schedule.
    pub obs: &'a mut Observer,
}

impl SchedCtx<'_> {
    /// Total tasks queued across every worker's local queue — the same
    /// aggregate the admission gate reads (minus the dispatcher
    /// backlog, which policies never see). Overload-aware policies use
    /// it to cheapen decisions while the system sheds.
    pub fn total_queued(&self) -> usize {
        self.queue_depths.iter().sum()
    }
}

/// Where [`SchedPolicy::enqueue`] places a newly dispatched task in its
/// worker's local queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Append at the tail (default FIFO order).
    Back,
    /// Push at the head (expedite; used by priority policies).
    Front,
}

/// How a parked task is selected when [`Dispatch::Parked`] is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeSel {
    /// Oldest parked first (arrival order).
    Fifo,
    /// Shortest remaining processing time first (oracle knowledge).
    Srpt,
    /// Minimum of [`SchedPolicy::resume_key`]; ties break oldest-first.
    MinKey,
}

/// What an idle worker should run next, returned by
/// [`SchedPolicy::dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Pull a new request from the local queue (or steal one).
    New,
    /// Resume a preempted task, chosen per the [`ResumeSel`].
    Parked(ResumeSel),
    /// Run nothing; the worker idles until the next dispatch or pick.
    Idle,
}

/// The full scheduling-policy contract: placement, queueing, next-task
/// choice and time slicing, with lifecycle and control-window hooks.
///
/// Determinism rules (enforced by `lp-check`'s `policy-purity` rule for
/// the in-tree zoo): no wall clocks, no ad-hoc RNG seeding, no
/// environment reads — every decision must be a pure function of the
/// hook arguments and the policy's own state. See `docs/POLICIES.md`.
pub trait SchedPolicy {
    /// Stable display name, used in reports and leaderboards.
    fn name(&self) -> &'static str;

    /// Pick the worker whose local queue receives a newly dispatched
    /// task. Return `None` (the default) for the runtime's
    /// join-shortest-queue placement; out-of-range indices also fall
    /// back to JSQ.
    fn select_cpu(&mut self, task: &TaskView, ctx: &mut SchedCtx<'_>) -> Option<usize> {
        let _ = (task, ctx);
        None
    }

    /// Where in the chosen worker's local queue the task lands.
    fn enqueue(&mut self, task: &TaskView, ctx: &mut SchedCtx<'_>) -> Enqueue {
        let _ = (task, ctx);
        Enqueue::Back
    }

    /// What worker `cpu` runs next, consulted whenever it goes looking
    /// for work (after a finish, a preemption, or new arrivals while
    /// idle).
    fn dispatch(&mut self, cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch;

    /// Time slice granted to `task` as it starts (or resumes) on a
    /// worker. [`SimDur::MAX`] means run-to-completion.
    fn time_slice(&mut self, task: &TaskView, ctx: &mut SchedCtx<'_>) -> SimDur;

    /// Ordering key for [`ResumeSel::MinKey`]: the parked task with the
    /// smallest key is resumed first, ties oldest-first. The default
    /// reproduces FIFO.
    fn resume_key(&self, task: &TaskView) -> u64 {
        task.arrived.as_nanos()
    }

    /// The representative quantum the reporting layer records for
    /// `class` (time-series samples and `RunReport::final_quantum`).
    /// Policies with per-task slices should report their base slice.
    fn quantum_hint(&self, class: u8) -> SimDur;

    /// Called after `task` was preempted and parked, having run for
    /// `ran` in this slice. Runs before the worker's next dispatch.
    fn task_preempted(&mut self, task: &TaskView, ran: SimDur) {
        let _ = (task, ran);
    }

    /// Called after `task` completed and its fiber was released. Drop
    /// any per-task state keyed by `task.request` here.
    fn task_finished(&mut self, task: &TaskView) {
        let _ = task;
    }

    /// Control-window hook without observability access.
    fn on_window(&mut self, summary: &WindowSummary) {
        let _ = summary;
    }

    /// Control-window hook with observability access; the default
    /// delegates to [`SchedPolicy::on_window`].
    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        let _ = (at, obs);
        self.on_window(summary);
    }
}

/// Blanket adapter: every legacy [`Policy`] is a [`SchedPolicy`] with
/// byte-identical behavior. `?Sized` makes `Box<dyn Policy>` itself a
/// `SchedPolicy`, so pre-existing trait objects keep working.
impl<P: Policy + ?Sized> SchedPolicy for P {
    fn name(&self) -> &'static str {
        Policy::name(self)
    }

    fn dispatch(&mut self, _cpu: usize, ctx: &mut SchedCtx<'_>) -> Dispatch {
        match self.next_task(ctx.runnable, ctx.parked) {
            NextTask::New => Dispatch::New,
            NextTask::Preempted => Dispatch::Parked(match self.resume_order() {
                ResumeOrder::Fifo => ResumeSel::Fifo,
                ResumeOrder::Srpt => ResumeSel::Srpt,
            }),
            NextTask::Idle => Dispatch::Idle,
        }
    }

    fn time_slice(&mut self, task: &TaskView, _ctx: &mut SchedCtx<'_>) -> SimDur {
        self.quantum(task.class)
    }

    fn quantum_hint(&self, class: u8) -> SimDur {
        self.quantum(class)
    }

    fn on_window(&mut self, summary: &WindowSummary) {
        Policy::on_window(self, summary);
    }

    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        Policy::on_window_observed(self, summary, at, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FcfsPreempt, NonPreemptive, RoundRobin, SrptOracle};

    fn ctx<'a>(
        depths: &'a [usize],
        runnable: usize,
        parked: usize,
        obs: &'a mut Observer,
    ) -> SchedCtx<'a> {
        SchedCtx {
            now: SimTime::ZERO,
            queue_depths: depths,
            runnable,
            parked,
            window: None,
            obs,
        }
    }

    fn task() -> TaskView {
        TaskView {
            request: 7,
            fiber: 0,
            arrived: SimTime::ZERO,
            remaining: SimDur::micros(5),
            total: SimDur::micros(5),
            preemptions: 0,
            class: 0,
        }
    }

    #[test]
    fn legacy_adapter_maps_next_task_onto_dispatch() {
        let mut obs = Observer::counters_only();
        let mut p: Box<dyn Policy> = Box::new(FcfsPreempt::fixed(SimDur::micros(10)));
        // New-first when something is queued.
        let d = SchedPolicy::dispatch(&mut *p, 0, &mut ctx(&[1, 0], 1, 3, &mut obs));
        assert_eq!(d, Dispatch::New);
        // Parked FIFO when only parked work exists.
        let d = SchedPolicy::dispatch(&mut *p, 0, &mut ctx(&[0, 0], 0, 3, &mut obs));
        assert_eq!(d, Dispatch::Parked(ResumeSel::Fifo));
        // Nothing at all → idle.
        let d = SchedPolicy::dispatch(&mut *p, 0, &mut ctx(&[0, 0], 0, 0, &mut obs));
        assert_eq!(d, Dispatch::Idle);
    }

    #[test]
    fn legacy_adapter_preserves_resume_order_and_quantum() {
        let mut obs = Observer::counters_only();
        let mut srpt = SrptOracle::fixed(SimDur::micros(4));
        let d = SchedPolicy::dispatch(&mut srpt, 0, &mut ctx(&[0], 0, 2, &mut obs));
        assert_eq!(d, Dispatch::Parked(ResumeSel::Srpt));
        let q = SchedPolicy::time_slice(&mut srpt, &task(), &mut ctx(&[0], 0, 0, &mut obs));
        assert_eq!(q, SimDur::micros(4));
        assert_eq!(SchedPolicy::quantum_hint(&srpt, 0), SimDur::micros(4));
        assert_eq!(SchedPolicy::quantum_hint(&NonPreemptive, 0), SimDur::MAX);
    }

    #[test]
    fn legacy_adapter_defaults_placement_and_queueing() {
        let mut obs = Observer::counters_only();
        let mut rr = RoundRobin::fixed(SimDur::micros(10));
        let sel = SchedPolicy::select_cpu(&mut rr, &task(), &mut ctx(&[3, 1], 4, 0, &mut obs));
        assert_eq!(sel, None, "legacy policies keep JSQ placement");
        let e = SchedPolicy::enqueue(&mut rr, &task(), &mut ctx(&[3, 1], 4, 0, &mut obs));
        assert_eq!(e, Enqueue::Back);
        assert_eq!(SchedPolicy::name(&rr), "round-robin");
    }

    #[test]
    fn default_resume_key_is_arrival_order() {
        let mut a = task();
        a.arrived = SimTime::from_nanos(100);
        let mut b = task();
        b.arrived = SimTime::from_nanos(200);
        let rr = RoundRobin::fixed(SimDur::micros(10));
        assert!(SchedPolicy::resume_key(&rr, &a) < SchedPolicy::resume_key(&rr, &b));
    }
}
