//! Scheduling policies (§III-C: separation of mechanism and policy).
//!
//! The runtime provides the *mechanism* — queues, contexts, deadlines,
//! user interrupts. What runs next and for how long is a [`Policy`],
//! the abstraction the paper argues applications should own. The paper's
//! evaluated policies are provided; users plug in their own by
//! implementing the trait (see the `custom_policy` example).

use lp_sim::obs::Observer;
use lp_sim::{SimDur, SimTime};
use lp_stats::WindowSummary;

use crate::adaptive::QuantumController;

/// What an idle worker should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextTask {
    /// Pop the oldest new request from the local queue.
    New,
    /// Resume a preempted function from the global running list.
    Preempted,
    /// Nothing runnable.
    Idle,
}

/// How preempted functions are picked from the running list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeOrder {
    /// Oldest first (the paper's default).
    Fifo,
    /// Shortest remaining work first (oracle SRPT).
    Srpt,
}

/// Where the time quantum comes from.
#[derive(Debug, Clone)]
pub enum QuantumSource {
    /// A fixed quantum; [`SimDur::MAX`] disables preemption.
    Fixed(SimDur),
    /// Algorithm 1's adaptive controller.
    Adaptive(QuantumController),
}

impl QuantumSource {
    /// The current quantum.
    pub fn quantum(&self) -> SimDur {
        match self {
            QuantumSource::Fixed(q) => *q,
            QuantumSource::Adaptive(c) => c.quantum(),
        }
    }

    /// Feeds a control-window summary (no-op for fixed quanta).
    pub fn on_window(&mut self, s: &WindowSummary) {
        if let QuantumSource::Adaptive(c) = self {
            c.update(s);
        }
    }

    /// [`on_window`](Self::on_window), emitting a `quantum_adjusted`
    /// event when the adaptive controller moves the quantum.
    pub fn on_window_observed(&mut self, s: &WindowSummary, at: SimTime, obs: &mut Observer) {
        if let QuantumSource::Adaptive(c) = self {
            c.update_observed(s, at, obs);
        }
    }
}

/// A user-level scheduling policy.
///
/// Implementations decide (a) what an idle worker runs next and (b) the
/// time slice granted per launch/resume, optionally per workload class
/// (the colocation experiments give LC and BE different treatment).
pub trait Policy {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Decides the next task for an idle worker given the number of
    /// waiting new requests and parked preempted functions.
    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask;

    /// The time slice for a task of workload `class` about to run.
    fn quantum(&self, class: u8) -> SimDur;

    /// Resume ordering for preempted functions.
    fn resume_order(&self) -> ResumeOrder {
        ResumeOrder::Fifo
    }

    /// Receives the per-control-period window summary (adaptive
    /// policies adjust their quantum here).
    fn on_window(&mut self, _summary: &WindowSummary) {}

    /// Observability-threaded variant of [`on_window`](Self::on_window):
    /// policies with an adaptive quantum emit `quantum_adjusted` events
    /// through `obs`. The default delegates to `on_window`, so plain
    /// policies need not care.
    fn on_window_observed(&mut self, summary: &WindowSummary, _at: SimTime, _obs: &mut Observer) {
        self.on_window(summary);
    }
}

/// Centralized FCFS with preemption (the paper's headline policy):
/// new requests take priority; preempted long requests resume only when
/// no new request waits, receiving quantum-at-a-time service.
#[derive(Debug, Clone)]
pub struct FcfsPreempt {
    quantum: QuantumSource,
}

impl FcfsPreempt {
    /// With a fixed quantum.
    pub fn fixed(quantum: SimDur) -> Self {
        FcfsPreempt {
            quantum: QuantumSource::Fixed(quantum),
        }
    }

    /// With Algorithm 1's adaptive quantum.
    pub fn adaptive(controller: QuantumController) -> Self {
        FcfsPreempt {
            quantum: QuantumSource::Adaptive(controller),
        }
    }
}

impl Policy for FcfsPreempt {
    fn name(&self) -> &'static str {
        match self.quantum {
            QuantumSource::Fixed(_) => "cFCFS-P (fixed)",
            QuantumSource::Adaptive(_) => "cFCFS-P (adaptive)",
        }
    }

    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask {
        if new_waiting > 0 {
            NextTask::New
        } else if preempted_waiting > 0 {
            NextTask::Preempted
        } else {
            NextTask::Idle
        }
    }

    fn quantum(&self, _class: u8) -> SimDur {
        self.quantum.quantum()
    }

    fn on_window(&mut self, summary: &WindowSummary) {
        self.quantum.on_window(summary);
    }

    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        self.quantum.on_window_observed(summary, at, obs);
    }
}

/// Round-robin: new and preempted work alternate, approximating
/// processor sharing as the quantum shrinks.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    quantum: QuantumSource,
    prefer_preempted: bool,
}

impl RoundRobin {
    /// With a fixed quantum.
    pub fn fixed(quantum: SimDur) -> Self {
        RoundRobin {
            quantum: QuantumSource::Fixed(quantum),
            prefer_preempted: false,
        }
    }
}

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask {
        let choice = match (new_waiting > 0, preempted_waiting > 0) {
            (false, false) => NextTask::Idle,
            (true, false) => NextTask::New,
            (false, true) => NextTask::Preempted,
            (true, true) => {
                if self.prefer_preempted {
                    NextTask::Preempted
                } else {
                    NextTask::New
                }
            }
        };
        if choice != NextTask::Idle {
            self.prefer_preempted = !self.prefer_preempted;
        }
        choice
    }

    fn quantum(&self, _class: u8) -> SimDur {
        self.quantum.quantum()
    }

    fn on_window(&mut self, summary: &WindowSummary) {
        self.quantum.on_window(summary);
    }

    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        self.quantum.on_window_observed(summary, at, obs);
    }
}

/// Oracle SRPT: resumes the preempted function with the least remaining
/// work and prefers resuming short leftovers over starting new work.
/// Unrealizable in practice (§I: service times are unknown upfront) —
/// included as the upper-bound comparator.
#[derive(Debug, Clone)]
pub struct SrptOracle {
    quantum: QuantumSource,
}

impl SrptOracle {
    /// With a fixed quantum.
    pub fn fixed(quantum: SimDur) -> Self {
        SrptOracle {
            quantum: QuantumSource::Fixed(quantum),
        }
    }
}

impl Policy for SrptOracle {
    fn name(&self) -> &'static str {
        "SRPT (oracle)"
    }

    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask {
        // New requests first: an unstarted request might be tiny, and
        // under the paper's bimodal mixes most are.
        if new_waiting > 0 {
            NextTask::New
        } else if preempted_waiting > 0 {
            NextTask::Preempted
        } else {
            NextTask::Idle
        }
    }

    fn quantum(&self, _class: u8) -> SimDur {
        self.quantum.quantum()
    }

    fn resume_order(&self) -> ResumeOrder {
        ResumeOrder::Srpt
    }

    fn on_window(&mut self, summary: &WindowSummary) {
        self.quantum.on_window(summary);
    }

    fn on_window_observed(&mut self, summary: &WindowSummary, at: SimTime, obs: &mut Observer) {
        self.quantum.on_window_observed(summary, at, obs);
    }
}

/// Non-preemptive FCFS (run-to-completion) — the `LC-Base` baseline of
/// Fig. 13 and the "0 us time quantum" point of Fig. 2.
#[derive(Debug, Clone, Default)]
pub struct NonPreemptive;

impl Policy for NonPreemptive {
    fn name(&self) -> &'static str {
        "FCFS (non-preemptive)"
    }

    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask {
        if new_waiting > 0 {
            NextTask::New
        } else if preempted_waiting > 0 {
            // Unreachable in practice (nothing is ever preempted), but
            // drain defensively.
            NextTask::Preempted
        } else {
            NextTask::Idle
        }
    }

    fn quantum(&self, _class: u8) -> SimDur {
        SimDur::MAX
    }
}

/// Per-class quanta: LC requests get `lc_quantum`, BE requests
/// `be_quantum` (Fig. 13-right's "variable time quantum" study).
#[derive(Debug, Clone)]
pub struct ClassQuantum {
    /// Quantum for class 0 (latency-critical).
    pub lc_quantum: SimDur,
    /// Quantum for class 1+ (best-effort).
    pub be_quantum: SimDur,
}

impl Policy for ClassQuantum {
    fn name(&self) -> &'static str {
        "cFCFS-P (per-class quantum)"
    }

    fn next_task(&mut self, new_waiting: usize, preempted_waiting: usize) -> NextTask {
        if new_waiting > 0 {
            NextTask::New
        } else if preempted_waiting > 0 {
            NextTask::Preempted
        } else {
            NextTask::Idle
        }
    }

    fn quantum(&self, class: u8) -> SimDur {
        if class == 0 {
            self.lc_quantum
        } else {
            self.be_quantum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveConfig;

    #[test]
    fn fcfs_prefers_new_work() {
        let mut p = FcfsPreempt::fixed(SimDur::micros(30));
        assert_eq!(p.next_task(3, 5), NextTask::New);
        assert_eq!(p.next_task(0, 5), NextTask::Preempted);
        assert_eq!(p.next_task(0, 0), NextTask::Idle);
        assert_eq!(p.quantum(0), SimDur::micros(30));
        assert_eq!(p.resume_order(), ResumeOrder::Fifo);
    }

    #[test]
    fn round_robin_alternates() {
        let mut p = RoundRobin::fixed(SimDur::micros(5));
        assert_eq!(p.next_task(1, 1), NextTask::New);
        assert_eq!(p.next_task(1, 1), NextTask::Preempted);
        assert_eq!(p.next_task(1, 1), NextTask::New);
        // Idle doesn't flip the toggle.
        assert_eq!(p.next_task(0, 0), NextTask::Idle);
        assert_eq!(p.next_task(1, 1), NextTask::Preempted);
    }

    #[test]
    fn srpt_uses_srpt_resume_order() {
        let p = SrptOracle::fixed(SimDur::micros(5));
        assert_eq!(p.resume_order(), ResumeOrder::Srpt);
    }

    #[test]
    fn nonpreemptive_quantum_is_infinite() {
        let p = NonPreemptive;
        assert_eq!(p.quantum(0), SimDur::MAX);
    }

    #[test]
    fn class_quantum_discriminates() {
        let p = ClassQuantum {
            lc_quantum: SimDur::micros(30),
            be_quantum: SimDur::micros(100),
        };
        assert_eq!(p.quantum(0), SimDur::micros(30));
        assert_eq!(p.quantum(1), SimDur::micros(100));
    }

    #[test]
    fn adaptive_policy_tracks_controller() {
        let ctl = QuantumController::new(
            AdaptiveConfig::paper_defaults(100_000.0),
            SimDur::micros(30),
        );
        let mut p = FcfsPreempt::adaptive(ctl);
        assert_eq!(p.quantum(0), SimDur::micros(30));
        // Heavy-tailed window shrinks it.
        p.on_window(&WindowSummary {
            load_rps: 95_000.0,
            throughput_rps: 90_000.0,
            median_ns: 1_000,
            p99_ns: 500_000,
            mean_qlen: 10.0,
            completed: 1,
            arrived: 1,
            service_scv: 140.0,
        });
        assert!(p.quantum(0) < SimDur::micros(30));
        assert_eq!(p.name(), "cFCFS-P (adaptive)");
    }
}
