//! Context management (§IV-B).
//!
//! The paper customizes the `fcontext` library: each request runs on a
//! lightweight context (saved registers, signal mask, stack pointer,
//! resume link) drawn from a **global memory pool**. Finished contexts
//! return to a global *free list*; preempted contexts go to a global
//! *wait/running list* together with their state. We reproduce that
//! object lifecycle exactly — it is the part of the system a real UINTR
//! port would keep verbatim — with the machine state replaced by the
//! simulation's per-request progress.

use lp_sim::{SimDur, SimTime};

/// Identifies a context object inside its [`ContextPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(usize);

impl ContextId {
    /// Raw pool index (stable for the context's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The saved state of one preemptible function.
///
/// In the C implementation this is the fcontext machine frame plus
/// request metadata; in the simulation it is the request's identity and
/// remaining work.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// The request occupying this context.
    pub request: u64,
    /// When the request arrived (for end-to-end latency).
    pub arrived: SimTime,
    /// Work still to execute.
    pub remaining: SimDur,
    /// Total work the request needs (fixed at launch).
    pub total: SimDur,
    /// Number of times this function has been preempted.
    pub preemptions: u32,
    /// Workload class tag (0 = default / LC, 1 = BE, ...).
    pub class: u8,
}

impl Context {
    /// `true` once the remaining work is zero.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_zero()
    }
}

/// Lifecycle state of each pool slot (enforced, not assumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    /// Attached to a running function.
    Active,
    /// Preempted and parked on the running list.
    Parked,
}

/// The global context pool with free and running (preempted) lists.
///
/// Invariants (checked in debug builds and by the property tests):
///
/// * every slot is exactly one of free / active / parked;
/// * the free list and running list are disjoint;
/// * `free() + active() + parked() == capacity_in_use()`.
///
/// ```
/// use libpreemptible::context::{Context, ContextPool};
/// use lp_sim::{SimDur, SimTime};
///
/// let mut pool = ContextPool::with_capacity(64);
/// let id = pool
///     .allocate(1, SimTime::ZERO, SimDur::micros(10), 0)
///     .expect("pool has room");
/// pool.park(id); // preempted
/// let resumed = pool.take_parked().expect("one parked context");
/// assert_eq!(resumed, id);
/// pool.release(id); // completed
/// assert_eq!(pool.free(), 64);
/// ```
#[derive(Debug)]
pub struct ContextPool {
    slots: Vec<Context>,
    states: Vec<SlotState>,
    free_list: Vec<ContextId>,
    /// Global "running list" of preempted functions, FIFO.
    running_list: std::collections::VecDeque<ContextId>,
    capacity: usize,
    /// High-water mark of simultaneously live contexts.
    peak_live: usize,
}

/// Error returned when the pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted;

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "context pool exhausted")
    }
}
impl std::error::Error for PoolExhausted {}

impl ContextPool {
    /// Creates a pool bounded at `capacity` contexts (the application
    /// "can define the size of this pool").
    pub fn with_capacity(capacity: usize) -> Self {
        ContextPool {
            slots: Vec::new(),
            states: Vec::new(),
            free_list: Vec::new(),
            running_list: std::collections::VecDeque::new(),
            capacity,
            peak_live: 0,
        }
    }

    /// Allocates a context for a new request (`fn_launch`'s allocation
    /// half).
    ///
    /// # Errors
    ///
    /// Returns [`PoolExhausted`] when `capacity` contexts are live.
    pub fn allocate(
        &mut self,
        request: u64,
        arrived: SimTime,
        work: SimDur,
        class: u8,
    ) -> Result<ContextId, PoolExhausted> {
        let id = if let Some(id) = self.free_list.pop() {
            debug_assert_eq!(self.states[id.0], SlotState::Free);
            self.slots[id.0] = Context {
                request,
                arrived,
                remaining: work,
                total: work,
                preemptions: 0,
                class,
            };
            id
        } else {
            if self.slots.len() >= self.capacity {
                return Err(PoolExhausted);
            }
            self.slots.push(Context {
                request,
                arrived,
                remaining: work,
                total: work,
                preemptions: 0,
                class,
            });
            self.states.push(SlotState::Free);
            ContextId(self.slots.len() - 1)
        };
        self.states[id.0] = SlotState::Active;
        self.peak_live = self.peak_live.max(self.live());
        Ok(id)
    }

    /// Parks an active context on the global running list (preemption).
    ///
    /// # Panics
    ///
    /// Panics if the context is not active.
    pub fn park(&mut self, id: ContextId) {
        assert_eq!(
            self.states[id.0],
            SlotState::Active,
            "parking a non-active context"
        );
        self.states[id.0] = SlotState::Parked;
        self.slots[id.0].preemptions += 1;
        self.running_list.push_back(id);
    }

    /// Takes the oldest parked context for resumption (`fn_resume`'s
    /// source).
    pub fn take_parked(&mut self) -> Option<ContextId> {
        let id = self.running_list.pop_front()?;
        debug_assert_eq!(self.states[id.0], SlotState::Parked);
        self.states[id.0] = SlotState::Active;
        Some(id)
    }

    /// Takes the parked context at position `pos` of the parked list
    /// (positions as yielded by [`ContextPool::iter_parked`]); used by
    /// policies that order resumes with their own key.
    pub fn take_parked_at(&mut self, pos: usize) -> Option<ContextId> {
        let id = self.running_list.remove(pos)?;
        debug_assert_eq!(self.states[id.0], SlotState::Parked);
        self.states[id.0] = SlotState::Active;
        Some(id)
    }

    /// Takes the parked context with the smallest remaining work
    /// (used by the SRPT policy).
    pub fn take_parked_srpt(&mut self) -> Option<ContextId> {
        let (pos, _) = self
            .running_list
            .iter()
            .enumerate()
            .min_by_key(|(_, id)| self.slots[id.0].remaining)?;
        let id = self.running_list.remove(pos).expect("index in range");
        self.states[id.0] = SlotState::Active;
        Some(id)
    }

    /// Returns a completed context to the free list (`fn_completed` →
    /// reuse).
    ///
    /// # Panics
    ///
    /// Panics if the context is not active (double release or release
    /// of a parked context without resuming it first).
    pub fn release(&mut self, id: ContextId) {
        assert_eq!(
            self.states[id.0],
            SlotState::Active,
            "releasing a non-active context"
        );
        self.states[id.0] = SlotState::Free;
        self.free_list.push(id);
    }

    /// Shared access to a context's state.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn get(&self, id: ContextId) -> &Context {
        assert_ne!(self.states[id.0], SlotState::Free, "access to freed context");
        &self.slots[id.0]
    }

    /// Exclusive access to a context's state.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn get_mut(&mut self, id: ContextId) -> &mut Context {
        assert_ne!(self.states[id.0], SlotState::Free, "access to freed context");
        &mut self.slots[id.0]
    }

    /// Number of contexts on the free list plus never-allocated
    /// headroom.
    pub fn free(&self) -> usize {
        self.capacity - self.live()
    }

    /// Currently live (active + parked) contexts.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free_list.len()
    }

    /// Contexts parked on the running list.
    pub fn parked(&self) -> usize {
        self.running_list.len()
    }

    /// High-water mark of live contexts (pool sizing guidance).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over parked contexts (oldest first) without removing.
    pub fn iter_parked(&self) -> impl Iterator<Item = (ContextId, &Context)> + '_ {
        self.running_list.iter().map(move |&id| (id, &self.slots[id.0]))
    }

    /// Earliest arrival time among live (active or parked) contexts,
    /// or `None` when the pool is idle. At the end of a run this is
    /// the oldest request the system failed to finish — a lower bound
    /// on the true worst-case response that the completed-latency
    /// histogram censors.
    pub fn oldest_live_arrival(&self) -> Option<SimTime> {
        self.slots
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| **s != SlotState::Free)
            .map(|(c, _)| c.arrived)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ContextPool {
        ContextPool::with_capacity(4)
    }

    fn alloc(p: &mut ContextPool, req: u64) -> ContextId {
        p.allocate(req, SimTime::ZERO, SimDur::micros(req + 1), 0)
            .expect("capacity")
    }

    #[test]
    fn allocate_park_resume_release_cycle() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        assert_eq!(p.live(), 1);
        p.park(a);
        assert_eq!(p.parked(), 1);
        let back = p.take_parked().unwrap();
        assert_eq!(back, a);
        assert_eq!(p.get(a).preemptions, 1);
        p.release(a);
        assert_eq!(p.live(), 0);
        assert_eq!(p.free(), 4);
    }

    #[test]
    fn pool_exhaustion() {
        let mut p = pool();
        for i in 0..4 {
            alloc(&mut p, i);
        }
        assert_eq!(
            p.allocate(99, SimTime::ZERO, SimDur::micros(1), 0),
            Err(PoolExhausted)
        );
    }

    #[test]
    fn freed_contexts_are_reused() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        p.release(a);
        let b = alloc(&mut p, 2);
        assert_eq!(a, b, "slot must be recycled");
        assert_eq!(p.get(b).request, 2);
        assert_eq!(p.get(b).preemptions, 0, "recycled slot must be reset");
    }

    #[test]
    fn fifo_running_list() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        let b = alloc(&mut p, 2);
        p.park(a);
        p.park(b);
        assert_eq!(p.take_parked(), Some(a));
        assert_eq!(p.take_parked(), Some(b));
        assert_eq!(p.take_parked(), None);
    }

    #[test]
    fn srpt_takes_shortest_remaining() {
        let mut p = pool();
        let a = alloc(&mut p, 1); // work 2us
        let b = alloc(&mut p, 9); // work 10us
        p.get_mut(a).remaining = SimDur::micros(8);
        p.get_mut(b).remaining = SimDur::micros(3);
        p.park(a);
        p.park(b);
        assert_eq!(p.take_parked_srpt(), Some(b));
        assert_eq!(p.take_parked_srpt(), Some(a));
    }

    #[test]
    #[should_panic(expected = "releasing a non-active context")]
    fn double_release_panics() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        p.release(a);
        p.release(a);
    }

    #[test]
    #[should_panic(expected = "parking a non-active context")]
    fn double_park_panics() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        p.park(a);
        p.park(a);
    }

    #[test]
    #[should_panic(expected = "access to freed context")]
    fn use_after_free_panics() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        p.release(a);
        let _ = p.get(a);
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut p = pool();
        let a = alloc(&mut p, 1);
        let _b = alloc(&mut p, 2);
        p.release(a);
        let _c = alloc(&mut p, 3);
        assert_eq!(p.peak_live(), 2);
    }

    #[test]
    fn iter_parked_preserves_order() {
        let mut p = pool();
        let a = alloc(&mut p, 7);
        let b = alloc(&mut p, 8);
        p.park(b);
        p.park(a);
        let order: Vec<u64> = p.iter_parked().map(|(_, c)| c.request).collect();
        assert_eq!(order, vec![8, 7]);
    }
}
