//! The LibPreemptible runtime: the two-level scheduler of §III-F bound
//! to the simulated machine.
//!
//! Architecture (paper Figs. 5–6):
//!
//! * a **dispatcher** (network thread) receives requests and places them
//!   on per-worker local FIFO queues (join-shortest-queue);
//! * **workers** run requests on pooled contexts; when a request's
//!   deadline (quantum) expires, LibUtimer's timer core `SENDUIPI`s the
//!   worker, whose handler parks the context on the global running list
//!   and returns control to the local scheduler;
//! * the **timer core** polls the TSC against the registered deadline
//!   slots (simulated exactly, but without burning one event per poll
//!   iteration: the model computes the poll tick at which the scan would
//!   notice each armed deadline);
//! * every control period the window statistics roll up and the policy
//!   (possibly Algorithm 1's controller) adjusts the quantum.
//!
//! The same runtime runs all four preemption mechanisms of the paper's
//! comparison via [`PreemptMech`]: UINTR, the w/o-UINTR fallback
//! (Fig. 8's orange line), Libinger-style per-thread kernel timers, and
//! no preemption at all.

use std::collections::VecDeque;

use lp_hw::cpu::HogWindow;
use lp_hw::uintr::{ReceiverState, SendOutcome, UintrDomain, Uitt};
use lp_hw::{CoreClock, HwCosts, TimeClass};
use lp_kernel::{KernelCosts, KernelTimer, SignalPath};
use lp_sim::fault::{CoreFault, FaultInjector, FaultPlan, IpiFault, TimerFault};
use lp_sim::obs::{Event, Observer};
use lp_sim::rng::{rng, streams};
use lp_sim::{Ctx, EventId, Model, SimDur, SimTime, Simulation};
use lp_stats::{Histogram, TimeSeries, WindowStats, WindowSummary};
use lp_workload::{ArrivalGen, ColocatedWorkload, JobClass, PhasedService, RateSchedule};
use rand::rngs::SmallRng;

use crate::context::{Context, ContextId, ContextPool};
use crate::report::RunReport;
use crate::sched::{Dispatch, Enqueue, ResumeSel, SchedCtx, SchedPolicy, TaskView};
use crate::retry::{RetryInput, RetryMachine, RetryOutput, Tier, WatchdogConfig};
use crate::utimer::{SlotId, UtimerRegistry};

/// How workers get preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMech {
    /// LibUtimer + `SENDUIPI` (the paper's system).
    Uintr,
    /// LibUtimer's timer core, but delivery through kernel signals —
    /// the "disabled UINTR in LibUtimer" ablation of Fig. 8.
    TimerCoreSignal,
    /// Per-thread kernel timers + signals (the Libinger/libturquoise
    /// lineage): no timer core, but the kernel timer floor applies.
    KernelTimerSignal,
    /// No preemption (run to completion).
    None,
}

impl PreemptMech {
    /// `true` if a dedicated timer core is required.
    pub fn needs_timer_core(self) -> bool {
        matches!(self, PreemptMech::Uintr | PreemptMech::TimerCoreSignal)
    }
}

/// Where request classes and service times come from.
#[derive(Debug, Clone)]
pub enum ServiceSource {
    /// A (possibly time-phased) synthetic distribution; all requests
    /// are class 0.
    Phased(PhasedService),
    /// The §V-C colocation mix (class 0 = MICA LC, class 1 = zlib BE).
    Colocated(ColocatedWorkload),
}

impl ServiceSource {
    fn sample(&self, t: SimTime, rng: &mut SmallRng) -> (u8, SimDur) {
        match self {
            ServiceSource::Phased(p) => (0, p.sample(t, rng)),
            ServiceSource::Colocated(c) => {
                let (class, service) = c.sample(rng);
                let class = match class {
                    JobClass::LatencyCritical => 0,
                    JobClass::BestEffort => 1,
                };
                (class, service)
            }
        }
    }
}

/// The offered load and its duration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Request classes and service times.
    pub source: ServiceSource,
    /// Arrival rate over time.
    pub arrivals: RateSchedule,
    /// Hard stop: the simulation ends at this instant.
    pub duration: SimDur,
    /// Completions of requests that arrived before this instant are
    /// excluded from the latency statistics.
    pub warmup: SimDur,
}

/// Overload admission control (see `docs/CHAOS.md`).
///
/// When armed, the dispatcher consults the aggregate queue depth
/// before allocating a context: past [`queue_cap`](Self::queue_cap)
/// the request is shed outright, and while any worker's retry tier is
/// above healthy (brownout or degraded) the tighter
/// [`brownout_cap`](Self::brownout_cap) applies. Sheds count against
/// the run's drop total (arrival conservation holds) and emit the
/// typed [`Event::Shed`]; requests admitted *under pressure* emit
/// [`Event::Admitted`]. An armed-but-idle run — admission on, but no
/// queue ever past either cap and every worker healthy — is
/// byte-identical to a run with admission disabled.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Master switch; the default is disabled.
    pub enabled: bool,
    /// Hard cap on total backlogged requests (dispatcher backlog, all
    /// worker local queues, and parked — preempted but unfinished —
    /// fibers). At or past the cap, any class is shed.
    pub queue_cap: usize,
    /// Tighter cap applied while any worker's retry tier is above
    /// [`crate::retry::Tier::Healthy`]: brownout
    /// pressure sheds earlier to protect latency-critical work.
    pub brownout_cap: usize,
    /// Shed best-effort (class 1) early when the last control window's
    /// p99 exceeded the configured SLO and the queue is at least half
    /// the cap.
    pub slo_aware: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            queue_cap: 256,
            brownout_cap: 64,
            slo_aware: false,
        }
    }
}

/// Runtime configuration (machine + library parameters).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads, each pinned to its own core.
    pub workers: usize,
    /// Dedicated timer cores (paper: 1). Ignored unless the mechanism
    /// needs one.
    pub timer_cores: usize,
    /// Preemption mechanism.
    pub mech: PreemptMech,
    /// Hardware cost model.
    pub hw: HwCosts,
    /// Kernel cost model.
    pub kernel: KernelCosts,
    /// Context-pool capacity (requests beyond it are dropped).
    pub pool_capacity: usize,
    /// Dispatcher per-request processing cost.
    pub dispatch_cost: SimDur,
    /// Worker-side scheduling-decision cost per pick.
    pub pick_cost: SimDur,
    /// Allow idle workers to steal from the longest sibling queue.
    pub work_stealing: bool,
    /// Master seed; every stochastic component derives a substream.
    pub seed: u64,
    /// Window roll / controller invocation period.
    pub control_period: SimDur,
    /// Record time series at this frame width.
    pub series_frame: Option<SimDur>,
    /// Latency SLO for violation tracking.
    pub slo: Option<SimDur>,
    /// Keep the last N typed trace events (see `lp_sim::obs` and
    /// `docs/TRACING.md`). 0 disables the event ring; the metrics
    /// counters in [`RunReport::metrics`](crate::RunReport) are always
    /// collected.
    pub trace_capacity: usize,
    /// Tail attribution (per-phase latency accounting, always-on
    /// histograms, and p99 exemplars in
    /// [`RunReport::phases`](crate::RunReport::phases)). Ships enabled;
    /// the off switch exists only so `lp-bench` can measure the
    /// accountant's overhead (see `docs/TRACING.md`).
    pub attribution: bool,
    /// Fault-injection plan (see `lp_sim::fault` and `docs/FAULTS.md`).
    /// The default plan is disabled, in which case no injector is
    /// built, no watchdog events are scheduled, and the run is
    /// byte-identical to one without the fault subsystem.
    pub faults: FaultPlan,
    /// Lost-preemption watchdog parameters; consulted only when
    /// [`faults`](Self::faults) is enabled.
    pub watchdog: WatchdogConfig,
    /// Overload admission control; disabled by default. An armed but
    /// never-triggered admission gate leaves the run byte-identical to
    /// a run without it.
    pub admission: AdmissionConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            timer_cores: 1,
            mech: PreemptMech::Uintr,
            hw: HwCosts::default(),
            kernel: KernelCosts::default(),
            pool_capacity: 16_384,
            dispatch_cost: SimDur::nanos(180),
            pick_cost: SimDur::nanos(60),
            work_stealing: true,
            seed: 1,
            control_period: SimDur::millis(100),
            series_frame: None,
            slo: None,
            trace_capacity: 0,
            attribution: true,
            faults: FaultPlan::disabled(),
            watchdog: WatchdogConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Events of the runtime model. Public only because [`Model::Event`]
/// must name it; not part of the supported API.
#[doc(hidden)]
#[derive(Debug)]
pub enum Ev {
    /// Next request hits the network thread.
    Arrival,
    /// Dispatcher finished routing the head-of-line request.
    Dispatched,
    /// Worker `w` looks for its next task.
    Pick { worker: usize },
    /// The task started under `seq` on worker `w` runs to completion.
    Finish { worker: usize, seq: u64 },
    /// The timer core's poll loop reaches a tick with expired deadlines.
    TimerCheck,
    /// A per-thread kernel timer armed under `seq` expired.
    KtimerExpiry { worker: usize, seq: u64 },
    /// The preemption notification lands on worker `w`. `uintr` records
    /// whether it travelled the user-interrupt path (recovery probes
    /// need delivery-path attribution).
    PreemptArrive { worker: usize, seq: u64, uintr: bool },
    /// Control period boundary: roll stats, run the controller.
    ControlTick,
    /// A scheduled lost-preemption check, armed only for retry sends
    /// (attempt > 0): once a loss is detected the streak advances on
    /// the deterministic backoff cadence instead of waiting for the
    /// next organic event or scan tick. The healthy path (attempt 0)
    /// never schedules one, so a fault-free run stays event-identical
    /// to a run without the fault subsystem.
    WatchdogCheck,
}

#[derive(Debug)]
enum WState {
    Idle,
    Running {
        ctx: ContextId,
        class: u8,
        started: SimTime,
        finish_ev: EventId,
    },
}

/// Outcome of one admission-gate evaluation: shed or admit, plus the
/// aggregate queue depth the decision saw (exported on the event).
#[derive(Debug, Clone, Copy)]
struct AdmissionVerdict {
    shed: bool,
    queued: u32,
}

/// One armed lost-preemption deadline: the send issued for `seq`
/// (attempt `attempt`) must be observed landed by `at` or the watchdog
/// re-sends it. Kept per worker (the latest send wins) instead of as a
/// per-send event so the healthy path stays cheap.
#[derive(Debug, Clone, Copy)]
struct WdArm {
    at: SimTime,
    seq: u64,
    attempt: u32,
}

/// Per-worker record, 64-byte aligned so adjacent workers in the
/// `Vec<Worker>` never share a cache line (mirroring the per-worker
/// deadline-cacheline layout of §IV-A). Fields are ordered hot-first:
/// every dispatched event touches `state`/`seq`/`local`, while the
/// fault-injection machinery at the bottom is only read when faults
/// are enabled.
#[repr(align(64))]
struct Worker {
    // --- hot: touched by every Finish/Preempt/dispatch event ---
    state: WState,
    /// Monotonic run sequence; stale Finish/Preempt events are detected
    /// by comparing against this.
    seq: u64,
    local: VecDeque<ContextId>,
    slot: SlotId,
    uitt_index: usize,
    clock: CoreClock,
    // --- cold: kernel-timer fallback, fault-injection, and health ---
    ktimer: KernelTimer,
    /// Fault-injected stall window; preemption arrivals are deferred
    /// past it. Always closed when injection is disabled.
    hog: HogWindow,
    /// The retry/degrade/recover health machine (`retry.rs`). Every
    /// loss-streak, degradation, and probe transition goes through its
    /// typed `step` — raw writes are rejected by the
    /// `retry-transition` lint.
    retry: RetryMachine,
    /// The armed lost-preemption deadline, if injection is enabled and
    /// a send is outstanding. Observed by the throttled scan driven
    /// from the event loop (see [`Model::handle`]).
    wd: Option<WdArm>,
}

struct PendingReq {
    arrived: SimTime,
    class: u8,
    service: SimDur,
}

/// The simulation model. Use [`run`] rather than driving it manually.
pub struct LibPreemptibleSystem {
    cfg: RuntimeConfig,
    spec: WorkloadSpec,
    policy: Box<dyn SchedPolicy>,
    /// Scratch for per-worker queue depths handed to policy hooks
    /// (reused to keep the hot path allocation-free).
    depth_scratch: Vec<usize>,
    /// Last closed control window, exposed to policy hooks.
    last_window: Option<WindowSummary>,

    workers: Vec<Worker>,
    pool: ContextPool,
    registry: UtimerRegistry,
    uintr: UintrDomain,
    timer_uitt: Uitt,
    /// (worker, seq) the armed deadline of each slot belongs to.
    armed_for: Vec<Option<(usize, u64)>>,
    timer_check: Option<(SimTime, EventId)>,
    /// Next lost-preemption scan tick, in nanos (`u64::MAX` when
    /// injection is disabled). Checked with one compare at the top of
    /// every handled event; arming and settling deadlines are plain
    /// field stores, so the healthy path pays no per-send bookkeeping
    /// at all. A worker with an armed deadline is always `Running`, so
    /// its own `Finish` (at the latest) keeps events flowing until the
    /// scan runs.
    wd_scan_at: u64,
    /// Scan cadence (half the watchdog timeout): bounds detection
    /// lateness to `timeout * 1.5` after the send without making the
    /// scan rate scale with the send rate.
    wd_scan_period: u64,
    timer_clock: CoreClock,

    arrivals_gen: ArrivalGen,
    service_rng: SmallRng,
    hw_rng: SmallRng,
    signal_path: SignalPath,
    /// Present iff `cfg.faults.enabled()`; every fault decision in the
    /// run is sampled here and passed down to hw/kernel as data.
    injector: Option<FaultInjector>,

    dispatch_free_at: SimTime,
    dispatch_queue: VecDeque<PendingReq>,
    dispatcher_clock: CoreClock,
    rr_cursor: usize,

    /// Cross-layer typed event trace + metrics registry.
    obs: Observer,

    // Counters (whole run).
    arrivals: u64,
    completions: u64,
    dropped: u64,
    preemptions: u64,
    spurious: u64,

    // Post-warmup stats.
    window: WindowStats,
    latency: Histogram,
    latency_by_class: Vec<Histogram>,
    latency_series: Vec<TimeSeries>,
    qps_series: Option<TimeSeries>,
    quantum_series: Option<TimeSeries>,
    slo_series: Option<TimeSeries>,
}

const MAX_CLASSES: usize = 2;

/// Copies the policy-visible, read-only view out of a live context.
fn task_view(id: ContextId, c: &Context) -> TaskView {
    TaskView {
        request: c.request,
        fiber: id.index() as u32,
        arrived: c.arrived,
        remaining: c.remaining,
        total: c.total,
        preemptions: c.preemptions,
        class: c.class,
    }
}

impl LibPreemptibleSystem {
    fn new(cfg: RuntimeConfig, spec: WorkloadSpec, policy: Box<dyn SchedPolicy>) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let mut registry = UtimerRegistry::new();
        let mut uintr = UintrDomain::new();
        let mut timer_uitt = Uitt::new();
        let workers = (0..cfg.workers)
            .map(|_| {
                let slot = registry.register();
                let upid = uintr.register_receiver();
                // LibPreemptible's security posture (§VII-B): the only
                // UITT entries in the system connect the timer core to
                // the workers, vector 0 = "deadline expired".
                let uitt_index = timer_uitt.register(upid, 0);
                Worker {
                    state: WState::Idle,
                    local: VecDeque::new(),
                    slot,
                    uitt_index,
                    clock: CoreClock::new(),
                    seq: 0,
                    ktimer: KernelTimer::new(cfg.kernel.clone(), rng(cfg.seed, 100 + slot.index() as u64)),
                    hog: HogWindow::none(),
                    retry: RetryMachine::new(&cfg.watchdog),
                    wd: None,
                }
            })
            .collect();
        let series = |frame: Option<SimDur>| frame.map(|f| TimeSeries::new(f.as_nanos()));
        let armed_for = vec![None; cfg.workers];
        let mut obs = Observer::new(cfg.trace_capacity);
        obs.set_attribution_enabled(cfg.attribution);
        LibPreemptibleSystem {
            arrivals_gen: ArrivalGen::new(spec.arrivals.clone(), rng(cfg.seed, streams::ARRIVALS)),
            service_rng: rng(cfg.seed, streams::SERVICE),
            hw_rng: rng(cfg.seed, streams::HW_JITTER),
            signal_path: SignalPath::new(cfg.kernel.clone(), rng(cfg.seed, streams::KERNEL_JITTER)),
            injector: cfg
                .faults
                .enabled()
                .then(|| FaultInjector::new(cfg.faults.clone(), cfg.seed)),
            pool: ContextPool::with_capacity(cfg.pool_capacity),
            registry,
            uintr,
            timer_uitt,
            armed_for,
            timer_check: None,
            wd_scan_at: if cfg.faults.enabled() { 0 } else { u64::MAX },
            wd_scan_period: (cfg.watchdog.timeout.as_nanos() / 2).max(1),
            timer_clock: CoreClock::new(),
            dispatch_free_at: SimTime::ZERO,
            dispatch_queue: VecDeque::new(),
            dispatcher_clock: CoreClock::new(),
            rr_cursor: 0,
            obs,
            arrivals: 0,
            completions: 0,
            dropped: 0,
            preemptions: 0,
            spurious: 0,
            window: WindowStats::new(),
            latency: Histogram::new(),
            latency_by_class: (0..MAX_CLASSES).map(|_| Histogram::new()).collect(),
            latency_series: (0..MAX_CLASSES)
                .filter_map(|_| series(cfg.series_frame))
                .collect(),
            qps_series: series(cfg.series_frame),
            quantum_series: series(cfg.series_frame.or(Some(cfg.control_period))),
            slo_series: cfg.slo.and(series(cfg.series_frame)),
            depth_scratch: Vec::with_capacity(cfg.workers),
            last_window: None,
            workers,
            cfg,
            spec,
            policy,
        }
    }

    /// Refills `depth_scratch` with the current per-worker local queue
    /// depths (the read-only view policy hooks receive).
    fn fill_depths(&mut self) {
        self.depth_scratch.clear();
        self.depth_scratch.extend(self.workers.iter().map(|w| w.local.len()));
    }

    fn jitter(&mut self, base: SimDur) -> SimDur {
        lp_hw::jitter::sample(&mut self.hw_rng, base, self.cfg.hw.jitter_sigma)
    }

    fn past_warmup(&self, arrived: SimTime) -> bool {
        arrived >= SimTime::ZERO + self.spec.warmup
    }

    /// Picks the shortest local queue (ties broken by a rotating
    /// cursor so no worker is systematically favored).
    fn shortest_queue(&mut self) -> usize {
        let n = self.workers.len();
        let start = self.rr_cursor;
        self.rr_cursor = (self.rr_cursor + 1) % n;
        let mut best = start % n;
        for off in 1..n {
            let i = (start + off) % n;
            if self.workers[i].local.len() < self.workers[best].local.len() {
                best = i;
            }
        }
        best
    }

    /// Re-schedules the timer-core check for the earliest armed
    /// deadline, quantized up to the poll-loop granularity.
    fn update_timer_check(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if !self.cfg.mech.needs_timer_core() {
            return;
        }
        let desired = self.registry.next_deadline().map(|d| {
            let poll = self.cfg.hw.poll_loop.as_nanos();
            if poll == 0 {
                return d.max(ctx.now());
            }
            let ns = d.as_nanos();
            let ticked = ns.div_ceil(poll) * poll;
            SimTime::from_nanos(ticked).max(ctx.now())
        });
        match (desired, self.timer_check) {
            (None, Some((_, ev))) => {
                ctx.cancel(ev);
                self.timer_check = None;
            }
            (Some(t), Some((cur, ev))) if t < cur => {
                ctx.cancel(ev);
                let ev = ctx.at(t, Ev::TimerCheck);
                self.timer_check = Some((t, ev));
            }
            (Some(t), None) => {
                let ev = ctx.at(t, Ev::TimerCheck);
                self.timer_check = Some((t, ev));
            }
            _ => {}
        }
    }

    /// Arms the preemption deadline for a task starting at `start` with
    /// quantum `q`. Returns extra start-up cost charged to the worker
    /// (the kernel-timer path arms via syscall).
    fn arm_deadline(
        &mut self,
        worker: usize,
        start: SimTime,
        q: SimDur,
        ctx: &mut Ctx<'_, Ev>,
    ) -> SimDur {
        if q == SimDur::MAX || self.cfg.mech == PreemptMech::None {
            return SimDur::ZERO;
        }
        let seq = self.workers[worker].seq;
        match self.cfg.mech {
            PreemptMech::Uintr | PreemptMech::TimerCoreSignal => {
                let slot = self.workers[worker].slot;
                self.registry
                    .arm_observed(slot, start + q, start, &mut self.obs);
                self.armed_for[slot.index()] = Some((worker, seq));
                self.update_timer_check(ctx);
                // utimer_arm_deadline is one cache-line write (which
                // can bounce with the timer core's polling reads).
                self.cfg.hw.deadline_arm
            }
            PreemptMech::KernelTimerSignal => {
                let fault = self
                    .injector
                    .as_mut()
                    .and_then(|i| i.timer_at(start.as_nanos()));
                if let Some(f) = fault {
                    self.obs.emit(
                        start,
                        Event::FaultInjected { worker: worker as u16, kind: f.kind() as u8 },
                    );
                }
                let w = &mut self.workers[worker];
                w.ktimer.arm_observed(q, worker as u16, start, &mut self.obs);
                // The hardware timer fires regardless of whether the
                // expiry turns out stale: record it at the fire instant.
                let actual = w.ktimer.sample_expiry_with_fault_observed(
                    fault,
                    worker as u16,
                    start,
                    &mut self.obs,
                );
                let cost = w.ktimer.arm_cost();
                match actual {
                    Some(delay) => {
                        ctx.at(start + delay, Ev::KtimerExpiry { worker, seq });
                        if matches!(fault, Some(TimerFault::Spurious)) {
                            // The extra fire lands after the real one has
                            // been handled, so its sequence number is
                            // guaranteed stale: the handler runs for
                            // nothing (`spurious_preempt`).
                            ctx.at(
                                start + delay + delay,
                                Ev::PreemptArrive { worker, seq: u64::MAX, uintr: false },
                            );
                        }
                        if self.injector.is_some() {
                            self.arm_watchdog(worker, seq, start + delay, 0, ctx);
                        }
                    }
                    None => {
                        // The kernel lost the arming: no expiry will ever
                        // fire. The watchdog recovers from roughly where
                        // the fire should have been.
                        let expected = q.max(self.cfg.kernel.timer_floor);
                        self.arm_watchdog(worker, seq, start + expected, 0, ctx);
                    }
                }
                cost
            }
            PreemptMech::None => SimDur::ZERO,
        }
    }

    fn disarm_deadline(&mut self, worker: usize, ctx: &mut Ctx<'_, Ev>) {
        match self.cfg.mech {
            PreemptMech::Uintr | PreemptMech::TimerCoreSignal => {
                let slot = self.workers[worker].slot;
                self.registry.disarm_observed(slot, ctx.now(), &mut self.obs);
                self.armed_for[slot.index()] = None;
                self.update_timer_check(ctx);
            }
            PreemptMech::KernelTimerSignal => {
                self.workers[worker].ktimer.disarm();
                // The stale KtimerExpiry event is ignored by seq check.
            }
            PreemptMech::None => {}
        }
    }

    /// Receiver-side cost of taking a preemption notification.
    fn preempt_receive_cost(&mut self) -> SimDur {
        match self.cfg.mech {
            PreemptMech::Uintr => self.cfg.hw.uintr_handler,
            PreemptMech::TimerCoreSignal | PreemptMech::KernelTimerSignal => {
                self.cfg.kernel.signal_handler + self.cfg.kernel.ctx_switch
            }
            PreemptMech::None => SimDur::ZERO,
        }
    }

    fn record_completion(&mut self, arrived: SimTime, class: u8, service: SimDur, now: SimTime) {
        self.completions += 1;
        self.window.on_completion(now.since(arrived).as_nanos());
        self.window.on_service_sample(service.as_nanos());
        if !self.past_warmup(arrived) {
            return;
        }
        let lat = now.since(arrived);
        self.latency.record(lat.as_nanos());
        if let Some(h) = self.latency_by_class.get_mut(class as usize) {
            h.record(lat.as_nanos());
        }
        if let Some(ts) = self.latency_series.get_mut(class as usize) {
            ts.record(now.as_nanos(), lat.as_micros_f64());
        }
        if let (Some(slo), Some(ts)) = (self.cfg.slo, self.slo_series.as_mut()) {
            ts.record(now.as_nanos(), if lat > slo { 1.0 } else { 0.0 });
        }
    }

    fn start_task(&mut self, worker: usize, id: ContextId, resumed: bool, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        let (class, remaining, tv) = {
            let c = self.pool.get(id);
            (c.class, c.remaining, task_view(id, c))
        };
        debug_assert!(!remaining.is_zero(), "starting a completed context");
        let switch = self.cfg.hw.fcontext_switch;
        let pick = self.cfg.pick_cost;
        self.workers[worker]
            .clock
            .charge_observed(TimeClass::Dispatch, pick + switch, &mut self.obs);
        // The switch toward this fiber begins now; `TaskStart` (stamped
        // at the actual start instant) closes the window and carries
        // its duration, so the phase accountant charges pick +
        // fcontext-switch (+ arming) to `preempt_switch` from that one
        // event.
        self.obs.emit(
            now,
            Event::SwitchBegin {
                worker: worker as u16,
                fiber: id.index() as u32,
                resumed,
            },
        );
        let mut start = now + pick + switch;

        self.workers[worker].seq += 1;
        self.fill_depths();
        let q = {
            let queued: usize = self.depth_scratch.iter().sum();
            let mut sctx = SchedCtx {
                now,
                queue_depths: &self.depth_scratch,
                runnable: queued,
                parked: self.pool.parked(),
                window: self.last_window.as_ref(),
                obs: &mut self.obs,
            };
            self.policy.time_slice(&tv, &mut sctx)
        };
        if q != SimDur::MAX && self.cfg.mech != PreemptMech::None {
            self.obs.emit(
                start,
                Event::SliceGranted {
                    worker: worker as u16,
                    fiber: id.index() as u32,
                    slice_ns: q.as_nanos(),
                },
            );
        }
        let arm_extra = self.arm_deadline(worker, start, q, ctx);
        if !arm_extra.is_zero() {
            self.workers[worker]
                .clock
                .charge_observed(TimeClass::Kernel, arm_extra, &mut self.obs);
            start += arm_extra;
        }

        let mut remaining = remaining;
        if let Some(CoreFault::Hog(stall)) =
            self.injector.as_mut().and_then(|i| i.core_at(start.as_nanos()))
        {
            // The core stalls mid-slice: the fiber burns `stall` extra
            // on-CPU time and no preemption can land inside the window.
            self.obs.emit(
                start,
                Event::FaultInjected {
                    worker: worker as u16,
                    kind: lp_sim::fault::FaultKind::CoreHog as u8,
                },
            );
            self.workers[worker].hog.begin(start, stall);
            self.pool.get_mut(id).remaining += stall;
            remaining += stall;
        }

        let finish_ev = ctx.at(start + remaining, Ev::Finish {
            worker,
            seq: self.workers[worker].seq,
        });
        self.workers[worker].state = WState::Running {
            ctx: id,
            class,
            started: start,
            finish_ev,
        };
        self.obs.emit(
            start,
            Event::TaskStart {
                worker: worker as u16,
                fiber: id.index() as u32,
                resumed,
                switch_ns: start.since(now).as_nanos().min(u64::from(u32::MAX)) as u32,
            },
        );
    }

    fn handle_pick(&mut self, worker: usize, ctx: &mut Ctx<'_, Ev>) {
        if !matches!(self.workers[worker].state, WState::Idle) {
            return; // stale pick
        }
        let own = self.workers[worker].local.len();
        let stealable = if self.cfg.work_stealing {
            self.workers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != worker)
                .map(|(_, w)| w.local.len())
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let new_waiting = own + if own == 0 { stealable } else { 0 };
        self.fill_depths();
        let decision = {
            let mut sctx = SchedCtx {
                now: ctx.now(),
                queue_depths: &self.depth_scratch,
                runnable: new_waiting,
                parked: self.pool.parked(),
                window: self.last_window.as_ref(),
                obs: &mut self.obs,
            };
            self.policy.dispatch(worker, &mut sctx)
        };
        match decision {
            Dispatch::New => {
                let id = if let Some(id) = self.workers[worker].local.pop_front() {
                    id
                } else {
                    // Steal from the longest sibling queue.
                    let victim = self
                        .workers
                        .iter()
                        .enumerate()
                        .filter(|(i, w)| *i != worker && !w.local.is_empty())
                        .max_by_key(|(_, w)| w.local.len())
                        .map(|(i, _)| i);
                    match victim {
                        Some(v) => {
                            // Stealing touches a remote queue: extra cost.
                            self.workers[worker].clock.charge_observed(
                                TimeClass::Dispatch,
                                self.cfg.pick_cost,
                                &mut self.obs,
                            );
                            self.workers[v].local.pop_back().expect("victim non-empty")
                        }
                        None => return, // raced away
                    }
                };
                self.start_task(worker, id, false, ctx);
            }
            Dispatch::Parked(sel) => {
                let id = match sel {
                    ResumeSel::Fifo => self.pool.take_parked(),
                    ResumeSel::Srpt => self.pool.take_parked_srpt(),
                    ResumeSel::MinKey => {
                        // Smallest policy key wins; `min_by_key` keeps
                        // the first (oldest) on ties.
                        let policy = &self.policy;
                        let pos = self
                            .pool
                            .iter_parked()
                            .map(|(id, c)| policy.resume_key(&task_view(id, c)))
                            .enumerate()
                            .min_by_key(|&(_, key)| key)
                            .map(|(pos, _)| pos);
                        pos.and_then(|p| self.pool.take_parked_at(p))
                    }
                };
                if let Some(id) = id { self.start_task(worker, id, true, ctx) }
            }
            Dispatch::Idle => {}
        }
    }

    fn deliver_preemptions(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        let fired = self.registry.expired_observed(now, &mut self.obs);
        let mut issue_at = now;
        for slot in fired {
            let Some((worker, seq)) = self.armed_for[slot.index()].take() else {
                continue;
            };
            match self.cfg.mech {
                PreemptMech::Uintr => {
                    match self.workers[worker].retry.step(RetryInput::Send { seq }) {
                        RetryOutput::Signal => {
                            // Degraded worker: the timer core tgkill()s it
                            // instead of trusting the broken UINTR path.
                            self.send_preempt_signal(worker, seq, issue_at, 0, ctx);
                            issue_at += self.cfg.kernel.syscall;
                        }
                        verdict => {
                            // The timer core executes SENDUIPI per target,
                            // serially. A degraded worker gets here only on
                            // its probe turns.
                            let issue = self.jitter(self.cfg.hw.senduipi_issue);
                            issue_at += issue;
                            self.timer_clock
                                .charge_observed(TimeClass::Preemption, issue, &mut self.obs);
                            let probe = verdict == RetryOutput::Probe;
                            self.send_preempt_uipi(worker, seq, issue_at, 0, probe, ctx);
                        }
                    }
                }
                PreemptMech::TimerCoreSignal => {
                    // The timer core tgkill()s the worker; the kernel
                    // signal path serializes and jitters delivery.
                    self.send_preempt_signal(worker, seq, issue_at, 0, ctx);
                    issue_at += self.cfg.kernel.syscall;
                }
                _ => unreachable!("timer core disabled for {:?}", self.cfg.mech),
            }
        }
        self.update_timer_check(ctx);
    }

    /// Sends one preemption over UINTR at `at` (the `SENDUIPI` retire
    /// instant), applying a freshly sampled fault decision, and arms the
    /// watchdog when injection is enabled. `repair` clears the
    /// receiver's `SN` bit first — retries and probes use it to undo a
    /// stuck-suppress fault.
    fn send_preempt_uipi(
        &mut self,
        worker: usize,
        seq: u64,
        at: SimTime,
        attempt: u32,
        repair: bool,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        self.obs.emit(
            at,
            Event::PreemptIssued {
                worker: worker as u16,
                seq,
                attempt: attempt.min(u32::from(u8::MAX)) as u8,
                uintr: true,
            },
        );
        let fault = self.injector.as_mut().and_then(|i| i.ipi_at(at.as_nanos()));
        if let Some(f) = fault {
            self.obs.emit(
                at,
                Event::FaultInjected { worker: worker as u16, kind: f.kind() as u8 },
            );
        }
        let entry = self
            .timer_uitt
            .get(self.workers[worker].uitt_index)
            .expect("timer UITT entry");
        if repair {
            let _ = self.uintr.set_suppress(entry.upid, false);
        }
        // Workers are on-CPU; the architectural fast path.
        let outcome = self
            .uintr
            .senduipi_with_fault_observed(
                entry,
                ReceiverState::RunningUifSet,
                fault,
                worker as u16,
                at,
                &mut self.obs,
            )
            .expect("live UPID");
        if outcome == SendOutcome::NotifiedRunning {
            let mut delivery = self.jitter(self.cfg.hw.uintr_delivery_running);
            if let Some(IpiFault::Delay(extra)) = fault {
                delivery += extra;
            }
            // The PUIR is acknowledged the instant the interrupt
            // lands; stamp the delivery event there so the trace
            // reads in causal order.
            self.uintr
                .acknowledge_observed(entry.upid, worker as u16, at + delivery, &mut self.obs)
                .expect("live UPID");
            ctx.at(at + delivery, Ev::PreemptArrive { worker, seq, uintr: true });
        }
        // Any other outcome is a lost preemption; the watchdog notices.
        if self.injector.is_some() {
            self.arm_watchdog(worker, seq, at, attempt, ctx);
        }
    }

    /// Sends one preemption through the kernel signal path at `at`,
    /// applying a freshly sampled fault decision, and arms the watchdog
    /// when injection is enabled. Used by the `TimerCoreSignal` and
    /// `KernelTimerSignal` retries, and by degraded-UINTR workers.
    fn send_preempt_signal(
        &mut self,
        worker: usize,
        seq: u64,
        at: SimTime,
        attempt: u32,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        self.obs.emit(
            at,
            Event::PreemptIssued {
                worker: worker as u16,
                seq,
                attempt: attempt.min(u32::from(u8::MAX)) as u8,
                uintr: false,
            },
        );
        let fault = self.injector.as_mut().and_then(|i| i.signal_at(at.as_nanos()));
        if let Some(f) = fault {
            self.obs.emit(
                at,
                Event::FaultInjected { worker: worker as u16, kind: f.kind() as u8 },
            );
        }
        if self.cfg.mech == PreemptMech::Uintr {
            // The signal handler of a degraded worker drains whatever
            // the failed UINTR sends left posted in the UPID (e.g. a
            // stale-NDST vector whose `ON` bit blocks later probes).
            let entry = self
                .timer_uitt
                .get(self.workers[worker].uitt_index)
                .expect("timer UITT entry");
            if self
                .uintr
                .upid(entry.upid)
                .is_some_and(|u| u.outstanding || u.pending != 0)
            {
                let _ = self.uintr.acknowledge(entry.upid);
            }
        }
        if let Some(d) =
            self.signal_path
                .deliver_with_fault_observed(at, fault, worker as u16, &mut self.obs)
        {
            if self.cfg.mech.needs_timer_core() {
                self.timer_clock
                    .charge_observed(TimeClass::Preemption, d.sender_busy, &mut self.obs);
            } else {
                // No timer core: the kernel's send work lands on the
                // victim's own core.
                self.workers[worker].clock.charge_observed(
                    TimeClass::Kernel,
                    d.sender_busy,
                    &mut self.obs,
                );
            }
            ctx.at(d.handler_start, Ev::PreemptArrive { worker, seq, uintr: false });
        }
        // A lost signal schedules nothing; the watchdog recovers it.
        if self.injector.is_some() {
            self.arm_watchdog(worker, seq, at, attempt, ctx);
        }
    }

    /// Arms the lost-preemption deadline for a send issued at `issued`.
    /// Callers gate on `self.injector.is_some()` so disabled runs
    /// record nothing. For first sends (attempt 0 — the healthy path)
    /// the deadline lives in the worker (latest send wins): one field
    /// store, no event, no heap traffic, no global bookkeeping. The
    /// throttled scan driven from [`Model::handle`] notices a deadline
    /// within half a timeout of it passing — an armed deadline implies
    /// its victim is `Running`, so at least that worker's `Finish` is
    /// always pending and a due deadline can never sleep past the end
    /// of the run. Retries (attempt > 0) are already on the faulty
    /// path, so they also schedule a precise [`Ev::WatchdogCheck`]:
    /// once a loss streak starts it advances on the backoff cadence,
    /// not the accident of scan or event timing.
    #[inline]
    fn arm_watchdog(
        &mut self,
        worker: usize,
        seq: u64,
        issued: SimTime,
        attempt: u32,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        let at = issued + self.cfg.watchdog.timeout;
        self.workers[worker].wd = Some(WdArm { at, seq, attempt });
        if attempt > 0 {
            ctx.at(at, Ev::WatchdogCheck);
        }
    }

    /// Runs the lost-preemption check for every worker whose armed
    /// deadline passed, then schedules the next scan tick. Called from
    /// the event loop whenever the sim clock reaches `wd_scan_at`, and
    /// directly by [`Ev::WatchdogCheck`] retry events; safe to call
    /// early or repeatedly (due deadlines are taken before their
    /// checks run, and a scan that finds nothing due is four loads).
    #[cold]
    fn check_watchdogs(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        for worker in 0..self.workers.len() {
            let due = match self.workers[worker].wd {
                Some(a) if a.at <= now => {
                    self.workers[worker].wd = None;
                    Some(a)
                }
                _ => None,
            };
            if let Some(a) = due {
                self.handle_watchdog(worker, a.seq, a.attempt, ctx);
            }
        }
        self.wd_scan_at = now.as_nanos() + self.wd_scan_period;
    }

    /// The watchdog deadline for the preemption issued under `seq`
    /// passed. If the victim moved on (preempted or finished) the send
    /// landed: record the success and possibly complete a recovery
    /// probe. Otherwise the preemption is lost: re-send with capped
    /// exponential backoff, degrading to the signal path after enough
    /// consecutive losses.
    #[cold]
    fn handle_watchdog(&mut self, worker: usize, seq: u64, attempt: u32, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        let lost = self.workers[worker].seq == seq
            && matches!(self.workers[worker].state, WState::Running { .. });
        if !lost {
            // The victim moved on: the send landed another way or the
            // task finished. Settle the streak (and any probe).
            self.workers[worker].retry.step(RetryInput::Settled { seq });
            return;
        }
        let can_degrade = self.cfg.mech == PreemptMech::Uintr;
        match self.workers[worker].retry.step(RetryInput::Lost { seq, can_degrade }) {
            RetryOutput::Degrade { losses } => {
                self.obs.emit(
                    now,
                    Event::MechDegraded {
                        worker: worker as u16,
                        losses: losses.min(u32::from(u8::MAX)) as u8,
                    },
                );
                self.send_preempt_signal(worker, seq, now, attempt + 1, ctx);
            }
            RetryOutput::Brownout { losses } => {
                // Intermediate tier: the worker is visibly losing
                // preemptions but has not yet earned the signal-path
                // degrade. Announce the pressure (admission control
                // keys off it) and re-send over UINTR with SN repair,
                // exactly like `Retry { uintr: true }`.
                self.obs.emit(
                    now,
                    Event::MechBrownout {
                        worker: worker as u16,
                        losses: losses.min(u32::from(u8::MAX)) as u8,
                    },
                );
                let delay = self.cfg.watchdog.backoff.delay(attempt);
                self.obs.emit(
                    now,
                    Event::PreemptRetry {
                        worker: worker as u16,
                        seq,
                        attempt: attempt.min(u32::from(u8::MAX)) as u8,
                        delay_ns: delay.as_nanos(),
                    },
                );
                self.send_preempt_uipi(worker, seq, now + delay, attempt + 1, true, ctx);
            }
            RetryOutput::Retry { uintr } => {
                let delay = self.cfg.watchdog.backoff.delay(attempt);
                self.obs.emit(
                    now,
                    Event::PreemptRetry {
                        worker: worker as u16,
                        seq,
                        attempt: attempt.min(u32::from(u8::MAX)) as u8,
                        delay_ns: delay.as_nanos(),
                    },
                );
                let at = now + delay;
                if uintr {
                    self.send_preempt_uipi(worker, seq, at, attempt + 1, true, ctx);
                } else {
                    // Degraded workers, failed probes, and the
                    // signal-based mechanisms all retry through the
                    // kernel signal path.
                    self.send_preempt_signal(worker, seq, at, attempt + 1, ctx);
                }
            }
            other => unreachable!("Lost verdict is Degrade, Brownout, or Retry, got {other:?}"),
        }
    }

    fn handle_preempt_arrive(
        &mut self,
        worker: usize,
        seq: u64,
        uintr: bool,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        let now = ctx.now();
        if self.workers[worker].hog.active(now) {
            // Fault-injected core stall: the interrupt cannot be
            // serviced until the window closes. `defer` is strictly
            // after `now` while the window is active.
            let at = self.workers[worker].hog.defer(now);
            ctx.at(at, Ev::PreemptArrive { worker, seq, uintr });
            return;
        }
        let recv_cost = self.preempt_receive_cost();
        let w_seq = self.workers[worker].seq;
        let current = w_seq == seq && matches!(self.workers[worker].state, WState::Running { .. });
        if current {
            self.obs.emit(
                now,
                Event::PreemptLanded { worker: worker as u16, seq, uintr },
            );
            // The machine settles the loss streak; a recovery probe
            // coming back over the user-interrupt path means the
            // fabric healed.
            let verdict = self.workers[worker].retry.step(RetryInput::Landed { seq, uintr });
            if verdict == RetryOutput::Recovered {
                self.obs.emit(now, Event::MechRecovered { worker: worker as u16 });
            }
        }
        match &mut self.workers[worker].state {
            WState::Running {
                ctx: id,
                started,
                finish_ev,
                ..
            } if w_seq == seq => {
                let id = *id;
                let started_at = *started;
                ctx.cancel(*finish_ev);
                debug_assert!(started_at <= now);
                let executed = now.saturating_since(started_at);
                let w = &mut self.workers[worker];
                w.clock.charge_observed(TimeClass::Work, executed, &mut self.obs);
                w.clock.charge_observed(
                    TimeClass::Preemption,
                    recv_cost + self.cfg.hw.fcontext_switch,
                    &mut self.obs,
                );
                w.seq += 1;
                w.state = WState::Idle;
                // The send landed: retire its watchdog deadline before
                // the next send overwrites it (the sweep would only see
                // the overwrite), keeping the loss streak strictly
                // consecutive. The retry machine already settled the
                // streak (and any probe) in the `Landed` step above.
                if w.wd.is_some_and(|a| a.seq == seq) {
                    w.wd = None;
                }
                {
                    let c = self.pool.get_mut(id);
                    c.remaining = c.remaining.saturating_sub(executed);
                    if c.remaining.is_zero() {
                        // Preemption landed exactly at completion:
                        // treat as completed.
                        let (arrived, class, total) = (c.arrived, c.class, c.total);
                        let tv = task_view(id, self.pool.get(id));
                        self.pool.release(id);
                        self.obs.emit(
                            now,
                            Event::TaskFinish {
                                worker: worker as u16,
                                fiber: id.index() as u32,
                                latency_ns: now.since(arrived).as_nanos(),
                            },
                        );
                        self.record_completion(arrived, class, total, now);
                        self.policy.task_finished(&tv);
                    } else {
                        // Cache/TLB pollution: the resumed computation
                        // will take a bit longer.
                        let c = self.pool.get_mut(id);
                        c.remaining += self.cfg.hw.switch_pollution;
                        self.pool.park(id);
                        self.preemptions += 1;
                        self.obs.emit(
                            now,
                            Event::Preempt {
                                worker: worker as u16,
                                fiber: id.index() as u32,
                                ran_ns: executed.as_nanos(),
                            },
                        );
                        let tv = task_view(id, self.pool.get(id));
                        self.policy.task_preempted(&tv, executed);
                    }
                }
                self.disarm_deadline(worker, ctx);
                ctx.at(
                    now + recv_cost + self.cfg.hw.fcontext_switch,
                    Ev::Pick { worker },
                );
            }
            WState::Running {
                ctx: running_ctx,
                started,
                finish_ev,
                ..
            } => {
                // Stale delivery raced a completion: the handler still
                // runs, stealing `recv_cost` from whatever the worker
                // now executes. Shift the current run (start and
                // finish) by the handler cost so executed-time math
                // stays consistent.
                self.spurious += 1;
                *started += recv_cost;
                ctx.cancel(*finish_ev);
                let (id, started_at) = (*running_ctx, *started);
                let remaining = self.pool.get(id).remaining;
                *finish_ev = ctx.at(started_at + remaining, Ev::Finish {
                    worker,
                    seq: w_seq,
                });
                self.obs.emit(now, Event::SpuriousPreempt { worker: worker as u16 });
                self.workers[worker].clock.charge_observed(
                    TimeClass::Preemption,
                    recv_cost,
                    &mut self.obs,
                );
            }
            WState::Idle => {
                // Spurious delivery to an idle worker: handler cost only.
                self.spurious += 1;
                self.obs.emit(now, Event::SpuriousPreempt { worker: worker as u16 });
                self.workers[worker].clock.charge_observed(
                    TimeClass::Preemption,
                    recv_cost,
                    &mut self.obs,
                );
            }
        }
    }

    /// Evaluates the admission gate for a request of `class` about to
    /// be dispatched. `None` means the gate is idle (no overload, no
    /// mechanism pressure): nothing is emitted and the run stays
    /// byte-identical to one with admission disabled. `Some` carries
    /// the shed/admit decision plus the queue depth it was based on.
    ///
    /// The gate reads only existing state — queue lengths, retry tiers,
    /// the last control window — and never samples RNG, so arming it
    /// costs no stream draws.
    fn admission_verdict(&self, class: u8) -> Option<AdmissionVerdict> {
        // Backlog = everything not currently executing: the dispatcher
        // queue, worker local queues, and parked fibers. Under a
        // preemptive policy the overload mass sits in the parked set
        // (every quantum expiry parks the fiber again), so leaving it
        // out would blind the gate exactly when it matters.
        let queued = self.dispatch_queue.len()
            + self.workers.iter().map(|w| w.local.len()).sum::<usize>()
            + self.pool.parked();
        let depth = u32::try_from(queued).unwrap_or(u32::MAX);
        let adm = &self.cfg.admission;
        let pressured = self.workers.iter().any(|w| w.retry.tier() > Tier::Healthy);
        let cap = if pressured { adm.brownout_cap.min(adm.queue_cap) } else { adm.queue_cap };
        if queued >= cap {
            return Some(AdmissionVerdict { shed: true, queued: depth });
        }
        if adm.slo_aware && class == 1 && queued >= adm.queue_cap / 2 {
            if let (Some(slo), Some(win)) = (self.cfg.slo, self.last_window.as_ref()) {
                if win.p99_ns > slo.as_nanos() {
                    return Some(AdmissionVerdict { shed: true, queued: depth });
                }
            }
        }
        // Below every cap: the gate only speaks when the mechanism is
        // under visible pressure, so a healthy armed run stays silent.
        pressured.then_some(AdmissionVerdict { shed: false, queued: depth })
    }

    fn handle_finish(&mut self, worker: usize, seq: u64, ctx: &mut Ctx<'_, Ev>) {
        if self.workers[worker].seq != seq {
            return; // cancelled-but-raced finish; ignore
        }
        let WState::Running { ctx: id, class, started, .. } = self.workers[worker].state else {
            return;
        };
        let now = ctx.now();
        let executed = now.saturating_since(started);
        self.workers[worker]
            .clock
            .charge_observed(TimeClass::Work, executed, &mut self.obs);
        self.disarm_deadline(worker, ctx);
        let (arrived, total) = {
            let c = self.pool.get(id);
            (c.arrived, c.total)
        };
        self.pool.get_mut(id).remaining = SimDur::ZERO;
        let tv = task_view(id, self.pool.get(id));
        self.pool.release(id);
        self.obs.emit(
            now,
            Event::TaskFinish {
                worker: worker as u16,
                fiber: id.index() as u32,
                latency_ns: now.since(arrived).as_nanos(),
            },
        );
        self.record_completion(arrived, class, total, now);
        self.policy.task_finished(&tv);
        let w = &mut self.workers[worker];
        w.seq += 1;
        w.state = WState::Idle;
        // A natural finish settles any outstanding send for this run:
        // the watchdog cannot tell a lost preemption from one that
        // raced completion, so the loss streak resets (retire the
        // deadline here for the same overwrite reason as on arrival).
        w.retry.step(RetryInput::Settled { seq });
        if w.wd.is_some_and(|a| a.seq == seq) {
            w.wd = None;
        }
        ctx.immediately(Ev::Pick { worker });
    }
}

impl Model for LibPreemptibleSystem {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        // Lost-preemption watchdogs piggyback on the event stream: one
        // compare per event against a throttled scan tick, so the
        // healthy path pays no per-send heap traffic or bookkeeping at
        // all. An armed deadline's victim is `Running`, so its `Finish`
        // event (at the latest) is always pending and a due check
        // cannot starve — detection lands within half a timeout of the
        // deadline whenever events flow, and retries sharpen that with
        // their own scheduled checks.
        if ctx.now().as_nanos() >= self.wd_scan_at {
            self.check_watchdogs(ctx);
        }
        match ev {
            Ev::Arrival => {
                let now = ctx.now();
                self.arrivals += 1;
                self.window.on_arrival();
                if let Some(ts) = self.qps_series.as_mut() {
                    ts.record(now.as_nanos(), 1.0);
                }
                let (class, service) = self.spec.source.sample(now, &mut self.service_rng);
                self.obs.emit(now, Event::Arrival { class });
                self.dispatch_queue.push_back(PendingReq {
                    arrived: now,
                    class,
                    service,
                });
                // Dispatcher serializes request handling.
                let start = self.dispatch_free_at.max(now);
                let cost = self.cfg.dispatch_cost;
                self.dispatcher_clock
                    .charge_observed(TimeClass::Dispatch, cost, &mut self.obs);
                self.dispatch_free_at = start + cost;
                ctx.at(self.dispatch_free_at, Ev::Dispatched);

                // Next arrival while the run lasts.
                let next = self.arrivals_gen.next_arrival(now);
                if next < SimTime::ZERO + self.spec.duration {
                    ctx.at(next, Ev::Arrival);
                }
            }
            Ev::Dispatched => {
                let req = self
                    .dispatch_queue
                    .pop_front()
                    .expect("dispatched event without pending request");
                if self.cfg.admission.enabled {
                    if let Some(verdict) = self.admission_verdict(req.class) {
                        let queued = verdict.queued;
                        if verdict.shed {
                            // A shed is a drop taken early, before a
                            // context is burned on a request the queue
                            // cannot serve in time: it counts against
                            // the same conservation total as a
                            // pool-exhaustion drop, but carries its own
                            // typed event so overload behaviour is
                            // attributable in traces.
                            self.dropped += 1;
                            self.obs.emit(
                                ctx.now(),
                                Event::Shed { class: req.class, queued },
                            );
                            return;
                        }
                        self.obs.emit(
                            ctx.now(),
                            Event::Admitted { class: req.class, queued },
                        );
                    }
                }
                match self
                    .pool
                    .allocate(self.arrivals, req.arrived, req.service, req.class)
                {
                    Ok(id) => {
                        let now = ctx.now();
                        let tv = task_view(id, self.pool.get(id));
                        self.fill_depths();
                        let (choice, enq) = {
                            let queued: usize = self.depth_scratch.iter().sum();
                            let mut sctx = SchedCtx {
                                now,
                                queue_depths: &self.depth_scratch,
                                runnable: queued,
                                parked: self.pool.parked(),
                                window: self.last_window.as_ref(),
                                obs: &mut self.obs,
                            };
                            let choice = self.policy.select_cpu(&tv, &mut sctx);
                            let enq = self.policy.enqueue(&tv, &mut sctx);
                            (choice, enq)
                        };
                        let (w, explicit) = match choice {
                            Some(w) if w < self.workers.len() => (w, true),
                            _ => (self.shortest_queue(), false),
                        };
                        self.obs.emit(
                            now,
                            Event::PolicyDispatch { worker: w as u16, explicit },
                        );
                        self.window.on_queue_sample(self.workers[w].local.len());
                        match enq {
                            Enqueue::Back => self.workers[w].local.push_back(id),
                            Enqueue::Front => self.workers[w].local.push_front(id),
                        }
                        if matches!(self.workers[w].state, WState::Idle) {
                            ctx.immediately(Ev::Pick { worker: w });
                        }
                    }
                    Err(_) => {
                        self.dropped += 1;
                        self.obs.emit(ctx.now(), Event::Drop { class: req.class });
                    }
                }
            }
            Ev::Pick { worker } => self.handle_pick(worker, ctx),
            Ev::Finish { worker, seq } => self.handle_finish(worker, seq, ctx),
            Ev::TimerCheck => {
                self.timer_check = None;
                self.deliver_preemptions(ctx);
            }
            Ev::KtimerExpiry { worker, seq } => {
                if self.workers[worker].seq == seq
                    && matches!(self.workers[worker].state, WState::Running { .. })
                {
                    let now = ctx.now();
                    self.obs.emit(
                        now,
                        Event::PreemptIssued {
                            worker: worker as u16,
                            seq,
                            attempt: 0,
                            uintr: false,
                        },
                    );
                    let fault = self.injector.as_mut().and_then(|i| i.signal_at(now.as_nanos()));
                    if let Some(f) = fault {
                        self.obs.emit(
                            now,
                            Event::FaultInjected { worker: worker as u16, kind: f.kind() as u8 },
                        );
                    }
                    // Sender is the kernel timer softirq: charge kernel
                    // time to the victim's core. A lost signal schedules
                    // nothing — the watchdog armed at the expiry instant
                    // recovers it.
                    if let Some(d) = self.signal_path.deliver_with_fault_observed(
                        now,
                        fault,
                        worker as u16,
                        &mut self.obs,
                    ) {
                        self.workers[worker].clock.charge_observed(
                            TimeClass::Kernel,
                            d.sender_busy,
                            &mut self.obs,
                        );
                        ctx.at(d.handler_start, Ev::PreemptArrive { worker, seq, uintr: false });
                    }
                }
            }
            Ev::PreemptArrive { worker, seq, uintr } => {
                self.handle_preempt_arrive(worker, seq, uintr, ctx)
            }
            // Retry deadlines check precisely, independent of the
            // throttled scan cadence.
            Ev::WatchdogCheck => self.check_watchdogs(ctx),
            Ev::ControlTick => {
                let now = ctx.now();
                let summary = self.window.roll(now.as_nanos());
                self.policy.on_window_observed(&summary, now, &mut self.obs);
                self.last_window = Some(summary);
                if let Some(ts) = self.quantum_series.as_mut() {
                    let q = self.policy.quantum_hint(0);
                    if q != SimDur::MAX {
                        ts.record(now.as_nanos(), q.as_micros_f64());
                    }
                }
                let next = now + self.cfg.control_period;
                if next < SimTime::ZERO + self.spec.duration {
                    ctx.at(next, Ev::ControlTick);
                }
            }
        }
    }
}

/// Runs LibPreemptible on the given workload and returns the report.
///
/// ```
/// use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
/// use lp_sim::SimDur;
/// use lp_workload::{PhasedService, RateSchedule, ServiceDist};
///
/// let cfg = RuntimeConfig { workers: 2, ..RuntimeConfig::default() };
/// let spec = WorkloadSpec {
///     source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_b())),
///     arrivals: RateSchedule::Constant(50_000.0),
///     duration: SimDur::millis(50),
///     warmup: SimDur::millis(5),
/// };
/// let report = run(cfg, Box::new(FcfsPreempt::fixed(SimDur::micros(10))), spec);
/// assert!(report.is_conserved());
/// assert!(report.completions > 1_000);
/// ```
pub fn run(cfg: RuntimeConfig, policy: Box<dyn SchedPolicy>, spec: WorkloadSpec) -> RunReport {
    let system_name = format!("LibPreemptible[{:?}]/{}", cfg.mech, policy.name());
    let duration = spec.duration;
    let offered = spec.arrivals.peak_rate();
    let control_period = cfg.control_period;
    let timer_cores = if cfg.mech.needs_timer_core() {
        cfg.timer_cores
    } else {
        0
    };

    // Pre-size the event queue's node slab from the arrival-rate hint:
    // the live event population is bounded by in-flight requests
    // (~100 us of peak arrivals, capped by the context pool) plus a
    // deadline and a finish event per worker and the arrival/control
    // ticks. With the slab warm the wheel's arm/cancel/re-arm cycle
    // recycles nodes from the freelist and never allocates mid-run
    // (pinned by `million_rearm_cycles_do_not_grow_the_slab`).
    let queue_hint = 64
        + cfg.workers * 4
        + ((offered * 1e-4) as usize).min(cfg.pool_capacity);
    let model = LibPreemptibleSystem::new(cfg, spec, policy);
    let mut sim = Simulation::with_capacity(model, queue_hint);
    sim.schedule_at(SimTime::ZERO, Ev::Arrival);
    sim.schedule_at(SimTime::ZERO + control_period, Ev::ControlTick);
    sim.run_until(SimTime::ZERO + duration);

    let mut m = sim.into_model();
    let mut cores = CoreClock::new();
    let per_worker: Vec<CoreClock> = m.workers.iter().map(|w| w.clock.clone()).collect();
    for w in &per_worker {
        cores.merge(w);
    }
    cores.merge(&m.dispatcher_clock);
    let mut timer_core = m.timer_clock.clone();
    if timer_cores > 0 {
        // The dedicated timer core is busy-polling whenever it is not
        // issuing SENDUIPIs.
        let total = SimDur::nanos(duration.as_nanos());
        timer_core.charge(
            TimeClass::TimerPoll,
            total.saturating_sub(timer_core.total_charged()),
        );
    }
    let in_flight =
        m.pool.live() as u64 + m.dispatch_queue.len() as u64;
    let end = SimTime::ZERO + duration;
    let oldest_inflight_ns = m
        .pool
        .oldest_live_arrival()
        .into_iter()
        .chain(m.dispatch_queue.iter().map(|p| p.arrived))
        .map(|t| end.saturating_since(t).as_nanos())
        .max()
        .unwrap_or(0);
    RunReport {
        system: system_name,
        offered_rps: offered,
        duration,
        arrivals: m.arrivals,
        completions: m.completions,
        dropped: m.dropped,
        in_flight,
        oldest_inflight_ns,
        latency: m.latency,
        latency_by_class: m.latency_by_class,
        preemptions: m.preemptions,
        spurious_preemptions: m.spurious,
        cores,
        per_worker,
        timer_core,
        latency_series: m.latency_series,
        qps_series: m.qps_series,
        quantum_series: m.quantum_series,
        slo_series: m.slo_series,
        final_quantum: m.policy.quantum_hint(0),
        metrics: m.obs.snapshot(),
        events_dropped: m.obs.ring().overwritten(),
        events: m.obs.take_events(),
        phases: m.obs.take_phases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FcfsPreempt, NonPreemptive};
    use lp_workload::ServiceDist;

    fn spec(rate: f64, ms: u64) -> WorkloadSpec {
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_b())),
            arrivals: RateSchedule::Constant(rate),
            duration: SimDur::millis(ms),
            warmup: SimDur::millis(ms / 10),
        }
    }

    fn small_cfg(mech: PreemptMech) -> RuntimeConfig {
        RuntimeConfig {
            workers: 4,
            mech,
            control_period: SimDur::millis(10),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn conservation_and_throughput_low_load() {
        // 4 workers x 5us mean: capacity 800k rps. Offer 100k.
        let r = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(100_000.0, 100),
        );
        assert!(r.is_conserved(), "{r:?}");
        assert_eq!(r.dropped, 0);
        // ~10k arrivals in 100ms.
        assert!(r.arrivals > 8_000 && r.arrivals < 12_000, "{}", r.arrivals);
        // Nearly everything completes; latency near service time.
        assert!(r.in_flight < 20);
        assert!(r.median_us() < 15.0, "median {}", r.median_us());
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            run(
                small_cfg(PreemptMech::Uintr),
                Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
                spec(200_000.0, 50),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.latency.p99(), b.latency.p99());
    }

    #[test]
    fn preemption_happens_for_long_requests() {
        let spec = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(
                ServiceDist::Constant(SimDur::micros(100)),
            )),
            arrivals: RateSchedule::Constant(10_000.0),
            duration: SimDur::millis(50),
            warmup: SimDur::ZERO,
        };
        let r = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec,
        );
        // 100us tasks with a 10us quantum: many preemptions each.
        assert!(
            r.preemptions > 9 * r.completions / 2,
            "preemptions {} completions {}",
            r.preemptions,
            r.completions
        );
        assert!(r.is_conserved());
    }

    #[test]
    fn nonpreemptive_never_preempts() {
        let r = run(
            small_cfg(PreemptMech::None),
            Box::new(NonPreemptive),
            spec(100_000.0, 50),
        );
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.spurious_preemptions, 0);
        assert!(r.is_conserved());
    }

    #[test]
    fn preemption_tames_bimodal_tail() {
        // A1 at moderately high load: preemptive 10us quantum must
        // crush p99 relative to run-to-completion.
        let mk_spec = || WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_a1())),
            arrivals: RateSchedule::Constant(800_000.0), // ~60% util on 4 cores
            duration: SimDur::millis(300),
            warmup: SimDur::millis(30),
        };
        let pre = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
            mk_spec(),
        );
        let non = run(
            small_cfg(PreemptMech::None),
            Box::new(NonPreemptive),
            mk_spec(),
        );
        assert!(pre.is_conserved() && non.is_conserved());
        assert!(
            pre.p99_us() * 3.0 < non.p99_us(),
            "preemptive p99 {} vs non-preemptive {}",
            pre.p99_us(),
            non.p99_us()
        );
    }

    #[test]
    fn signal_fallback_is_slower_than_uintr() {
        let mk_spec = || WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_a1())),
            arrivals: RateSchedule::Constant(900_000.0),
            duration: SimDur::millis(200),
            warmup: SimDur::millis(20),
        };
        let uintr = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
            mk_spec(),
        );
        let signal = run(
            small_cfg(PreemptMech::TimerCoreSignal),
            Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
            mk_spec(),
        );
        assert!(
            signal.p99_us() > 1.5 * uintr.p99_us(),
            "signal p99 {} vs uintr {}",
            signal.p99_us(),
            uintr.p99_us()
        );
    }

    #[test]
    fn overload_builds_queues_not_crashes() {
        // Offer 2x capacity.
        let r = run(
            RuntimeConfig {
                pool_capacity: 512,
                ..small_cfg(PreemptMech::Uintr)
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(1_600_000.0, 30),
        );
        assert!(r.is_conserved());
        assert!(r.dropped > 0 || r.in_flight > 100);
    }

    #[test]
    fn armed_but_silent_injector_changes_nothing() {
        // An enabled plan whose faults can never fire (one scheduled
        // injection at an unreachable occurrence) builds the injector
        // and arms a watchdog per preemption, yet must leave every
        // result — stats, metrics, trace — identical to the healthy
        // run. This is the <2%-overhead claim's correctness half.
        use lp_sim::fault::{FaultKind, FaultPlan};
        let mk = |faults: FaultPlan| {
            run(
                RuntimeConfig {
                    trace_capacity: 4096,
                    faults,
                    ..small_cfg(PreemptMech::Uintr)
                },
                Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
                spec(300_000.0, 50),
            )
        };
        let healthy = mk(FaultPlan::disabled());
        let armed = mk(FaultPlan::once(FaultKind::IpiDrop, u64::MAX));
        assert_eq!(healthy.arrivals, armed.arrivals);
        assert_eq!(healthy.completions, armed.completions);
        assert_eq!(healthy.preemptions, armed.preemptions);
        assert_eq!(healthy.latency.p99(), armed.latency.p99());
        assert_eq!(healthy.metrics.counters, armed.metrics.counters);
        assert_eq!(healthy.events, armed.events);
        assert_eq!(armed.metrics.counter("faults_injected"), 0);
        assert_eq!(armed.metrics.counter("preempt_retries"), 0);
    }

    #[test]
    fn dropped_ipis_degrade_to_signal_path() {
        // Every SENDUIPI vanishes: after `degrade_after` consecutive
        // losses each worker must fall back to signals and the system
        // must still preempt, complete, and conserve requests.
        use lp_sim::fault::{FaultKind, FaultPlan};
        let spec = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(
                ServiceDist::Constant(SimDur::micros(400)),
            )),
            arrivals: RateSchedule::Constant(8_000.0),
            duration: SimDur::millis(60),
            warmup: SimDur::ZERO,
        };
        let r = run(
            RuntimeConfig {
                faults: FaultPlan::only(FaultKind::IpiDrop, 1.0),
                ..small_cfg(PreemptMech::Uintr)
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(20))),
            spec,
        );
        assert!(r.is_conserved(), "{r:?}");
        assert!(r.completions > 100, "completions {}", r.completions);
        assert!(r.preemptions > 0, "signal fallback never preempted");
        assert!(r.metrics.counter("faults_injected") > 0);
        assert!(r.metrics.counter("preempt_retries") > 0);
        assert_eq!(r.metrics.counter("mech_degradations"), 4, "one per worker");
        assert_eq!(r.metrics.counter("mech_recoveries"), 0, "probes keep failing");
    }

    #[test]
    fn transient_drops_degrade_then_probe_recovers() {
        // Exactly the first `degrade_after` sends are dropped; the
        // fabric then heals. The victim worker must degrade once,
        // probe, and recover to UINTR.
        use lp_sim::fault::{FaultKind, FaultPlan, ScheduledFault};
        let mut plan = FaultPlan::disabled();
        for occurrence in 0..3 {
            plan.schedule.push(ScheduledFault { kind: FaultKind::IpiDrop, occurrence });
        }
        let spec = WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(
                ServiceDist::Constant(SimDur::micros(400)),
            )),
            arrivals: RateSchedule::Constant(8_000.0),
            duration: SimDur::millis(80),
            warmup: SimDur::ZERO,
        };
        let r = run(
            RuntimeConfig {
                // One worker so the scheduled occurrences 0..3 are all
                // consumed by the same worker's send/retry chain.
                workers: 1,
                faults: plan,
                ..small_cfg(PreemptMech::Uintr)
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(20))),
            spec,
        );
        assert!(r.is_conserved(), "{r:?}");
        assert_eq!(r.metrics.counter("faults_injected"), 3);
        assert_eq!(r.metrics.counter("mech_degradations"), 1);
        assert_eq!(r.metrics.counter("mech_recoveries"), 1, "probe must recover");
        assert!(r.preemptions > 100);
    }

    #[test]
    fn phase_breakdown_sums_to_end_to_end_latency() {
        // The tail-attribution contract: every pinned exemplar's phase
        // breakdown sums *exactly* to its end-to-end latency (queued
        // time is the residual, so the identity holds by construction
        // — this pins that the construction survives the runtime's
        // actual event stream), and the end-to-end histogram sees
        // every completion.
        let r = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(300_000.0, 50),
        );
        assert_eq!(r.phases.end_to_end.count(), r.completions);
        let exemplars = r.phases.exemplars();
        assert!(!exemplars.is_empty(), "no exemplar pinned");
        for ex in &exemplars {
            assert_eq!(
                ex.phase_sum(),
                ex.latency_ns,
                "phase breakdown does not sum to latency: {ex:?}"
            );
        }
        let worst = r.worst_exemplar().unwrap();
        assert_eq!(worst.latency_ns, exemplars[0].latency_ns);
        // Preempted tails spend visible time in the switch phase.
        use lp_sim::obs::Phase;
        assert!(
            !r.phases.per_phase[Phase::PreemptSwitch as usize].is_empty(),
            "no preempt_switch time attributed"
        );
    }

    #[test]
    fn attribution_off_switch_changes_no_results() {
        // `attribution: false` exists only for lp-bench's overhead
        // A/B; it must not perturb the simulation itself.
        let mk = |attribution: bool| {
            run(
                RuntimeConfig { attribution, ..small_cfg(PreemptMech::Uintr) },
                Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
                spec(300_000.0, 50),
            )
        };
        let on = mk(true);
        let off = mk(false);
        assert_eq!(on.latency.p99(), off.latency.p99());
        assert_eq!(on.metrics.counters, off.metrics.counters);
        assert!(off.phases.end_to_end.is_empty());
        assert!(off.worst_exemplar().is_none());
    }

    #[test]
    fn ring_overflow_is_counted_not_silent() {
        // A window far smaller than the run: the report must surface
        // how much the wrap evicted instead of pretending the tail is
        // the whole trace.
        let r = run(
            RuntimeConfig {
                trace_capacity: 64,
                ..small_cfg(PreemptMech::Uintr)
            },
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(300_000.0, 50),
        );
        assert_eq!(r.events.len(), 64);
        assert!(r.events_dropped > 0, "wrap evicted nothing?");
        // Untraced and generously-traced runs report zero drops.
        let untraced = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(300_000.0, 50),
        );
        assert_eq!(untraced.events_dropped, 0);
    }

    #[test]
    fn worker_time_accounting_sums_sanely() {
        let r = run(
            small_cfg(PreemptMech::Uintr),
            Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
            spec(400_000.0, 100),
        );
        for (i, w) in r.per_worker.iter().enumerate() {
            let total = w.total_charged();
            assert!(
                total <= SimDur::millis(100) + SimDur::micros(200),
                "worker {i} overcharged: {total}"
            );
            assert!(
                w.charged(TimeClass::Work) > SimDur::millis(10),
                "worker {i} did almost no work"
            );
        }
    }
}
