//! Retry policy for the lost-preemption watchdog.
//!
//! Under fault injection (`lp_sim::fault`) a `SENDUIPI`, kernel-timer
//! expiry, or signal can silently vanish. The runtime arms a watchdog
//! deadline for every preemption it issues; when the deadline passes
//! with the victim still running the same task, the preemption is
//! declared lost and re-sent under the capped exponential backoff
//! defined here. After [`WatchdogConfig::degrade_after`] consecutive
//! losses the worker's mechanism is degraded from user interrupts to
//! the kernel signal path, and every
//! [`WatchdogConfig::probe_every`]-th degraded preemption probes the
//! UINTR path again so the worker recovers once the fabric heals (see
//! `docs/FAULTS.md` for the full state machine).

use lp_sim::SimDur;

/// Capped exponential backoff: attempt `n` waits `base * 2^n`, never
/// more than `cap`.
///
/// ```
/// use libpreemptible::retry::Backoff;
/// use lp_sim::SimDur;
/// let b = Backoff::new(SimDur::micros(5), SimDur::micros(40));
/// assert_eq!(b.delay(0), SimDur::micros(5));
/// assert_eq!(b.delay(2), SimDur::micros(20));
/// assert_eq!(b.delay(10), SimDur::micros(40)); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: SimDur,
    cap: SimDur,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per attempt, capped at
    /// `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap < base`.
    pub fn new(base: SimDur, cap: SimDur) -> Self {
        assert!(cap >= base, "backoff cap {cap} below base {base}");
        Backoff { base, cap }
    }

    /// Delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> SimDur {
        let mult = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        let ns = self.base.as_nanos().saturating_mul(mult);
        SimDur::nanos(ns).min(self.cap)
    }
}

/// Watchdog parameters for the self-healing preemption path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long after issuing a preemption the runtime waits for it to
    /// land before declaring it lost. Must exceed the worst-case
    /// healthy delivery latency of the mechanism in use, or healthy
    /// deliveries race their own retries (the seq check makes the race
    /// harmless — the loser is a spurious handler run — but it wastes
    /// cycles).
    pub timeout: SimDur,
    /// Consecutive losses on the UINTR path before the worker degrades
    /// to signal delivery.
    pub degrade_after: u32,
    /// Consecutive losses on the UINTR path before the worker enters
    /// the brownout tier — still on the fast path, but flagged as
    /// pressured so admission control tightens. Must be at most
    /// `degrade_after`; the degrade verdict wins at its own threshold.
    pub brownout_after: u32,
    /// While degraded, every this-many-th preemption is sent through
    /// UINTR as a probe; a probe that lands recovers the worker.
    pub probe_every: u32,
    /// Retry schedule for re-sending a lost preemption.
    pub backoff: Backoff,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            timeout: SimDur::micros(50),
            degrade_after: 3,
            brownout_after: 2,
            probe_every: 8,
            backoff: Backoff::new(SimDur::micros(5), SimDur::micros(80)),
        }
    }
}

/// One observation fed into [`RetryMachine::step`].
///
/// Every input names the run sequence (`seq`) of the preemption it is
/// about; the machine uses it to match in-flight recovery probes, so a
/// stale observation (a late signal for a run that already ended) can
/// never flip state armed for a newer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryInput {
    /// The timer core is about to issue a fresh preemption (attempt 0)
    /// for run `seq`. The verdict picks the delivery path.
    Send {
        /// Run sequence the send targets.
        seq: u64,
    },
    /// The watchdog deadline for `seq` passed with the victim still on
    /// the same task: the send is lost. `can_degrade` is true only for
    /// the UINTR mechanism — the signal mechanisms have nothing slower
    /// to fall back to.
    Lost {
        /// Run sequence of the lost send.
        seq: u64,
        /// Whether a loss streak may degrade this worker to signals.
        can_degrade: bool,
    },
    /// A preemption landed on the victim while it was still running
    /// `seq`. `uintr` says which path carried it — only a UINTR
    /// arrival is delivery-path proof that the fast path works.
    Landed {
        /// Run sequence the arrival matched.
        seq: u64,
        /// True when the arrival came over the user-interrupt path.
        uintr: bool,
    },
    /// The run under `seq` ended some other way (natural finish, or a
    /// watchdog check that found the victim already moved on): any
    /// outstanding send is settled, the loss streak resets.
    Settled {
        /// Run sequence that ended.
        seq: u64,
    },
}

/// The typed verdict of one [`RetryMachine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutput {
    /// Send over the UINTR fast path (healthy worker).
    Fast,
    /// Send over the UINTR path as a recovery probe: the machine is
    /// degraded and this send's own arrival, if it comes back over
    /// UINTR, recovers the worker.
    Probe,
    /// Send over the kernel signal path (degraded worker, non-probe
    /// turn).
    Signal,
    /// Re-send the lost preemption after backoff. `uintr` is the path
    /// verdict: true retries over UINTR with SN repair, false goes
    /// through the kernel signal path (degraded workers, failed
    /// probes, and the signal mechanisms).
    Retry {
        /// Whether the re-send should use the UINTR path.
        uintr: bool,
    },
    /// The loss streak crossed [`WatchdogConfig::degrade_after`]: the
    /// worker just degraded to signal delivery. The caller emits
    /// `mech_degraded` and re-sends through the signal path.
    Degrade {
        /// The streak length that triggered the degrade.
        losses: u32,
    },
    /// The loss streak crossed [`WatchdogConfig::brownout_after`] but
    /// not yet the degrade threshold: the worker entered the brownout
    /// tier. The caller emits `mech_brownout` and re-sends over the
    /// UINTR path with SN repair, exactly like `Retry { uintr: true }`
    /// — brownout changes admission pressure, not the delivery path.
    Brownout {
        /// The streak length that triggered the brownout.
        losses: u32,
    },
    /// A recovery probe's own arrival came back over UINTR on a
    /// degraded worker: the fast path healed. The caller emits
    /// `mech_recovered`.
    Recovered,
    /// State updated; nothing for the caller to do.
    Noted,
}

/// The mechanism-health tier of a worker, derived from the retry
/// machine. Ordered: `Healthy < Brownout < Degraded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// UINTR path, no concerning loss streak.
    Healthy,
    /// UINTR path, but the loss streak crossed the brownout threshold —
    /// admission control treats the worker as pressured.
    Brownout,
    /// Kernel signal path (degrade-to-signals).
    Degraded,
}

/// The per-worker lost-preemption retry/degrade/recover state machine.
///
/// This is the **single** place the `losses` / `degraded` /
/// `brownout` / `degraded_sends` / `probe_for` state moves: the runtime (and the
/// `lp-check` DPOR lifecycle model, which drives this exact type)
/// observes events and feeds them to [`step`](RetryMachine::step),
/// then acts on the returned [`RetryOutput`]. Raw field writes outside
/// this module are rejected by the `retry-transition` lint
/// (`docs/CHECKS.md`), and the fields are private so the compiler
/// agrees.
///
/// Scheduling concerns — watchdog deadlines, backoff delays, attempt
/// counters — stay with the caller; the machine holds only the
/// mechanism-health state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryMachine {
    degrade_after: u32,
    brownout_after: u32,
    probe_every: u32,
    /// Consecutive lost preemptions seen by the watchdog.
    losses: u32,
    /// `true` once the worker fell back from UINTR to signal delivery.
    degraded: bool,
    /// `true` while the worker sits in the brownout tier (loss streak
    /// at or past `brownout_after`, not yet degraded). Cleared whenever
    /// the streak resets, superseded by a degrade.
    brownout: bool,
    /// Preemptions sent while degraded (drives the probe cadence).
    degraded_sends: u64,
    /// Run sequence of the in-flight UINTR recovery probe, if any. A
    /// probe succeeds only when its own arrival comes back over UINTR —
    /// a signal retry or task finish advancing the sequence is not
    /// evidence the fast path healed.
    probe_for: Option<u64>,
}

impl RetryMachine {
    /// A healthy machine using `cfg`'s degrade threshold and probe
    /// cadence.
    pub fn new(cfg: &WatchdogConfig) -> Self {
        assert!(cfg.degrade_after >= 1, "degrade_after must be >= 1");
        assert!(cfg.brownout_after >= 1, "brownout_after must be >= 1");
        assert!(cfg.probe_every >= 1, "probe_every must be >= 1");
        // brownout_after >= degrade_after is allowed and simply means
        // "no brownout tier": the degrade verdict wins at its own
        // threshold, so the brownout check below can never pass first.
        RetryMachine {
            degrade_after: cfg.degrade_after,
            brownout_after: cfg.brownout_after,
            probe_every: cfg.probe_every,
            losses: 0,
            degraded: false,
            brownout: false,
            degraded_sends: 0,
            probe_for: None,
        }
    }

    /// Feeds one observation through the transition function and
    /// returns the typed verdict. This is the only mutator.
    pub fn step(&mut self, input: RetryInput) -> RetryOutput {
        match input {
            RetryInput::Send { seq } => {
                if !self.degraded {
                    return RetryOutput::Fast;
                }
                self.degraded_sends += 1;
                if self.degraded_sends % u64::from(self.probe_every) == 0 {
                    self.probe_for = Some(seq);
                    RetryOutput::Probe
                } else {
                    RetryOutput::Signal
                }
            }
            RetryInput::Lost { seq, can_degrade } => {
                self.losses += 1;
                let was_probe = self.probe_for == Some(seq);
                if was_probe {
                    self.probe_for = None;
                }
                if can_degrade && !self.degraded && self.losses >= self.degrade_after {
                    self.degraded = true;
                    self.brownout = false; // superseded by the degrade
                    self.degraded_sends = 0;
                    return RetryOutput::Degrade { losses: self.losses };
                }
                if can_degrade
                    && !self.degraded
                    && !self.brownout
                    && !was_probe
                    && self.losses >= self.brownout_after
                {
                    self.brownout = true;
                    return RetryOutput::Brownout { losses: self.losses };
                }
                RetryOutput::Retry {
                    uintr: can_degrade && !was_probe && !self.degraded,
                }
            }
            RetryInput::Landed { seq, uintr } => {
                self.losses = 0;
                self.brownout = false;
                if self.probe_for == Some(seq) {
                    self.probe_for = None;
                    if uintr && self.degraded {
                        // Delivery-path proof: the probe's own arrival
                        // came back over the user-interrupt path.
                        self.degraded = false;
                        self.degraded_sends = 0;
                        return RetryOutput::Recovered;
                    }
                }
                RetryOutput::Noted
            }
            RetryInput::Settled { seq } => {
                self.losses = 0;
                self.brownout = false;
                if self.probe_for == Some(seq) {
                    // The probe's run ended without a UINTR arrival:
                    // no verdict either way, drop it.
                    self.probe_for = None;
                }
                RetryOutput::Noted
            }
        }
    }

    /// Current consecutive-loss streak.
    pub fn losses(&self) -> u32 {
        self.losses
    }

    /// Whether the worker is degraded to the kernel signal path.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Whether the worker sits in the brownout tier.
    pub fn is_brownout(&self) -> bool {
        self.brownout
    }

    /// The worker's mechanism-health tier, for admission pressure.
    pub fn tier(&self) -> Tier {
        if self.degraded {
            Tier::Degraded
        } else if self.brownout {
            Tier::Brownout
        } else {
            Tier::Healthy
        }
    }

    /// Run sequence of the in-flight recovery probe, if one is armed.
    pub fn probe_seq(&self) -> Option<u64> {
        self.probe_for
    }

    /// A totally ordered snapshot of the machine state, used by the
    /// `lp-check` DPOR explorer to fingerprint visited states.
    pub fn fingerprint(&self) -> (u32, bool, bool, u64, Option<u64>) {
        (self.losses, self.degraded, self.brownout, self.degraded_sends, self.probe_for)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let b = Backoff::new(SimDur::micros(2), SimDur::micros(30));
        assert_eq!(b.delay(0), SimDur::micros(2));
        assert_eq!(b.delay(1), SimDur::micros(4));
        assert_eq!(b.delay(3), SimDur::micros(16));
        assert_eq!(b.delay(4), SimDur::micros(30));
        assert_eq!(b.delay(63), SimDur::micros(30));
        assert_eq!(b.delay(u32::MAX), SimDur::micros(30));
    }

    #[test]
    fn zero_base_stays_zero() {
        let b = Backoff::new(SimDur::ZERO, SimDur::micros(1));
        assert_eq!(b.delay(0), SimDur::ZERO);
        assert_eq!(b.delay(40), SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn cap_below_base_rejected() {
        Backoff::new(SimDur::micros(10), SimDur::micros(5));
    }

    #[test]
    fn default_config_is_sane() {
        let wd = WatchdogConfig::default();
        assert!(wd.timeout > SimDur::ZERO);
        assert!(wd.degrade_after >= 1);
        assert!(wd.probe_every >= 1);
        assert!(wd.backoff.delay(0) <= wd.timeout);
        // The brownout tier sits strictly inside the ladder by default.
        assert!((1..wd.degrade_after).contains(&wd.brownout_after));
    }

    /// Backoff cap saturation: once an attempt's doubled delay crosses
    /// the cap, every later attempt (including shift-overflow ranges)
    /// pins exactly at the cap.
    #[test]
    fn backoff_cap_saturation_table() {
        let b = Backoff::new(SimDur::micros(5), SimDur::micros(80));
        let table: &[(u32, u64)] = &[
            (0, 5_000),
            (1, 10_000),
            (2, 20_000),
            (3, 40_000),
            (4, 80_000),  // exactly at the cap
            (5, 80_000),  // would be 160us, saturates
            (63, 80_000), // largest representable shift
            (64, 80_000), // shift overflow path
            (u32::MAX, 80_000),
        ];
        for &(attempt, want_ns) in table {
            assert_eq!(
                b.delay(attempt).as_nanos(),
                want_ns,
                "attempt {attempt}"
            );
        }
        // A huge base must saturate arithmetic, not wrap.
        let huge = Backoff::new(SimDur::nanos(u64::MAX / 2), SimDur::nanos(u64::MAX));
        assert_eq!(huge.delay(10), SimDur::nanos(u64::MAX));
    }

    fn machine(degrade_after: u32, probe_every: u32) -> RetryMachine {
        RetryMachine::new(&WatchdogConfig {
            degrade_after,
            probe_every,
            ..WatchdogConfig::default()
        })
    }

    /// Degrade-threshold off-by-one: with `degrade_after = 3` the
    /// first two losses retry and exactly the third degrades — not the
    /// second, not the fourth.
    #[test]
    fn degrade_threshold_off_by_one_table() {
        // (degrade_after, losses fed, expect degraded at the end)
        let table: &[(u32, u32, bool)] = &[
            (1, 1, true),
            (2, 1, false),
            (2, 2, true),
            (3, 2, false),
            (3, 3, true),
            (3, 4, true), // once degraded, stays degraded
        ];
        for &(after, losses, want) in table {
            let mut m = machine(after, 8);
            let mut degraded_at = None;
            for i in 0..losses {
                let out = m.step(RetryInput::Lost { seq: u64::from(i), can_degrade: true });
                if let RetryOutput::Degrade { losses: streak } = out {
                    degraded_at = Some((i + 1, streak));
                }
            }
            assert_eq!(
                m.is_degraded(),
                want,
                "degrade_after={after} losses={losses}"
            );
            if want {
                // The Degrade verdict fires exactly once, at the
                // threshold loss, reporting the streak length.
                assert_eq!(degraded_at, Some((after, after)), "degrade_after={after}");
            } else {
                assert_eq!(degraded_at, None);
            }
        }
    }

    /// Losses below the threshold retry over UINTR with repair; a
    /// degraded or probe-failed loss retries over the signal path.
    #[test]
    fn lost_picks_the_retry_path() {
        let mut m = machine(3, 8);
        assert_eq!(
            m.step(RetryInput::Lost { seq: 0, can_degrade: true }),
            RetryOutput::Retry { uintr: true }
        );
        // Signal mechanisms can never retry over UINTR.
        let mut sig = machine(3, 8);
        assert_eq!(
            sig.step(RetryInput::Lost { seq: 0, can_degrade: false }),
            RetryOutput::Retry { uintr: false }
        );
        assert!(!sig.is_degraded(), "signal mechanisms never degrade");
        // A lost probe falls back to signals even though the machine
        // is mid-recovery.
        let mut p = machine(1, 1);
        assert_eq!(
            p.step(RetryInput::Lost { seq: 0, can_degrade: true }),
            RetryOutput::Degrade { losses: 1 }
        );
        assert_eq!(p.step(RetryInput::Send { seq: 1 }), RetryOutput::Probe);
        assert_eq!(
            p.step(RetryInput::Lost { seq: 1, can_degrade: true }),
            RetryOutput::Retry { uintr: false }
        );
        assert_eq!(p.probe_seq(), None, "failed probe is cleared");
    }

    /// Counter reset on recovery: a probe landing over UINTR clears
    /// the loss streak, the degraded flag, and the degraded-send
    /// cadence; the next degrade needs a full fresh streak.
    #[test]
    fn counters_reset_on_recovery() {
        let mut m = machine(2, 2);
        for seq in 0..2 {
            m.step(RetryInput::Lost { seq, can_degrade: true });
        }
        assert!(m.is_degraded());
        assert_eq!(m.losses(), 2);
        // Degraded sends alternate signal, probe (probe_every = 2).
        assert_eq!(m.step(RetryInput::Send { seq: 10 }), RetryOutput::Signal);
        assert_eq!(m.step(RetryInput::Send { seq: 11 }), RetryOutput::Probe);
        assert_eq!(m.probe_seq(), Some(11));
        // The probe lands over UINTR: full recovery.
        assert_eq!(
            m.step(RetryInput::Landed { seq: 11, uintr: true }),
            RetryOutput::Recovered
        );
        assert_eq!(m.fingerprint(), (0, false, false, 0, None));
        assert_eq!(m.step(RetryInput::Send { seq: 12 }), RetryOutput::Fast);
        // One loss is below the threshold again — no instant re-degrade.
        assert_eq!(
            m.step(RetryInput::Lost { seq: 12, can_degrade: true }),
            RetryOutput::Retry { uintr: true }
        );
        assert!(!m.is_degraded());
    }

    /// A probe that lands over the *signal* path is no proof the fast
    /// path healed: the probe is dropped without recovery.
    #[test]
    fn signal_landing_is_not_recovery_proof() {
        let mut m = machine(1, 1);
        m.step(RetryInput::Lost { seq: 0, can_degrade: true });
        assert!(m.is_degraded());
        assert_eq!(m.step(RetryInput::Send { seq: 1 }), RetryOutput::Probe);
        assert_eq!(
            m.step(RetryInput::Landed { seq: 1, uintr: false }),
            RetryOutput::Noted
        );
        assert!(m.is_degraded(), "signal landing must not recover");
        assert_eq!(m.probe_seq(), None, "but the probe is consumed");
        // Same for a natural finish settling the probe's run.
        assert_eq!(m.step(RetryInput::Send { seq: 2 }), RetryOutput::Probe);
        m.step(RetryInput::Settled { seq: 2 });
        assert!(m.is_degraded());
        assert_eq!(m.probe_seq(), None);
    }

    /// Stale observations (wrong seq) never touch an armed probe.
    #[test]
    fn stale_seq_leaves_the_probe_armed() {
        let mut m = machine(1, 1);
        m.step(RetryInput::Lost { seq: 0, can_degrade: true });
        m.step(RetryInput::Send { seq: 5 });
        assert_eq!(m.probe_seq(), Some(5));
        m.step(RetryInput::Landed { seq: 4, uintr: true });
        assert_eq!(m.probe_seq(), Some(5), "stale landing kept the probe");
        assert!(m.is_degraded());
        m.step(RetryInput::Settled { seq: 4 });
        assert_eq!(m.probe_seq(), Some(5), "stale settle kept the probe");
    }

    fn machine_with_brownout(brownout_after: u32, degrade_after: u32) -> RetryMachine {
        RetryMachine::new(&WatchdogConfig {
            brownout_after,
            degrade_after,
            ..WatchdogConfig::default()
        })
    }

    /// The brownout tier fires exactly once, strictly between the
    /// thresholds, and the degrade verdict wins at its own threshold.
    #[test]
    fn brownout_sits_between_healthy_and_degraded() {
        let mut m = machine_with_brownout(2, 4);
        assert_eq!(m.tier(), Tier::Healthy);
        assert_eq!(
            m.step(RetryInput::Lost { seq: 0, can_degrade: true }),
            RetryOutput::Retry { uintr: true }
        );
        assert_eq!(
            m.step(RetryInput::Lost { seq: 1, can_degrade: true }),
            RetryOutput::Brownout { losses: 2 }
        );
        assert_eq!(m.tier(), Tier::Brownout);
        assert!(m.is_brownout() && !m.is_degraded());
        // Brownout is edge-triggered: the next loss is a plain retry
        // (still over UINTR — brownout does not change the path).
        assert_eq!(
            m.step(RetryInput::Lost { seq: 2, can_degrade: true }),
            RetryOutput::Retry { uintr: true }
        );
        assert_eq!(
            m.step(RetryInput::Lost { seq: 3, can_degrade: true }),
            RetryOutput::Degrade { losses: 4 }
        );
        assert_eq!(m.tier(), Tier::Degraded);
        assert!(!m.is_brownout(), "degrade supersedes brownout");
    }

    /// Any streak reset (a landing or a settle) drops the worker out of
    /// brownout; signal mechanisms never brown out at all.
    #[test]
    fn brownout_clears_on_streak_reset() {
        let mut m = machine_with_brownout(1, 3);
        m.step(RetryInput::Lost { seq: 0, can_degrade: true });
        assert_eq!(m.tier(), Tier::Brownout);
        m.step(RetryInput::Landed { seq: 0, uintr: true });
        assert_eq!(m.tier(), Tier::Healthy);
        assert_eq!(m.fingerprint(), (0, false, false, 0, None));

        m.step(RetryInput::Lost { seq: 1, can_degrade: true });
        assert_eq!(m.tier(), Tier::Brownout);
        m.step(RetryInput::Settled { seq: 1 });
        assert_eq!(m.tier(), Tier::Healthy);

        // can_degrade = false (signal mechanisms): no ladder at all.
        let mut sig = machine_with_brownout(1, 3);
        for seq in 0..8 {
            assert_eq!(
                sig.step(RetryInput::Lost { seq, can_degrade: false }),
                RetryOutput::Retry { uintr: false }
            );
        }
        assert_eq!(sig.tier(), Tier::Healthy);
    }

    /// Tier ordering backs the monotonicity proptests: the enum order
    /// is the severity order.
    #[test]
    fn tier_order_is_severity_order() {
        assert!(Tier::Healthy < Tier::Brownout);
        assert!(Tier::Brownout < Tier::Degraded);
    }

    /// The probe cadence counts only degraded sends: every
    /// `probe_every`-th send while degraded probes, the rest signal.
    #[test]
    fn probe_cadence_table() {
        let mut m = machine(1, 3);
        m.step(RetryInput::Lost { seq: 0, can_degrade: true });
        let mut outs = Vec::new();
        for seq in 1..=6 {
            outs.push(m.step(RetryInput::Send { seq }));
            // Each probe misses (no UINTR landing) so degradation holds.
            m.step(RetryInput::Settled { seq });
        }
        use RetryOutput::{Probe, Signal};
        assert_eq!(outs, vec![Signal, Signal, Probe, Signal, Signal, Probe]);
    }
}
