//! Retry policy for the lost-preemption watchdog.
//!
//! Under fault injection (`lp_sim::fault`) a `SENDUIPI`, kernel-timer
//! expiry, or signal can silently vanish. The runtime arms a watchdog
//! deadline for every preemption it issues; when the deadline passes
//! with the victim still running the same task, the preemption is
//! declared lost and re-sent under the capped exponential backoff
//! defined here. After [`WatchdogConfig::degrade_after`] consecutive
//! losses the worker's mechanism is degraded from user interrupts to
//! the kernel signal path, and every
//! [`WatchdogConfig::probe_every`]-th degraded preemption probes the
//! UINTR path again so the worker recovers once the fabric heals (see
//! `docs/FAULTS.md` for the full state machine).

use lp_sim::SimDur;

/// Capped exponential backoff: attempt `n` waits `base * 2^n`, never
/// more than `cap`.
///
/// ```
/// use libpreemptible::retry::Backoff;
/// use lp_sim::SimDur;
/// let b = Backoff::new(SimDur::micros(5), SimDur::micros(40));
/// assert_eq!(b.delay(0), SimDur::micros(5));
/// assert_eq!(b.delay(2), SimDur::micros(20));
/// assert_eq!(b.delay(10), SimDur::micros(40)); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: SimDur,
    cap: SimDur,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per attempt, capped at
    /// `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap < base`.
    pub fn new(base: SimDur, cap: SimDur) -> Self {
        assert!(cap >= base, "backoff cap {cap} below base {base}");
        Backoff { base, cap }
    }

    /// Delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> SimDur {
        let mult = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        let ns = self.base.as_nanos().saturating_mul(mult);
        SimDur::nanos(ns).min(self.cap)
    }
}

/// Watchdog parameters for the self-healing preemption path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long after issuing a preemption the runtime waits for it to
    /// land before declaring it lost. Must exceed the worst-case
    /// healthy delivery latency of the mechanism in use, or healthy
    /// deliveries race their own retries (the seq check makes the race
    /// harmless — the loser is a spurious handler run — but it wastes
    /// cycles).
    pub timeout: SimDur,
    /// Consecutive losses on the UINTR path before the worker degrades
    /// to signal delivery.
    pub degrade_after: u32,
    /// While degraded, every this-many-th preemption is sent through
    /// UINTR as a probe; a probe that lands recovers the worker.
    pub probe_every: u32,
    /// Retry schedule for re-sending a lost preemption.
    pub backoff: Backoff,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            timeout: SimDur::micros(50),
            degrade_after: 3,
            probe_every: 8,
            backoff: Backoff::new(SimDur::micros(5), SimDur::micros(80)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let b = Backoff::new(SimDur::micros(2), SimDur::micros(30));
        assert_eq!(b.delay(0), SimDur::micros(2));
        assert_eq!(b.delay(1), SimDur::micros(4));
        assert_eq!(b.delay(3), SimDur::micros(16));
        assert_eq!(b.delay(4), SimDur::micros(30));
        assert_eq!(b.delay(63), SimDur::micros(30));
        assert_eq!(b.delay(u32::MAX), SimDur::micros(30));
    }

    #[test]
    fn zero_base_stays_zero() {
        let b = Backoff::new(SimDur::ZERO, SimDur::micros(1));
        assert_eq!(b.delay(0), SimDur::ZERO);
        assert_eq!(b.delay(40), SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn cap_below_base_rejected() {
        Backoff::new(SimDur::micros(10), SimDur::micros(5));
    }

    #[test]
    fn default_config_is_sane() {
        let wd = WatchdogConfig::default();
        assert!(wd.timeout > SimDur::ZERO);
        assert!(wd.degrade_after >= 1);
        assert!(wd.probe_every >= 1);
        assert!(wd.backoff.delay(0) <= wd.timeout);
    }
}
