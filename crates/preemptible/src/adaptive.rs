//! The adaptive time-quantum controller — Algorithm 1 of the paper.
//!
//! Every control period (10 s in the paper; configurable here) the
//! controller reads the window summary (load μ, median and tail
//! latencies, mean queue length) and nudges the global time quantum:
//!
//! 1. fit a tail index α from past median/tail latencies;
//! 2. if μ > L_high, shrink the quantum by `k1`;
//! 3. if Q̄ > Q_threshold **or** α indicates a heavy tail (α < 2),
//!    shrink by `k2`;
//! 4. if μ < L_low, grow by `k3`;
//! 5. clamp into `[T_min, T_max]`.
//!
//! (The pseudocode in the paper writes `min{TQ - k, T_min}` and
//! `max{TQ + k, T_max}`; taken literally those pin the quantum to the
//! bounds immediately, so we implement the evidently intended clamp —
//! shrink-but-not-below-T_min, grow-but-not-above-T_max.)

use lp_sim::obs::{Event, Observer};
use lp_sim::{SimDur, SimTime};
use lp_stats::tail::dispersion_index;
use lp_stats::WindowSummary;

/// Hyperparameters of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// High-load threshold as a fraction of `max_load_rps`
    /// (paper: 90%).
    pub l_high_frac: f64,
    /// Low-load threshold as a fraction of `max_load_rps`
    /// (paper: 10%).
    pub l_low_frac: f64,
    /// The load the thresholds are relative to ("max load"),
    /// requests/second.
    pub max_load_rps: f64,
    /// Quantum decrement under high load.
    pub k1: SimDur,
    /// Quantum decrement under queue growth / heavy tail.
    pub k2: SimDur,
    /// Quantum increment under low load.
    pub k3: SimDur,
    /// Queue-length threshold (paper's Q_threshold).
    pub q_threshold: f64,
    /// Service-time SCV above which the window counts as heavy-tailed
    /// even when the (scheduler-shaped) latency dispersion looks calm.
    /// Exponential has SCV 1; the paper's bimodal mixes are ≫ 10.
    pub scv_heavy: f64,
    /// Minimum quantum (paper: 3 us, the UINTR-enabled floor).
    pub t_min: SimDur,
    /// Maximum quantum.
    pub t_max: SimDur,
    /// Control period (paper: 10 s; experiments shrink it to fit
    /// simulated minutes).
    pub period: SimDur,
}

impl AdaptiveConfig {
    /// The paper's hyperparameters for a given saturation load.
    pub fn paper_defaults(max_load_rps: f64) -> Self {
        AdaptiveConfig {
            l_high_frac: 0.9,
            l_low_frac: 0.1,
            max_load_rps,
            k1: SimDur::micros(5),
            k2: SimDur::micros(5),
            k3: SimDur::micros(10),
            q_threshold: 8.0,
            scv_heavy: 10.0,
            t_min: SimDur::micros(3),
            t_max: SimDur::micros(50),
            period: SimDur::secs(10),
        }
    }
}

/// Algorithm 1's controller state.
///
/// ```
/// use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
/// use lp_sim::SimDur;
/// use lp_stats::WindowSummary;
///
/// let cfg = AdaptiveConfig::paper_defaults(100_000.0);
/// let mut ctl = QuantumController::new(cfg, SimDur::micros(30));
/// // A heavily loaded, heavy-tailed window shrinks the quantum...
/// let summary = WindowSummary {
///     load_rps: 95_000.0,
///     throughput_rps: 90_000.0,
///     median_ns: 1_000,
///     p99_ns: 400_000,
///     mean_qlen: 12.0,
///     completed: 900_000,
///     arrived: 950_000,
///     service_scv: 140.0,
/// };
/// let q = ctl.update(&summary);
/// assert!(q < SimDur::micros(30));
/// ```
#[derive(Debug, Clone)]
pub struct QuantumController {
    cfg: AdaptiveConfig,
    quantum: SimDur,
    updates: u64,
}

impl QuantumController {
    /// Creates the controller with an initial quantum (clamped into
    /// `[t_min, t_max]`).
    pub fn new(cfg: AdaptiveConfig, initial: SimDur) -> Self {
        let quantum = initial.clamp(cfg.t_min, cfg.t_max);
        QuantumController {
            cfg,
            quantum,
            updates: 0,
        }
    }

    /// The current quantum.
    pub fn quantum(&self) -> SimDur {
        self.quantum
    }

    /// The configured control period.
    pub fn period(&self) -> SimDur {
        self.cfg.period
    }

    /// Number of control updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Applies one control period's Algorithm 1 step and returns the
    /// new quantum.
    pub fn update(&mut self, s: &WindowSummary) -> SimDur {
        self.updates += 1;
        let mut tq = self.quantum;
        // Line 5: fit the tail from past statistics. Latency
        // dispersion alone is a moving target — once preemption tames
        // the tail it looks light and the loop would oscillate — so
        // the fit combines it with the dispersion of observed
        // *service times*, which is a property of the workload.
        // Service-time dispersion is the primary signal when measured:
        // it is a property of the workload. The latency-based tail
        // index is the fallback, but it conflates queueing dispersion
        // (any workload near saturation) with service-time tails.
        let heavy = if s.service_scv > 0.0 {
            s.service_scv > self.cfg.scv_heavy
        } else {
            dispersion_index(s.p99_ns as f64, s.median_ns as f64) < 2.0
        };
        // A *confidently* light tail: service dispersion was measured
        // and is small.
        let light = s.service_scv > 0.0 && !heavy;

        let l_high = self.cfg.l_high_frac * self.cfg.max_load_rps;
        let l_low = self.cfg.l_low_frac * self.cfg.max_load_rps;

        // Lines 6-8: high load → shrink.
        if s.load_rps > l_high {
            tq = tq.saturating_sub(self.cfg.k1).max(self.cfg.t_min);
        }
        // Lines 9-11: queue buildup or heavy tail → shrink. One guard
        // beyond the paper's pseudocode: when the tail is measurably
        // *light*, queue growth signals load rather than head-of-line
        // blocking, and shrinking the quantum only adds preemption
        // overhead on top of the backlog (a positive-feedback collapse
        // we observed on workload B). Queue pressure therefore only
        // shrinks when the tail is not confidently light.
        if heavy || (s.mean_qlen > self.cfg.q_threshold && !light) {
            tq = tq.saturating_sub(self.cfg.k2).max(self.cfg.t_min);
        } else if s.completed > 0 {
            // The dual the paper describes around Fig. 9 ("under ...
            // lower dispersion in service time, the time quantum is
            // set to a higher value, consuming fewer CPU cycles for
            // preemption"): a demonstrably light tail with calm queues
            // relaxes the quantum even when load is high — aggressive
            // slicing buys nothing there and only pays overhead.
            tq = tq.saturating_add(self.cfg.k3).min(self.cfg.t_max);
        }
        // Lines 12-14: low load → relax.
        if s.load_rps < l_low {
            tq = tq.saturating_add(self.cfg.k3).min(self.cfg.t_max);
        }
        self.quantum = tq.clamp(self.cfg.t_min, self.cfg.t_max);
        self.quantum
    }

    /// [`update`](Self::update) plus a `quantum_adjusted` event when the
    /// quantum actually moved; the `quantum_ns` gauge follows either
    /// way.
    pub fn update_observed(
        &mut self,
        s: &WindowSummary,
        at: SimTime,
        obs: &mut Observer,
    ) -> SimDur {
        let old = self.quantum;
        let new = self.update(s);
        if new != old {
            obs.emit(
                at,
                Event::QuantumAdjusted {
                    old_ns: old.as_nanos(),
                    new_ns: new.as_nanos(),
                },
            );
        } else {
            obs.metrics_mut()
                .set_gauge(lp_sim::obs::Gauge::QuantumNs, new.as_nanos() as f64);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        let mut c = AdaptiveConfig::paper_defaults(100_000.0);
        c.k1 = SimDur::micros(4);
        c.k2 = SimDur::micros(4);
        c.k3 = SimDur::micros(10);
        c
    }

    fn summary(load: f64, median_us: f64, p99_us: f64, qlen: f64) -> WindowSummary {
        WindowSummary {
            load_rps: load,
            throughput_rps: load,
            median_ns: (median_us * 1_000.0) as u64,
            p99_ns: (p99_us * 1_000.0) as u64,
            mean_qlen: qlen,
            completed: 1_000,
            arrived: 1_000,
            // Tests drive the tail decision through alpha; SCV-driven
            // cases set this explicitly.
            service_scv: 0.0,
        }
    }

    #[test]
    fn high_load_light_tail_nets_growth() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        // Light tail: exp-like ratio ~6.6 -> alpha > 2, queues short.
        // High load shrinks by k1 but the dispersion rule grows by k3:
        // slicing a light-tailed workload finer buys nothing.
        let q = c.update(&summary(95_000.0, 5.0, 33.0, 1.0));
        assert_eq!(q, SimDur::micros(30 - 4 + 10));
    }

    #[test]
    fn heavy_tail_shrinks_by_k2() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        // Mid load, heavy tail (p99/median = 400).
        let q = c.update(&summary(50_000.0, 1.0, 400.0, 1.0));
        assert_eq!(q, SimDur::micros(26));
    }

    #[test]
    fn high_load_and_heavy_tail_shrink_twice() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        let q = c.update(&summary(95_000.0, 1.0, 400.0, 20.0));
        assert_eq!(q, SimDur::micros(22));
    }

    #[test]
    fn low_load_grows() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        // Low load (+k3) and light tail (+k3), clamped at t_max.
        let q = c.update(&summary(5_000.0, 5.0, 33.0, 0.1));
        assert_eq!(q, SimDur::micros(50));
    }

    #[test]
    fn clamps_at_t_min_and_t_max() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(4));
        // Repeated shrink pressure can never go below 3 us.
        for _ in 0..10 {
            c.update(&summary(99_000.0, 1.0, 500.0, 50.0));
        }
        assert_eq!(c.quantum(), SimDur::micros(3));
        // Repeated growth pressure can never exceed 50 us.
        for _ in 0..10 {
            c.update(&summary(1_000.0, 5.0, 33.0, 0.0));
        }
        assert_eq!(c.quantum(), SimDur::micros(50));
        assert_eq!(c.updates(), 20);
    }

    #[test]
    fn initial_quantum_is_clamped() {
        let c = QuantumController::new(cfg(), SimDur::millis(10));
        assert_eq!(c.quantum(), SimDur::micros(50));
        let c = QuantumController::new(cfg(), SimDur::nanos(1));
        assert_eq!(c.quantum(), SimDur::micros(3));
    }

    #[test]
    fn queue_threshold_triggers_without_heavy_tail() {
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        let q = c.update(&summary(50_000.0, 5.0, 33.0, 20.0));
        assert_eq!(q, SimDur::micros(26));
    }

    #[test]
    fn observed_update_emits_on_change_only() {
        use lp_sim::obs::{Counter, Gauge, Observer};
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        let mut obs = Observer::new(8);
        let at = SimTime::from_nanos(10_000_000);
        // Heavy tail: 30 → 26 us, one event.
        let q = c.update_observed(&summary(50_000.0, 1.0, 400.0, 1.0), at, &mut obs);
        assert_eq!(q, SimDur::micros(26));
        assert_eq!(obs.metrics().get(Counter::QuantumAdjustments), 1);
        assert_eq!(obs.metrics().gauge(Gauge::QuantumNs), 26_000.0);
        assert_eq!(
            obs.events().next().unwrap().ev,
            Event::QuantumAdjusted { old_ns: 30_000, new_ns: 26_000 }
        );
        // Pinned at t_min: repeated shrink pressure stops emitting once
        // the quantum can no longer move, but the gauge stays fresh.
        for _ in 0..10 {
            c.update_observed(&summary(99_000.0, 1.0, 500.0, 50.0), at, &mut obs);
        }
        assert_eq!(c.quantum(), SimDur::micros(3));
        assert!(obs.metrics().get(Counter::QuantumAdjustments) < 11);
        assert_eq!(obs.metrics().gauge(Gauge::QuantumNs), 3_000.0);
    }

    #[test]
    fn empty_window_is_stable() {
        // No completions: the dispersion rule must not fire on a
        // zero-sample window; only the low-load growth applies.
        let mut c = QuantumController::new(cfg(), SimDur::micros(30));
        let mut s = summary(0.0, 0.0, 0.0, 0.0);
        s.completed = 0;
        let q = c.update(&s);
        assert_eq!(q, SimDur::micros(40));
    }
}
