//! # libpreemptible — fast, adaptive, hardware-assisted user-space scheduling
//!
//! A Rust reproduction of **LibPreemptible** (HPCA 2024): a preemptive
//! user-level threading library built on Intel UINTR user interrupts,
//! with user-level timers (**LibUtimer**), a two-level scheduler, and an
//! adaptive time-quantum controller.
//!
//! Real UINTR requires Sapphire Rapids silicon and a patched kernel, so
//! this reproduction binds the (real, reusable) algorithmic layer to a
//! deterministic simulated machine (`lp-hw` + `lp-kernel`). The layers:
//!
//! | Paper concept | Here |
//! |---|---|
//! | `fn_launch` / `fn_resume` / `fn_completed` + context pool | [`context::ContextPool`] (allocate / park / take_parked / release) |
//! | LibUtimer (`utimer_init/register/arm_deadline`) | [`utimer::UtimerRegistry`], [`utimer::TimingWheel`] |
//! | scheduling policies on the library API | [`sched::SchedPolicy`] (select_cpu / enqueue / dispatch / time_slice), the [`policies`] zoo, and the legacy [`policy::Policy`] adapter |
//! | Algorithm 1 (adaptive time quantum) | [`adaptive::QuantumController`] |
//! | the runtime: dispatcher + workers + timer core | [`runtime::run`] |
//!
//! ## Quickstart
//!
//! ```
//! use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
//! use lp_sim::SimDur;
//! use lp_workload::{PhasedService, RateSchedule, ServiceDist};
//!
//! // 4 workers + 1 timer core, UINTR preemption, 5 us quantum.
//! let report = run(
//!     RuntimeConfig::default(),
//!     Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
//!     WorkloadSpec {
//!         source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_a1())),
//!         arrivals: RateSchedule::Constant(100_000.0),
//!         duration: SimDur::millis(100),
//!         warmup: SimDur::millis(10),
//!     },
//! );
//! println!("p99 = {:.1} us", report.p99_us());
//! assert!(report.is_conserved());
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod context;
pub mod policies;
pub mod policy;
pub mod report;
pub mod retry;
pub mod runtime;
pub mod sched;
pub mod utimer;

pub use adaptive::{AdaptiveConfig, QuantumController};
pub use context::{Context, ContextId, ContextPool};
pub use policies::{AdaptiveQuantum, Edf, Fifo, Mlfq, Srpt, Vruntime};
pub use policy::{
    ClassQuantum, FcfsPreempt, NextTask, NonPreemptive, Policy, QuantumSource, ResumeOrder,
    RoundRobin, SrptOracle,
};
pub use sched::{Dispatch, Enqueue, ResumeSel, SchedCtx, SchedPolicy, TaskView};
pub use report::RunReport;
pub use retry::{Backoff, RetryInput, RetryMachine, RetryOutput, WatchdogConfig};
pub use runtime::{run, LibPreemptibleSystem, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec};
