//! Run reports: everything an experiment reads off a finished run.

use lp_hw::{CoreClock, TimeClass};
use lp_sim::obs::{Exemplar, MetricsSnapshot, PhaseStats, TimedEvent};
use lp_sim::{SimDur, SimTime};
use lp_stats::{Histogram, TimeSeries};

/// Aggregated results of one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// The system that produced the run (for table labels).
    pub system: String,
    /// Offered load in requests/second (peak for bursty schedules).
    pub offered_rps: f64,
    /// Measured run length.
    pub duration: SimDur,
    /// Requests that arrived (after warmup).
    pub arrivals: u64,
    /// Requests that completed (after warmup).
    pub completions: u64,
    /// Requests dropped on context-pool exhaustion.
    pub dropped: u64,
    /// Requests still in flight at the end.
    pub in_flight: u64,
    /// Age of the oldest request still in flight when the run ended,
    /// ns (`0` when nothing was in flight). The completed-latency
    /// histogram censors requests the run never finished; this is the
    /// lower bound they put on the true worst-case response — see
    /// [`worst_case_ns`](Self::worst_case_ns).
    pub oldest_inflight_ns: u64,
    /// End-to-end latency of all completed requests.
    pub latency: Histogram,
    /// Latency split by workload class (class 0 = LC, 1 = BE).
    pub latency_by_class: Vec<Histogram>,
    /// Preemptions delivered (context actually switched out).
    pub preemptions: u64,
    /// Deliveries that raced completion (handler ran, nothing to park).
    pub spurious_preemptions: u64,
    /// Aggregate worker-core time accounting.
    pub cores: CoreClock,
    /// Per-worker accounting (workers only, not the timer core).
    pub per_worker: Vec<CoreClock>,
    /// Time accounting of the timer core(s), if any.
    pub timer_core: CoreClock,
    /// Per-second-ish series of completed-request latency (us), by
    /// class, when recording was enabled.
    pub latency_series: Vec<TimeSeries>,
    /// Measured arrival rate series (events; rate = count/frame).
    pub qps_series: Option<TimeSeries>,
    /// The quantum chosen over time (us), for adaptive runs.
    pub quantum_series: Option<TimeSeries>,
    /// Per-frame SLO-violation indicator series (frame mean = violation
    /// fraction), when an SLO and series recording were configured.
    pub slo_series: Option<TimeSeries>,
    /// The quantum at the end of the run.
    pub final_quantum: SimDur,
    /// Frozen metrics registry: every `lp_sim::obs` counter and gauge
    /// the run accumulated (always collected).
    pub metrics: MetricsSnapshot,
    /// The last [`RuntimeConfig::trace_capacity`] typed trace events,
    /// oldest first (empty when tracing was disabled).
    ///
    /// [`RuntimeConfig::trace_capacity`]: crate::RuntimeConfig::trace_capacity
    pub events: Vec<TimedEvent>,
    /// Events evicted from the circular trace window before the run
    /// ended: [`events`](Self::events) is a sliding window of the most
    /// recent `trace_capacity` events, and this counts what the wrap
    /// silently overwrote (0 when the window never filled, or when
    /// tracing was disabled and nothing was ever enqueued).
    pub events_dropped: u64,
    /// Tail attribution: always-on per-phase and end-to-end latency
    /// histograms plus the pinned worst-request exemplars, each with a
    /// phase breakdown summing exactly to its end-to-end latency (see
    /// `docs/TRACING.md`).
    pub phases: PhaseStats,
}

impl RunReport {
    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration.is_zero() {
            return 0.0;
        }
        self.completions as f64 / self.duration.as_secs_f64()
    }

    /// Median latency in microseconds.
    pub fn median_us(&self) -> f64 {
        self.latency.median() as f64 / 1_000.0
    }

    /// p99 latency in microseconds — the paper's tail metric.
    pub fn p99_us(&self) -> f64 {
        self.latency.p99() as f64 / 1_000.0
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Fraction of completed requests exceeding `slo`.
    pub fn slo_violations(&self, slo: SimDur) -> f64 {
        self.latency.frac_above(slo.as_nanos())
    }

    /// Latency histogram of one class (empty histogram if the class
    /// never appeared).
    pub fn class_latency(&self, class: u8) -> &Histogram {
        static EMPTY: std::sync::OnceLock<Histogram> = std::sync::OnceLock::new();
        self.latency_by_class
            .get(class as usize)
            .unwrap_or_else(|| EMPTY.get_or_init(Histogram::new))
    }

    /// Preemption-mechanism time over useful work across the workers —
    /// Fig. 1 (right)'s y-axis.
    pub fn preemption_overhead_ratio(&self) -> f64 {
        self.cores.preemption_over_work()
    }

    /// Censoring-aware worst-case response, ns: the worst completed
    /// latency or the age of the oldest request the run never
    /// finished, whichever is larger. Under overload the unfinished
    /// backlog holds the true worst offenders, so `latency.max()`
    /// alone understates (and with zero completions reports `0` for)
    /// the worst case.
    pub fn worst_case_ns(&self) -> u64 {
        self.latency.max().max(self.oldest_inflight_ns)
    }

    /// Conservation check: every arrival is accounted for.
    pub fn is_conserved(&self) -> bool {
        self.arrivals == self.completions + self.dropped + self.in_flight
    }

    /// The captured trace as JSONL, one event per line, oldest first
    /// (see `docs/TRACING.md` for the schema). Byte-deterministic for
    /// identical seeds and configurations.
    ///
    /// Window semantics: the trace ring keeps only the most recent
    /// `trace_capacity` events, so under a small capacity this is the
    /// *tail* of the run, not the whole run —
    /// [`events_dropped`](Self::events_dropped) counts how many
    /// earlier events the wrap evicted. Size the capacity to the run
    /// (or check `events_dropped == 0`) before treating the JSONL as
    /// complete.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for te in &self.events {
            te.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// The captured trace as a Perfetto / Chrome `trace_event` JSON
    /// document (open it in `chrome://tracing` or ui.perfetto.dev):
    /// one track per worker, fiber slices reconstructed from
    /// `task_start` → `preempt`/`task_finish` span pairs. Byte-stable
    /// for identical event windows; subject to the same sliding-window
    /// semantics as [`events_jsonl`](Self::events_jsonl).
    pub fn perfetto_json(&self) -> String {
        lp_sim::obs::chrome_trace(&self.events)
    }

    /// The worst pinned request, if any completed — the run's top
    /// exemplar, whose phase breakdown sums to its latency.
    pub fn worst_exemplar(&self) -> Option<Exemplar> {
        self.phases.worst()
    }

    /// Worker utilization (work only) over the run.
    pub fn worker_utilization(&self) -> f64 {
        if self.per_worker.is_empty() || self.duration.is_zero() {
            return 0.0;
        }
        let end = SimTime::ZERO + self.duration;
        let total: f64 = self
            .per_worker
            .iter()
            .map(|c| c.fraction(TimeClass::Work, end))
            .sum();
        total / self.per_worker.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut latency = Histogram::new();
        latency.record_n(10_000, 99);
        latency.record(1_000_000);
        let mut cores = CoreClock::new();
        cores.charge(TimeClass::Work, SimDur::micros(900));
        cores.charge(TimeClass::Preemption, SimDur::micros(90));
        RunReport {
            system: "test".into(),
            offered_rps: 1_000.0,
            duration: SimDur::secs(1),
            arrivals: 105,
            completions: 100,
            dropped: 2,
            in_flight: 3,
            oldest_inflight_ns: 2_000_000,
            latency,
            latency_by_class: vec![],
            preemptions: 10,
            spurious_preemptions: 1,
            cores,
            per_worker: vec![],
            timer_core: CoreClock::new(),
            latency_series: vec![],
            qps_series: None,
            quantum_series: None,
            slo_series: None,
            final_quantum: SimDur::micros(30),
            metrics: MetricsSnapshot::default(),
            events: vec![],
            events_dropped: 0,
            phases: PhaseStats::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.throughput_rps() - 100.0).abs() < 1e-9);
        assert!((r.median_us() - 10.0).abs() < 0.2);
        assert!(r.p99_us() < 20.0);
        assert!((r.preemption_overhead_ratio() - 0.1).abs() < 1e-9);
        assert!(r.is_conserved());
        assert!((r.slo_violations(SimDur::micros(50)) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn class_latency_missing_class_is_empty() {
        let r = report();
        assert!(r.class_latency(1).is_empty());
    }

    #[test]
    fn conservation_detects_loss() {
        let mut r = report();
        r.completions = 90;
        assert!(!r.is_conserved());
    }
}
