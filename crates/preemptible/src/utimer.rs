//! LibUtimer: fast, hardware-assisted preemptive timers in user space
//! (§IV-A).
//!
//! Each worker thread registers a 64-byte-aligned *deadline address*
//! holding the TSC value of its next wanted preemption. A dedicated
//! timer thread polls the TSC and `SENDUIPI`s any worker whose deadline
//! passed. The three paper interfaces map as:
//!
//! * `utimer_init`   → [`UtimerRegistry::new`] (+ the runtime spawning
//!   the timer-core poll events)
//! * `utimer_register` → [`UtimerRegistry::register`]
//! * `utimer_arm_deadline` → [`UtimerRegistry::arm`] (a plain memory
//!   write — no syscall, the whole point of the design)
//!
//! For "applications with large thread counts and request for higher
//! number of timers" the paper opts into a **timing wheel** (its ref.
//! \[64\]); [`TimingWheel`] implements a hierarchical one for such
//! deployments, with a property test pinning its behaviour to the
//! naive scan. The runtime's registry keeps the scan — with one slot
//! per worker the linear pass *is* the fast path, exactly like the
//! paper's per-worker deadline cachelines.

use lp_sim::obs::{Event, Observer};
use lp_sim::SimTime;

/// Identifies a registered deadline slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(usize);

impl SlotId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The deadline-slot registry the timer core scans.
///
/// Deadlines are absolute [`SimTime`]s (the simulation's TSC). A slot is
/// *armed* when it holds a deadline and *disarmed* otherwise.
///
/// ```
/// use libpreemptible::utimer::UtimerRegistry;
/// use lp_sim::SimTime;
///
/// let mut reg = UtimerRegistry::new();
/// let slot = reg.register();
/// reg.arm(slot, SimTime::from_nanos(5_000));
/// assert_eq!(reg.expired(SimTime::from_nanos(4_999)), vec![]);
/// assert_eq!(reg.expired(SimTime::from_nanos(5_000)), vec![slot]);
/// // Firing disarms: no double delivery.
/// assert_eq!(reg.expired(SimTime::from_nanos(9_000)), vec![]);
/// ```
#[derive(Debug, Default)]
pub struct UtimerRegistry {
    deadlines: Vec<Option<SimTime>>,
    armed: usize,
}

impl UtimerRegistry {
    /// Creates an empty registry (`utimer_init`'s bookkeeping half).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new deadline slot (`utimer_register`): allocates the
    /// dedicated cacheline and wires the kernel-side handler fd, which
    /// the runtime charges separately.
    pub fn register(&mut self) -> SlotId {
        self.deadlines.push(None);
        SlotId(self.deadlines.len() - 1)
    }

    /// Arms `slot` to fire at `deadline` (`utimer_arm_deadline`): just a
    /// memory write.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never registered.
    pub fn arm(&mut self, slot: SlotId, deadline: SimTime) {
        let d = self
            .deadlines
            .get_mut(slot.0)
            .expect("arming unregistered slot");
        if d.is_none() {
            self.armed += 1;
        }
        *d = Some(deadline);
    }

    /// Disarms `slot` (worker finished or yielded before expiry).
    pub fn disarm(&mut self, slot: SlotId) {
        if let Some(d) = self.deadlines.get_mut(slot.0) {
            if d.take().is_some() {
                self.armed -= 1;
            }
        }
    }

    /// [`arm`](Self::arm) plus a `deadline_armed` event.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never registered.
    pub fn arm_observed(&mut self, slot: SlotId, deadline: SimTime, at: SimTime, obs: &mut Observer) {
        self.arm(slot, deadline);
        obs.emit(
            at,
            Event::DeadlineArmed {
                slot: slot.0 as u16,
                deadline_ns: deadline.as_nanos(),
            },
        );
    }

    /// [`disarm`](Self::disarm) plus a `deadline_disarmed` event — only
    /// emitted when the slot was actually armed.
    pub fn disarm_observed(&mut self, slot: SlotId, at: SimTime, obs: &mut Observer) {
        let was_armed = self.deadline(slot).is_some();
        self.disarm(slot);
        if was_armed {
            obs.emit(at, Event::DeadlineDisarmed { slot: slot.0 as u16 });
        }
    }

    /// The armed deadline of `slot`, if any.
    pub fn deadline(&self, slot: SlotId) -> Option<SimTime> {
        self.deadlines.get(slot.0).copied().flatten()
    }

    /// Scans all slots (the timer core's `RDTSC` loop body) and returns
    /// the slots whose deadlines are `<= now`, disarming them.
    pub fn expired(&mut self, now: SimTime) -> Vec<SlotId> {
        let mut fired = Vec::new();
        for (i, d) in self.deadlines.iter_mut().enumerate() {
            if let Some(dl) = *d {
                if dl <= now {
                    *d = None;
                    self.armed -= 1;
                    fired.push(SlotId(i));
                }
            }
        }
        fired
    }

    /// [`expired`](Self::expired) plus a `timer_poll` event recording
    /// how many deadlines this scan fired (including zero — poll
    /// frequency itself is a cost the paper measures).
    pub fn expired_observed(&mut self, now: SimTime, obs: &mut Observer) -> Vec<SlotId> {
        let fired = self.expired(now);
        obs.emit(now, Event::TimerPoll { expired: fired.len() as u16 });
        fired
    }

    /// The earliest armed deadline (lets the simulated timer core — and
    /// a real `UMWAIT`-based one — sleep to the next interesting
    /// instant instead of spinning).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.iter().copied().flatten().min()
    }

    /// Number of registered slots.
    pub fn slots(&self) -> usize {
        self.deadlines.len()
    }

    /// Number of armed slots.
    pub fn armed(&self) -> usize {
        self.armed
    }
}

/// A hierarchical timing wheel over absolute deadlines.
///
/// Two levels of `WHEEL_SLOTS` buckets; level 0 covers
/// `WHEEL_SLOTS * tick` of future time at `tick` resolution, level 1
/// covers `WHEEL_SLOTS² * tick` more coarsely (entries cascade down when
/// their level-1 bucket turns current). Deadlines beyond both levels sit
/// in an overflow list that re-files on every cascade.
#[derive(Debug)]
pub struct TimingWheel<T> {
    tick_ns: u64,
    /// Current time, in ticks.
    now_tick: u64,
    level0: Vec<Vec<(SimTime, T)>>,
    level1: Vec<Vec<(SimTime, T)>>,
    overflow: Vec<(SimTime, T)>,
    len: usize,
}

const WHEEL_SLOTS: usize = 256;

impl<T> TimingWheel<T> {
    /// Creates a wheel with the given tick resolution in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is zero.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimingWheel {
            tick_ns,
            now_tick: 0,
            level0: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            level1: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Entries currently filed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are filed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.tick_ns
    }

    fn file(&mut self, deadline: SimTime, value: T) {
        let tick = self.tick_of(deadline).max(self.now_tick);
        let delta = tick - self.now_tick;
        if delta < WHEEL_SLOTS as u64 {
            let slot = (tick as usize) % WHEEL_SLOTS;
            self.level0[slot].push((deadline, value));
        } else if delta < (WHEEL_SLOTS * WHEEL_SLOTS) as u64 {
            let slot = ((tick / WHEEL_SLOTS as u64) as usize) % WHEEL_SLOTS;
            self.level1[slot].push((deadline, value));
        } else {
            self.overflow.push((deadline, value));
        }
    }

    /// Inserts an entry firing at `deadline`.
    ///
    /// Deadlines at or before the current time fire on the next
    /// [`advance`](Self::advance).
    pub fn insert(&mut self, deadline: SimTime, value: T) {
        self.len += 1;
        self.file(deadline, value);
    }

    /// Advances the wheel to `now`, returning every entry whose deadline
    /// is `<= now` (unordered — the caller treats same-poll expiries as
    /// simultaneous, exactly like the registry scan).
    pub fn advance(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let target_tick = self.tick_of(now);
        let mut fired = Vec::new();
        while self.now_tick <= target_tick {
            let slot = (self.now_tick as usize) % WHEEL_SLOTS;
            // Cascade level 1 down when entering a new level-1 bucket.
            if self.now_tick.is_multiple_of(WHEEL_SLOTS as u64) {
                let l1slot = ((self.now_tick / WHEEL_SLOTS as u64) as usize) % WHEEL_SLOTS;
                let entries = std::mem::take(&mut self.level1[l1slot]);
                for (d, v) in entries {
                    self.len -= 1;
                    self.insert(d, v);
                }
                if self.now_tick.is_multiple_of((WHEEL_SLOTS * WHEEL_SLOTS) as u64) {
                    let overflow = std::mem::take(&mut self.overflow);
                    for (d, v) in overflow {
                        self.len -= 1;
                        self.insert(d, v);
                    }
                }
            }
            // Drain the current level-0 bucket; entries filed for a
            // future lap of the wheel stay.
            let bucket = std::mem::take(&mut self.level0[slot]);
            for (d, v) in bucket {
                if self.tick_of(d) <= self.now_tick && d <= now {
                    self.len -= 1;
                    fired.push((d, v));
                } else {
                    self.level0[slot].push((d, v));
                }
            }
            if self.now_tick == target_tick {
                break;
            }
            self.now_tick += 1;
        }
        // Same-tick stragglers: entries in the current bucket with
        // deadline <= now can remain if filed after we advanced; sweep
        // them too.
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn registry_register_arm_fire() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let b = r.register();
        r.arm(a, t(100));
        r.arm(b, t(200));
        assert_eq!(r.armed(), 2);
        assert_eq!(r.next_deadline(), Some(t(100)));
        assert_eq!(r.expired(t(150)), vec![a]);
        assert_eq!(r.armed(), 1);
        assert_eq!(r.expired(t(250)), vec![b]);
        assert_eq!(r.armed(), 0);
        assert_eq!(r.next_deadline(), None);
    }

    #[test]
    fn registry_rearm_overwrites() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        r.arm(a, t(100));
        r.arm(a, t(500)); // quantum extended
        assert_eq!(r.armed(), 1);
        assert_eq!(r.expired(t(200)), vec![]);
        assert_eq!(r.expired(t(500)), vec![a]);
    }

    #[test]
    fn registry_disarm() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        r.arm(a, t(100));
        r.disarm(a);
        assert_eq!(r.armed(), 0);
        assert!(r.expired(t(1_000)).is_empty());
        // Disarming a disarmed slot is a no-op.
        r.disarm(a);
        assert_eq!(r.armed(), 0);
    }

    #[test]
    fn registry_simultaneous_expiry_order_is_slot_order() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let b = r.register();
        let c = r.register();
        r.arm(c, t(10));
        r.arm(a, t(10));
        r.arm(b, t(10));
        assert_eq!(r.expired(t(10)), vec![a, b, c]);
    }

    #[test]
    fn registry_observed_emits_schema_events() {
        use lp_sim::obs::{Counter, Observer};
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let mut obs = Observer::new(16);
        r.arm_observed(a, t(500), t(100), &mut obs);
        // Empty poll still records the scan.
        assert!(r.expired_observed(t(200), &mut obs).is_empty());
        assert_eq!(r.expired_observed(t(600), &mut obs), vec![a]);
        // Disarming an already-fired slot emits nothing.
        r.disarm_observed(a, t(700), &mut obs);
        r.arm_observed(a, t(900), t(800), &mut obs);
        r.disarm_observed(a, t(850), &mut obs);
        let m = obs.metrics();
        assert_eq!(m.get(Counter::DeadlinesArmed), 2);
        assert_eq!(m.get(Counter::DeadlinesDisarmed), 1);
        assert_eq!(m.get(Counter::TimerPolls), 2);
        assert_eq!(m.get(Counter::DeadlinesFired), 1);
        let evs: Vec<_> = obs.events().copied().collect();
        assert_eq!(evs[0].ev, Event::DeadlineArmed { slot: 0, deadline_ns: 500 });
        assert_eq!(evs[1].ev, Event::TimerPoll { expired: 0 });
        assert_eq!(evs[2].ev, Event::TimerPoll { expired: 1 });
        assert_eq!(evs[4].ev, Event::DeadlineDisarmed { slot: 0 });
    }

    #[test]
    #[should_panic(expected = "arming unregistered slot")]
    fn arming_unregistered_panics() {
        let mut r = UtimerRegistry::new();
        r.arm(SlotId(3), t(1));
    }

    #[test]
    fn wheel_basic_fire() {
        let mut w = TimingWheel::new(100);
        w.insert(t(250), "a");
        w.insert(t(950), "b");
        assert_eq!(w.len(), 2);
        let fired = w.advance(t(300));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "a");
        let fired = w.advance(t(1_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "b");
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_past_deadline_fires_immediately() {
        let mut w = TimingWheel::new(100);
        w.advance(t(5_000));
        w.insert(t(1_000), 7); // already past
        let fired = w.advance(t(5_000));
        assert_eq!(fired, vec![(t(1_000), 7)]);
    }

    #[test]
    fn wheel_level1_cascade() {
        let mut w = TimingWheel::new(10);
        // 256 slots * 10ns = 2560ns level-0 horizon; this goes to L1.
        w.insert(t(30_000), "far");
        assert_eq!(w.advance(t(29_000)).len(), 0);
        let fired = w.advance(t(30_000));
        assert_eq!(fired.len(), 1, "cascaded entry must fire");
    }

    #[test]
    fn wheel_overflow_horizon() {
        let mut w = TimingWheel::new(10);
        // Beyond 256*256*10 ns = 655_360 ns.
        w.insert(t(2_000_000), "vfar");
        assert_eq!(w.advance(t(1_999_999)).len(), 0);
        let fired = w.advance(t(2_000_000));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn wheel_same_lap_collision() {
        let mut w = TimingWheel::new(10);
        // Same level-0 slot, different laps: 50ns and 50ns + 2560ns.
        w.insert(t(50), 1);
        w.insert(t(50 + 2_560), 2);
        let fired = w.advance(t(60));
        assert_eq!(fired, vec![(t(50), 1)]);
        let fired = w.advance(t(3_000));
        assert_eq!(fired, vec![(t(50 + 2_560), 2)]);
    }
}
