//! LibUtimer: fast, hardware-assisted preemptive timers in user space
//! (§IV-A).
//!
//! Each worker thread registers a 64-byte-aligned *deadline address*
//! holding the TSC value of its next wanted preemption. A dedicated
//! timer thread polls the TSC and `SENDUIPI`s any worker whose deadline
//! passed. The three paper interfaces map as:
//!
//! * `utimer_init`   → [`UtimerRegistry::new`] (+ the runtime spawning
//!   the timer-core poll events)
//! * `utimer_register` → [`UtimerRegistry::register`]
//! * `utimer_arm_deadline` → [`UtimerRegistry::arm`] (a plain memory
//!   write — no syscall, the whole point of the design)
//!
//! The registry mirrors the paper's layout: per slot, one
//! 64-byte-aligned **hot line** holding exactly what the timer core's
//! scan loop reads (the deadline plus its arm generation), with cold
//! metadata (labels) in a separate table so the scan never drags it
//! through the cache. With one slot per worker the linear pass *is*
//! the fast path, exactly like the paper's per-worker deadline
//! cachelines.
//!
//! For "applications with large thread counts and request for higher
//! number of timers" the paper opts into a **timing wheel** (its ref.
//! \[64\]); [`TimingWheel`] is that interface, and since the engine's
//! timing-wheel rebuild it is a thin adapter over the *shared*
//! hierarchical wheel core in `lp_sim` (one wheel implementation, two
//! call sites: the simulator's `EventQueue` and this type). The
//! property test pinning its behaviour to the naive scan is retained
//! unchanged.

use lp_sim::obs::{Event, Observer};
use lp_sim::{EventQueue, SimTime};

/// Identifies a registered deadline slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(usize);

impl SlotId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One slot's hot state, padded and aligned to its own 64-byte cache
/// line — the simulated analogue of the paper's dedicated deadline
/// cacheline per worker. The timer core's scan touches nothing else,
/// and two workers' lines never false-share.
#[derive(Debug, Clone, Copy, Default)]
#[repr(align(64))]
struct DeadlineLine {
    /// The armed deadline, if any (absolute simulated TSC).
    deadline: Option<SimTime>,
    /// Bumped on every [`UtimerRegistry::arm`]: distinguishes re-arms
    /// of the same slot in traces.
    arm_gen: u32,
}

/// Cold per-slot metadata, deliberately *off* the scan path.
#[derive(Debug, Clone, Default)]
struct SlotMeta {
    label: Option<String>,
}

/// The deadline-slot registry the timer core scans.
///
/// Deadlines are absolute [`SimTime`]s (the simulation's TSC). A slot is
/// *armed* when it holds a deadline and *disarmed* otherwise.
///
/// ```
/// use libpreemptible::utimer::UtimerRegistry;
/// use lp_sim::SimTime;
///
/// let mut reg = UtimerRegistry::new();
/// let slot = reg.register();
/// reg.arm(slot, SimTime::from_nanos(5_000));
/// assert_eq!(reg.expired(SimTime::from_nanos(4_999)), vec![]);
/// assert_eq!(reg.expired(SimTime::from_nanos(5_000)), vec![slot]);
/// // Firing disarms: no double delivery.
/// assert_eq!(reg.expired(SimTime::from_nanos(9_000)), vec![]);
/// ```
#[derive(Debug, Default)]
pub struct UtimerRegistry {
    /// Hot: one aligned line per slot; the only thing `expired`'s scan
    /// loop reads.
    lines: Vec<DeadlineLine>,
    /// Cold: same indexing as `lines`.
    meta: Vec<SlotMeta>,
    armed: usize,
}

impl UtimerRegistry {
    /// Creates an empty registry (`utimer_init`'s bookkeeping half).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new deadline slot (`utimer_register`): allocates the
    /// dedicated cacheline and wires the kernel-side handler fd, which
    /// the runtime charges separately.
    pub fn register(&mut self) -> SlotId {
        self.lines.push(DeadlineLine::default());
        self.meta.push(SlotMeta::default());
        SlotId(self.lines.len() - 1)
    }

    /// [`register`](Self::register) with a diagnostic label, kept in
    /// the cold table so the scan path never loads it.
    pub fn register_labeled(&mut self, label: &str) -> SlotId {
        let slot = self.register();
        self.meta[slot.0].label = Some(label.to_string());
        slot
    }

    /// The diagnostic label of `slot`, if one was given at
    /// registration.
    pub fn label(&self, slot: SlotId) -> Option<&str> {
        self.meta.get(slot.0).and_then(|m| m.label.as_deref())
    }

    /// How many times `slot` has been armed — re-arms of one slot are
    /// distinguishable in traces.
    pub fn arm_generation(&self, slot: SlotId) -> u32 {
        self.lines.get(slot.0).map_or(0, |l| l.arm_gen)
    }

    /// Arms `slot` to fire at `deadline` (`utimer_arm_deadline`): just a
    /// memory write.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never registered.
    pub fn arm(&mut self, slot: SlotId, deadline: SimTime) {
        let line = self
            .lines
            .get_mut(slot.0)
            .expect("arming unregistered slot");
        if line.deadline.is_none() {
            self.armed += 1;
        }
        line.deadline = Some(deadline);
        line.arm_gen = line.arm_gen.wrapping_add(1);
    }

    /// Disarms `slot` (worker finished or yielded before expiry).
    pub fn disarm(&mut self, slot: SlotId) {
        if let Some(line) = self.lines.get_mut(slot.0) {
            if line.deadline.take().is_some() {
                self.armed -= 1;
            }
        }
    }

    /// [`arm`](Self::arm) plus a `deadline_armed` event.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never registered.
    pub fn arm_observed(&mut self, slot: SlotId, deadline: SimTime, at: SimTime, obs: &mut Observer) {
        self.arm(slot, deadline);
        obs.emit(
            at,
            Event::DeadlineArmed {
                slot: slot.0 as u16,
                deadline_ns: deadline.as_nanos(),
            },
        );
    }

    /// [`disarm`](Self::disarm) plus a `deadline_disarmed` event — only
    /// emitted when the slot was actually armed.
    pub fn disarm_observed(&mut self, slot: SlotId, at: SimTime, obs: &mut Observer) {
        let was_armed = self.deadline(slot).is_some();
        self.disarm(slot);
        if was_armed {
            obs.emit(at, Event::DeadlineDisarmed { slot: slot.0 as u16 });
        }
    }

    /// The armed deadline of `slot`, if any.
    pub fn deadline(&self, slot: SlotId) -> Option<SimTime> {
        self.lines.get(slot.0).and_then(|l| l.deadline)
    }

    /// Scans all slots (the timer core's `RDTSC` loop body) and returns
    /// the slots whose deadlines are `<= now`, disarming them.
    pub fn expired(&mut self, now: SimTime) -> Vec<SlotId> {
        let mut fired = Vec::new();
        for (i, line) in self.lines.iter_mut().enumerate() {
            if let Some(dl) = line.deadline {
                if dl <= now {
                    line.deadline = None;
                    self.armed -= 1;
                    fired.push(SlotId(i));
                }
            }
        }
        fired
    }

    /// [`expired`](Self::expired) plus a `timer_poll` event recording
    /// how many deadlines this scan fired (including zero — poll
    /// frequency itself is a cost the paper measures).
    pub fn expired_observed(&mut self, now: SimTime, obs: &mut Observer) -> Vec<SlotId> {
        let fired = self.expired(now);
        obs.emit(now, Event::TimerPoll { expired: fired.len() as u16 });
        fired
    }

    /// The earliest armed deadline (lets the simulated timer core — and
    /// a real `UMWAIT`-based one — sleep to the next interesting
    /// instant instead of spinning).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.lines.iter().filter_map(|l| l.deadline).min()
    }

    /// Number of registered slots.
    pub fn slots(&self) -> usize {
        self.lines.len()
    }

    /// Number of armed slots.
    pub fn armed(&self) -> usize {
        self.armed
    }
}

/// A hierarchical timing wheel over absolute deadlines — the
/// high-timer-count option of §IV-A.
///
/// Since the engine rebuild this is a thin adapter over the shared
/// wheel core (`lp_sim::EventQueue`): four cascading levels of 1024
/// slots at 1 ns resolution with O(1) insert, far-future entries
/// overflowing to a packed-key heap. One wheel implementation serves both the
/// simulator's event loop and this deadline store; the duplicated
/// two-level cascade that used to live here is gone.
///
/// [`advance`](Self::advance) fires exactly the entries with
/// `deadline <= now`, identical to the old implementation (whose tick
/// granularity only shaped its internal buckets, never its fire
/// condition) — pinned by the `timing_wheel_matches_naive_scan`
/// property test.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// The requested tick resolution. The shared core always files at
    /// exact 1 ns resolution, so this no longer steers bucket geometry;
    /// it is kept (and validated) for interface compatibility with the
    /// paper's `utimer`-wheel constructor.
    tick_ns: u64,
    q: EventQueue<T>,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel with the given tick resolution in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ns` is zero.
    pub fn new(tick_ns: u64) -> Self {
        assert!(tick_ns > 0, "tick must be positive");
        TimingWheel {
            tick_ns,
            q: EventQueue::new(),
        }
    }

    /// The tick resolution this wheel was constructed with.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Entries currently filed.
    pub fn len(&self) -> usize {
        self.q.live_len()
    }

    /// `true` when no entries are filed.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Inserts an entry firing at `deadline`.
    ///
    /// Deadlines at or before the current time fire on the next
    /// [`advance`](Self::advance).
    pub fn insert(&mut self, deadline: SimTime, value: T) {
        self.q.push(deadline, value);
    }

    /// Advances the wheel to `now`, returning every entry whose deadline
    /// is `<= now` (in deadline order, insertion order among ties — a
    /// refinement of the old unordered contract, which callers treated
    /// as simultaneous anyway).
    pub fn advance(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let mut fired = Vec::new();
        while self.q.peek_time().is_some_and(|t| t <= now) {
            let (d, v) = self.q.pop().expect("peeked entry");
            fired.push((d, v));
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn registry_register_arm_fire() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let b = r.register();
        r.arm(a, t(100));
        r.arm(b, t(200));
        assert_eq!(r.armed(), 2);
        assert_eq!(r.next_deadline(), Some(t(100)));
        assert_eq!(r.expired(t(150)), vec![a]);
        assert_eq!(r.armed(), 1);
        assert_eq!(r.expired(t(250)), vec![b]);
        assert_eq!(r.armed(), 0);
        assert_eq!(r.next_deadline(), None);
    }

    #[test]
    fn registry_rearm_overwrites() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        r.arm(a, t(100));
        r.arm(a, t(500)); // quantum extended
        assert_eq!(r.armed(), 1);
        assert_eq!(r.expired(t(200)), vec![]);
        assert_eq!(r.expired(t(500)), vec![a]);
    }

    #[test]
    fn registry_disarm() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        r.arm(a, t(100));
        r.disarm(a);
        assert_eq!(r.armed(), 0);
        assert!(r.expired(t(1_000)).is_empty());
        // Disarming a disarmed slot is a no-op.
        r.disarm(a);
        assert_eq!(r.armed(), 0);
    }

    #[test]
    fn registry_simultaneous_expiry_order_is_slot_order() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let b = r.register();
        let c = r.register();
        r.arm(c, t(10));
        r.arm(a, t(10));
        r.arm(b, t(10));
        assert_eq!(r.expired(t(10)), vec![a, b, c]);
    }

    #[test]
    fn registry_labels_live_in_the_cold_table() {
        let mut r = UtimerRegistry::new();
        let plain = r.register();
        let named = r.register_labeled("worker-3");
        assert_eq!(r.label(plain), None);
        assert_eq!(r.label(named), Some("worker-3"));
        // Labels are inert metadata: arming/firing ignores them.
        r.arm(named, t(10));
        assert_eq!(r.expired(t(10)), vec![named]);
        assert_eq!(r.label(named), Some("worker-3"));
        assert_eq!(r.label(SlotId(99)), None);
    }

    #[test]
    fn registry_arm_generation_counts_rearms() {
        let mut r = UtimerRegistry::new();
        let a = r.register();
        assert_eq!(r.arm_generation(a), 0);
        r.arm(a, t(100));
        r.arm(a, t(200)); // re-arm, same slot
        assert_eq!(r.arm_generation(a), 2);
        r.disarm(a);
        assert_eq!(r.arm_generation(a), 2, "disarm is not an arm");
        r.arm(a, t(300));
        assert_eq!(r.arm_generation(a), 3);
    }

    #[test]
    fn deadline_lines_are_cacheline_sized() {
        // The paper's contract: one worker's deadline write can never
        // false-share another's line.
        assert_eq!(std::mem::align_of::<DeadlineLine>(), 64);
        assert_eq!(std::mem::size_of::<DeadlineLine>(), 64);
    }

    #[test]
    fn registry_observed_emits_schema_events() {
        use lp_sim::obs::{Counter, Observer};
        let mut r = UtimerRegistry::new();
        let a = r.register();
        let mut obs = Observer::new(16);
        r.arm_observed(a, t(500), t(100), &mut obs);
        // Empty poll still records the scan.
        assert!(r.expired_observed(t(200), &mut obs).is_empty());
        assert_eq!(r.expired_observed(t(600), &mut obs), vec![a]);
        // Disarming an already-fired slot emits nothing.
        r.disarm_observed(a, t(700), &mut obs);
        r.arm_observed(a, t(900), t(800), &mut obs);
        r.disarm_observed(a, t(850), &mut obs);
        let m = obs.metrics();
        assert_eq!(m.get(Counter::DeadlinesArmed), 2);
        assert_eq!(m.get(Counter::DeadlinesDisarmed), 1);
        assert_eq!(m.get(Counter::TimerPolls), 2);
        assert_eq!(m.get(Counter::DeadlinesFired), 1);
        let evs: Vec<_> = obs.events().copied().collect();
        assert_eq!(evs[0].ev, Event::DeadlineArmed { slot: 0, deadline_ns: 500 });
        assert_eq!(evs[1].ev, Event::TimerPoll { expired: 0 });
        assert_eq!(evs[2].ev, Event::TimerPoll { expired: 1 });
        assert_eq!(evs[4].ev, Event::DeadlineDisarmed { slot: 0 });
    }

    #[test]
    #[should_panic(expected = "arming unregistered slot")]
    fn arming_unregistered_panics() {
        let mut r = UtimerRegistry::new();
        r.arm(SlotId(3), t(1));
    }

    #[test]
    fn wheel_basic_fire() {
        let mut w = TimingWheel::new(100);
        w.insert(t(250), "a");
        w.insert(t(950), "b");
        assert_eq!(w.len(), 2);
        let fired = w.advance(t(300));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "a");
        let fired = w.advance(t(1_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "b");
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_past_deadline_fires_immediately() {
        let mut w = TimingWheel::new(100);
        w.advance(t(5_000));
        w.insert(t(1_000), 7); // already past
        let fired = w.advance(t(5_000));
        assert_eq!(fired, vec![(t(1_000), 7)]);
    }

    #[test]
    fn wheel_level1_cascade() {
        let mut w = TimingWheel::new(10);
        // Far enough out to sit above the first wheel level; must
        // cascade down and fire exactly on time.
        w.insert(t(30_000), "far");
        assert_eq!(w.advance(t(29_000)).len(), 0);
        let fired = w.advance(t(30_000));
        assert_eq!(fired.len(), 1, "cascaded entry must fire");
    }

    #[test]
    fn wheel_overflow_horizon() {
        let mut w = TimingWheel::new(10);
        // Beyond the old two-level horizon (256*256*10 ns = 655_360 ns).
        w.insert(t(2_000_000), "vfar");
        assert_eq!(w.advance(t(1_999_999)).len(), 0);
        let fired = w.advance(t(2_000_000));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn wheel_same_lap_collision() {
        let mut w = TimingWheel::new(10);
        // Same old level-0 slot, different laps: 50ns and 50ns + 2560ns.
        w.insert(t(50), 1);
        w.insert(t(50 + 2_560), 2);
        let fired = w.advance(t(60));
        assert_eq!(fired, vec![(t(50), 1)]);
        let fired = w.advance(t(3_000));
        assert_eq!(fired, vec![(t(50 + 2_560), 2)]);
    }

    #[test]
    fn wheel_far_future_overflow_to_heap() {
        // Past the shared core's 2^40 ns wheel horizon: the entry rides
        // the overflow heap and still fires exactly.
        let mut w = TimingWheel::new(1);
        let far = (1u64 << 40) + 123;
        w.insert(t(far), "beyond-horizon");
        assert_eq!(w.advance(t(far - 1)).len(), 0);
        assert_eq!(w.advance(t(far)), vec![(t(far), "beyond-horizon")]);
    }
}
