//! Property tests for the core library's invariants.

use libpreemptible::adaptive::{AdaptiveConfig, QuantumController};
use libpreemptible::context::ContextPool;
use libpreemptible::utimer::{TimingWheel, UtimerRegistry};
use lp_sim::{SimDur, SimTime};
use lp_stats::WindowSummary;
use proptest::prelude::*;

/// Operations on the pool, applied as far as their preconditions allow.
#[derive(Debug, Clone)]
enum PoolOp {
    Alloc,
    ParkActive(usize),
    Resume,
    ReleaseActive(usize),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => Just(PoolOp::Alloc),
        2 => (0usize..8).prop_map(PoolOp::ParkActive),
        2 => Just(PoolOp::Resume),
        3 => (0usize..8).prop_map(PoolOp::ReleaseActive),
    ]
}

proptest! {
    /// The context pool never loses or duplicates a context under any
    /// interleaving of allocate/park/resume/release.
    #[test]
    fn context_pool_conserves(ops in proptest::collection::vec(pool_op(), 1..300)) {
        let cap = 16;
        let mut pool = ContextPool::with_capacity(cap);
        let mut active = Vec::new();
        let mut parked = 0usize;
        let mut next_req = 0u64;
        for op in ops {
            match op {
                PoolOp::Alloc => {
                    match pool.allocate(next_req, SimTime::ZERO, SimDur::micros(1), 0) {
                        Ok(id) => {
                            prop_assert!(active.len() + parked < cap, "allocation beyond capacity");
                            active.push(id);
                            next_req += 1;
                        }
                        Err(_) => {
                            prop_assert_eq!(active.len() + parked, cap, "spurious exhaustion");
                        }
                    }
                }
                PoolOp::ParkActive(i) => {
                    if !active.is_empty() {
                        let id = active.remove(i % active.len());
                        pool.park(id);
                        parked += 1;
                    }
                }
                PoolOp::Resume => {
                    if let Some(id) = pool.take_parked() {
                        parked -= 1;
                        active.push(id);
                    } else {
                        prop_assert_eq!(parked, 0);
                    }
                }
                PoolOp::ReleaseActive(i) => {
                    if !active.is_empty() {
                        let id = active.remove(i % active.len());
                        pool.release(id);
                    }
                }
            }
            prop_assert_eq!(pool.live(), active.len() + parked);
            prop_assert_eq!(pool.parked(), parked);
            prop_assert_eq!(pool.free(), cap - active.len() - parked);
        }
    }

    /// The timing wheel fires exactly the entries a naive scan would,
    /// at any sequence of advances.
    #[test]
    fn timing_wheel_matches_naive_scan(
        deadlines in proptest::collection::vec(0u64..3_000_000, 1..150),
        advances in proptest::collection::vec(1u64..400_000, 1..30),
        tick in prop_oneof![Just(10u64), Just(100), Just(1_000)],
    ) {
        let mut wheel = TimingWheel::new(tick);
        let mut naive: Vec<(u64, usize)> = Vec::new();
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.insert(SimTime::from_nanos(d), i);
            naive.push((d, i));
        }
        let mut now = 0u64;
        for a in advances {
            now += a;
            let t = SimTime::from_nanos(now);
            let mut fired: Vec<usize> = wheel.advance(t).into_iter().map(|(_, v)| v).collect();
            let mut expect: Vec<usize> = naive
                .iter()
                .filter(|(d, _)| *d <= now)
                .map(|(_, v)| *v)
                .collect();
            naive.retain(|(d, _)| *d > now);
            fired.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(fired, expect, "mismatch at now={}", now);
        }
        prop_assert_eq!(wheel.len(), naive.len());
    }

    /// The utimer registry never fires early, never loses an armed
    /// deadline, and never double-fires.
    #[test]
    fn registry_fires_exactly_once(
        deadlines in proptest::collection::vec(1u64..100_000, 1..64),
        step in 1u64..10_000,
    ) {
        let mut reg = UtimerRegistry::new();
        let slots: Vec<_> = deadlines
            .iter()
            .map(|&d| {
                let s = reg.register();
                reg.arm(s, SimTime::from_nanos(d));
                s
            })
            .collect();
        let mut fired_at: Vec<Option<u64>> = vec![None; slots.len()];
        let mut now = 0;
        while reg.armed() > 0 {
            now += step;
            for slot in reg.expired(SimTime::from_nanos(now)) {
                let idx = slots.iter().position(|&s| s == slot).unwrap();
                prop_assert!(fired_at[idx].is_none(), "double fire");
                prop_assert!(deadlines[idx] <= now, "fired early");
                prop_assert!(now - deadlines[idx] < step + 1, "fired too late");
                fired_at[idx] = Some(now);
            }
        }
        prop_assert!(fired_at.iter().all(Option::is_some), "lost a deadline");
    }

    /// Algorithm 1 output is always within [t_min, t_max] whatever the
    /// window contents.
    #[test]
    fn controller_always_in_bounds(
        load in 0.0f64..1_000_000.0,
        median in 0u64..1_000_000,
        p99 in 0u64..100_000_000,
        qlen in 0.0f64..1_000.0,
        initial_us in 1u64..1_000,
        steps in 1usize..50,
    ) {
        let cfg = AdaptiveConfig::paper_defaults(100_000.0);
        let (t_min, t_max) = (cfg.t_min, cfg.t_max);
        let mut c = QuantumController::new(cfg, SimDur::micros(initial_us));
        for _ in 0..steps {
            let q = c.update(&WindowSummary {
                load_rps: load,
                throughput_rps: load,
                median_ns: median,
                p99_ns: p99,
                mean_qlen: qlen,
                completed: 1,
                arrived: 1,
                service_scv: qlen, // any non-negative value
            });
            prop_assert!(q >= t_min && q <= t_max, "quantum {q} out of bounds");
        }
    }
}
