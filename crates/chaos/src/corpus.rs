//! The pinned regression corpus: minimized cliffs on disk.
//!
//! `results/chaos_corpus.json` stores every minimized worst-case plan
//! the search has found, together with the evaluation context and the
//! scores both runtime variants achieved when the entry was minted. CI
//! replays every entry at `LP_JOBS=1` and `LP_JOBS=8` and diffs the
//! bytes — a cliff that stops reproducing, or a hardened runtime that
//! stops beating the unhardened one, fails the build.
//!
//! Serialization is hand-rolled (the workspace has no serde): every
//! number is an integer, field order is fixed, and plans round-trip
//! through a parenthesized text form ([`plan_to_text`] /
//! [`plan_from_text`]) whose grammar is:
//!
//! ```text
//! plan  := atom | combinator
//! atom  := drop(ppm) | hog(ppm,hog_us) | jitter(ppm,spike_us) | spike(rps)
//! comb  := win(from_us,dur_us,plan) | over(plan;...) | seq(plan;...)
//! ```

use crate::eval::{EvalConfig, EvalOutcome};
use crate::plan::{ChaosAtom, ChaosPlan};

/// One pinned cliff.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Stable entry name (`cliff-<n>` by convention).
    pub name: String,
    /// The evaluation context the scores were minted under.
    pub cfg: EvalConfig,
    /// The minimized plan.
    pub plan: ChaosPlan,
    /// Objective of the unhardened runtime under the plan.
    pub unhardened_objective: u64,
    /// Worst-case response of the unhardened runtime, ns.
    pub unhardened_worst_ns: u64,
    /// Objective of the hardened (admission-armed) runtime.
    pub hardened_objective: u64,
    /// Worst-case response of the hardened runtime, ns.
    pub hardened_worst_ns: u64,
}

impl CorpusEntry {
    /// Builds an entry from a fresh pair of evaluations.
    pub fn new(
        name: impl Into<String>,
        cfg: EvalConfig,
        plan: ChaosPlan,
        unhardened: &EvalOutcome,
        hardened: &EvalOutcome,
    ) -> CorpusEntry {
        CorpusEntry {
            name: name.into(),
            cfg,
            plan,
            unhardened_objective: unhardened.objective(),
            unhardened_worst_ns: unhardened.worst_ns,
            hardened_objective: hardened.objective(),
            hardened_worst_ns: hardened.worst_ns,
        }
    }
}

// ---------------------------------------------------------------------------
// Plan text form.
// ---------------------------------------------------------------------------

/// Renders a plan in the corpus text form (see module docs).
pub fn plan_to_text(plan: &ChaosPlan) -> String {
    let mut s = String::new();
    write_plan(plan, &mut s);
    s
}

fn write_plan(plan: &ChaosPlan, out: &mut String) {
    use std::fmt::Write;
    match plan {
        ChaosPlan::Atom(a) => match *a {
            ChaosAtom::UintrDropBurst { rate_ppm } => {
                write!(out, "drop({rate_ppm})").expect("string write")
            }
            ChaosAtom::CoreHogStorm { rate_ppm, hog_us } => {
                write!(out, "hog({rate_ppm},{hog_us})").expect("string write")
            }
            ChaosAtom::TimerJitterWave { rate_ppm, spike_us } => {
                write!(out, "jitter({rate_ppm},{spike_us})").expect("string write")
            }
            ChaosAtom::ArrivalSpike { extra_rps } => {
                write!(out, "spike({extra_rps})").expect("string write")
            }
        },
        ChaosPlan::Window { body, from_us, dur_us } => {
            write!(out, "win({from_us},{dur_us},").expect("string write");
            write_plan(body, out);
            out.push(')');
        }
        ChaosPlan::Overlay(cs) => write_children("over", cs, out),
        ChaosPlan::Sequence(cs) => write_children("seq", cs, out),
    }
}

fn write_children(tag: &str, cs: &[ChaosPlan], out: &mut String) {
    out.push_str(tag);
    out.push('(');
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        write_plan(c, out);
    }
    out.push(')');
}

/// Parses the corpus text form back into a plan. Returns `None` on any
/// syntax error (the replay binary treats that as corpus corruption).
pub fn plan_from_text(s: &str) -> Option<ChaosPlan> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    let plan = p.plan()?;
    (p.i == p.s.len()).then_some(plan)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn plan(&mut self) -> Option<ChaosPlan> {
        let tag = self.ident()?;
        self.expect(b'(')?;
        let plan = match tag.as_str() {
            "drop" => ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: self.num()? }),
            "hog" => {
                let rate_ppm = self.num()?;
                self.expect(b',')?;
                ChaosPlan::Atom(ChaosAtom::CoreHogStorm { rate_ppm, hog_us: self.num()? })
            }
            "jitter" => {
                let rate_ppm = self.num()?;
                self.expect(b',')?;
                ChaosPlan::Atom(ChaosAtom::TimerJitterWave { rate_ppm, spike_us: self.num()? })
            }
            "spike" => ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: self.num()? }),
            "win" => {
                let from_us = self.num()?;
                self.expect(b',')?;
                let dur_us = self.num()?;
                self.expect(b',')?;
                let body = self.plan()?;
                ChaosPlan::Window { body: Box::new(body), from_us, dur_us }
            }
            "over" => ChaosPlan::Overlay(self.children()?),
            "seq" => ChaosPlan::Sequence(self.children()?),
            _ => return None,
        };
        self.expect(b')')?;
        Some(plan)
    }

    fn children(&mut self) -> Option<Vec<ChaosPlan>> {
        let mut out = vec![self.plan()?];
        while self.peek() == Some(b';') {
            self.i += 1;
            out.push(self.plan()?);
        }
        Some(out)
    }

    fn ident(&mut self) -> Option<String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_lowercase()) {
            self.i += 1;
        }
        (self.i > start).then(|| String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
    }

    fn num(&mut self) -> Option<u32> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i]).ok()?.parse().ok()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus JSON.
// ---------------------------------------------------------------------------

/// Current corpus schema version.
pub const CORPUS_VERSION: u32 = 1;

/// Serializes the corpus with fixed field order and integer values
/// only — byte-stable for identical entries.
pub fn to_json(entries: &[CorpusEntry]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"version\": {CORPUS_VERSION},").expect("string write");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let c = &e.cfg;
        write!(
            out,
            "    {{\"name\": \"{}\", \"seed\": {}, \"workers\": {}, \"base_rps\": {}, \
             \"horizon_us\": {}, \"slo_us\": {}, \"service_us\": {}, \"quantum_us\": {}, \
             \"plan\": \"{}\", \"unhardened_objective\": {}, \"unhardened_worst_ns\": {}, \
             \"hardened_objective\": {}, \"hardened_worst_ns\": {}}}",
            e.name,
            c.seed,
            c.workers,
            c.base_rps,
            c.horizon_us,
            c.slo_us,
            c.service_us,
            c.quantum_us,
            plan_to_text(&e.plan),
            e.unhardened_objective,
            e.unhardened_worst_ns,
            e.hardened_objective,
            e.hardened_worst_ns,
        )
        .expect("string write");
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a corpus file. Returns `None` on any structural error —
/// callers treat that as corpus corruption and fail loudly rather
/// than replaying a partial corpus.
pub fn from_json(s: &str) -> Option<Vec<CorpusEntry>> {
    if field_u64(s, "version")? != u64::from(CORPUS_VERSION) {
        return None;
    }
    let open = s.find("\"entries\"")?;
    let lo = s[open..].find('[')? + open;
    let hi = s.rfind(']')?;
    let body = &s[lo + 1..hi];
    let mut entries = Vec::new();
    let mut rest = body;
    while let Some(a) = rest.find('{') {
        let b = rest[a..].find('}')? + a;
        let obj = &rest[a..=b];
        entries.push(parse_entry(obj)?);
        rest = &rest[b + 1..];
    }
    (!entries.is_empty()).then_some(entries)
}

fn parse_entry(obj: &str) -> Option<CorpusEntry> {
    Some(CorpusEntry {
        name: field_str(obj, "name")?,
        cfg: EvalConfig {
            workers: field_u64(obj, "workers")? as usize,
            seed: field_u64(obj, "seed")?,
            base_rps: field_u64(obj, "base_rps")? as u32,
            horizon_us: field_u64(obj, "horizon_us")?,
            slo_us: field_u64(obj, "slo_us")?,
            service_us: field_u64(obj, "service_us")?,
            quantum_us: field_u64(obj, "quantum_us")?,
        },
        plan: plan_from_text(&field_str(obj, "plan")?)?,
        unhardened_objective: field_u64(obj, "unhardened_objective")?,
        unhardened_worst_ns: field_u64(obj, "unhardened_worst_ns")?,
        hardened_objective: field_u64(obj, "hardened_objective")?,
        hardened_worst_ns: field_u64(obj, "hardened_worst_ns")?,
    })
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let a = obj.find(&pat)? + pat.len();
    let b = obj[a..].find('"')? + a;
    Some(obj[a..b].to_string())
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let a = obj.find(&pat)? + pat.len();
    let digits: String = obj[a..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> ChaosPlan {
        ChaosPlan::Overlay(vec![
            ChaosPlan::windowed(
                ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 500_000 }),
                100,
                5_000,
            ),
            ChaosPlan::Sequence(vec![
                ChaosPlan::Atom(ChaosAtom::CoreHogStorm { rate_ppm: 20_000, hog_us: 800 }),
                ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 9_000 }),
            ]),
        ])
    }

    #[test]
    fn plan_text_round_trips() {
        let p = sample_plan();
        let text = plan_to_text(&p);
        assert_eq!(text, "over(win(100,5000,drop(500000));seq(hog(20000,800);spike(9000)))");
        assert_eq!(plan_from_text(&text), Some(p));
        // Malformed text is rejected, not best-effort-parsed.
        assert_eq!(plan_from_text("over(drop(1)"), None);
        assert_eq!(plan_from_text("drop(1)x"), None);
        assert_eq!(plan_from_text("frob(1)"), None);
    }

    #[test]
    fn corpus_json_round_trips_byte_stably() {
        let entry = CorpusEntry {
            name: "cliff-1".into(),
            cfg: EvalConfig::default(),
            plan: sample_plan(),
            unhardened_objective: 1_234_567,
            unhardened_worst_ns: 900_000,
            hardened_objective: 456_789,
            hardened_worst_ns: 400_000,
        };
        let json = to_json(&[entry.clone()]);
        let parsed = from_json(&json).expect("parse");
        assert_eq!(parsed, vec![entry]);
        // Re-serializing parsed entries reproduces the bytes exactly.
        assert_eq!(to_json(&parsed), json);
    }

    #[test]
    fn corrupted_corpora_are_rejected() {
        assert!(from_json("{}").is_none());
        assert!(from_json("{\"version\": 99, \"entries\": []}").is_none());
        let good = to_json(&[CorpusEntry {
            name: "c".into(),
            cfg: EvalConfig::default(),
            plan: ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 1 }),
            unhardened_objective: 1,
            unhardened_worst_ns: 1,
            hardened_objective: 1,
            hardened_worst_ns: 1,
        }]);
        assert!(from_json(&good).is_some());
        assert!(from_json(&good.replace("spike(1)", "spoke(1)")).is_none());
    }
}
