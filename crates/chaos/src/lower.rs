//! Lowering: from the typed plan algebra to the runtime's inputs.
//!
//! A normalized [`ChaosPlan`] splits into two artifacts the runtime
//! already understands:
//!
//! * fault atoms become time-bounded [`FaultWindow`]s on a
//!   [`FaultPlan`] (plus the scalar magnitude knobs — hog and spike
//!   lengths — set to the maximum any span asks for, since the
//!   injector has one magnitude per kind);
//! * arrival spikes become a [`RateSchedule::Phases`] schedule layered
//!   on top of the base rate, with phase boundaries at every spike
//!   edge.
//!
//! Lowering is pure arithmetic over integer-quantized parameters: the
//! same plan always lowers to the same bytes.

use lp_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use lp_sim::SimDur;
use lp_workload::RateSchedule;

use crate::plan::{AtomSpan, ChaosAtom, ChaosPlan};

/// The runtime-ready form of one chaos plan.
#[derive(Debug, Clone)]
pub struct LoweredPlan {
    /// Fault windows + magnitude knobs, ready for `RuntimeConfig`.
    pub faults: FaultPlan,
    /// Offered load over time (base rate plus antagonist spikes).
    pub arrivals: RateSchedule,
}

/// Lowers `plan` over `[0, horizon_us)` against a base offered load of
/// `base_rps`.
pub fn lower(plan: &ChaosPlan, base_rps: u32, horizon_us: u64) -> LoweredPlan {
    let spans = plan.normalize(horizon_us);
    LoweredPlan {
        faults: lower_faults(&spans),
        arrivals: lower_arrivals(&spans, base_rps, horizon_us),
    }
}

fn lower_faults(spans: &[AtomSpan]) -> FaultPlan {
    let mut fp = FaultPlan::disabled();
    for s in spans {
        let (kind, rate_ppm) = match s.atom {
            ChaosAtom::UintrDropBurst { rate_ppm } => (FaultKind::IpiDrop, rate_ppm),
            ChaosAtom::CoreHogStorm { rate_ppm, hog_us } => {
                fp.core_hog_ns = fp.core_hog_ns.max(u64::from(hog_us) * 1_000);
                (FaultKind::CoreHog, rate_ppm)
            }
            ChaosAtom::TimerJitterWave { rate_ppm, spike_us } => {
                fp.timer_spike_ns = fp.timer_spike_ns.max(u64::from(spike_us) * 1_000);
                (FaultKind::TimerSpike, rate_ppm)
            }
            ChaosAtom::ArrivalSpike { .. } => continue,
        };
        if rate_ppm == 0 || s.from_us >= s.until_us {
            continue;
        }
        fp.windows.push(FaultWindow {
            kind,
            rate: f64::from(rate_ppm) / 1e6,
            from_ns: s.from_us * 1_000,
            until_ns: s.until_us * 1_000,
        });
    }
    fp
}

fn lower_arrivals(spans: &[AtomSpan], base_rps: u32, horizon_us: u64) -> RateSchedule {
    let spikes: Vec<&AtomSpan> = spans
        .iter()
        .filter(|s| matches!(s.atom, ChaosAtom::ArrivalSpike { .. }))
        .collect();
    if spikes.is_empty() {
        return RateSchedule::Constant(f64::from(base_rps));
    }
    // Phase boundaries at every spike edge (clipped to the horizon),
    // then one phase per interval with the sum of open spikes added to
    // the base rate.
    let mut edges: Vec<u64> = vec![0, horizon_us];
    for s in &spikes {
        edges.push(s.from_us.min(horizon_us));
        edges.push(s.until_us.min(horizon_us));
    }
    edges.sort_unstable();
    edges.dedup();
    let mut phases = Vec::with_capacity(edges.len());
    for w in edges.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a >= b {
            continue;
        }
        let extra: u64 = spikes
            .iter()
            .filter(|s| s.from_us <= a && b <= s.until_us)
            .map(|s| match s.atom {
                ChaosAtom::ArrivalSpike { extra_rps } => u64::from(extra_rps),
                _ => 0,
            })
            .sum();
        phases.push((SimDur::micros(b - a), f64::from(base_rps) + extra as f64));
    }
    RateSchedule::Phases(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::fault::Site;
    use lp_sim::SimTime;

    #[test]
    fn fault_atoms_become_windows_with_magnitudes() {
        let p = ChaosPlan::Overlay(vec![
            ChaosPlan::windowed(
                ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 500_000 }),
                100,
                200,
            ),
            ChaosPlan::Atom(ChaosAtom::CoreHogStorm { rate_ppm: 10_000, hog_us: 800 }),
        ]);
        let l = lower(&p, 8_000, 1_000);
        assert_eq!(l.faults.windows.len(), 2);
        assert!(l.faults.site_armed(Site::Ipi));
        assert!(l.faults.site_armed(Site::Core));
        assert_eq!(l.faults.core_hog_ns, 800_000);
        let drop = l
            .faults
            .windows
            .iter()
            .find(|w| w.kind == FaultKind::IpiDrop)
            .expect("drop window");
        assert_eq!((drop.from_ns, drop.until_ns), (100_000, 300_000));
        assert!((drop.rate - 0.5).abs() < 1e-12);
        // No arrival spikes: the base load is untouched.
        assert!(matches!(l.arrivals, RateSchedule::Constant(r) if r == 8_000.0));
    }

    #[test]
    fn arrival_spikes_become_phases_summing_over_overlaps() {
        let p = ChaosPlan::Overlay(vec![
            ChaosPlan::windowed(
                ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 4_000 }),
                0,
                600,
            ),
            ChaosPlan::windowed(
                ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 1_000 }),
                400,
                600,
            ),
        ]);
        let l = lower(&p, 8_000, 1_000);
        let at = |us: u64| l.arrivals.rate_at(SimTime::from_nanos(us * 1_000));
        // Spike 1 covers [0, 600), spike 2 covers [400, 1000).
        assert_eq!(at(100) as u64, 12_000);
        assert_eq!(at(500) as u64, 13_000);
        assert_eq!(at(700) as u64, 9_000);
        assert_eq!(at(999) as u64, 9_000);
    }

    #[test]
    fn lowering_is_deterministic() {
        let p = ChaosPlan::Sequence(vec![
            ChaosPlan::Atom(ChaosAtom::TimerJitterWave { rate_ppm: 250_000, spike_us: 90 }),
            ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 750_000 }),
        ]);
        let a = lower(&p, 5_000, 40_000);
        let b = lower(&p, 5_000, 40_000);
        assert_eq!(format!("{:?}", a.faults), format!("{:?}", b.faults));
        assert_eq!(format!("{:?}", a.arrivals), format!("{:?}", b.arrivals));
    }
}
