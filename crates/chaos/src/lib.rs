//! # lp-chaos — the chaos adversary
//!
//! Everything the fault injector (`lp_sim::fault`) can do, this crate
//! *composes*: core-hog storms, UINTR drop bursts, timer-jitter waves,
//! and antagonist-tenant arrival spikes combine through a small typed
//! algebra ([`plan::ChaosPlan`]) into time-structured attack plans. A
//! deterministic adversarial search ([`search()`]) then hunts the plan
//! space for worst-case response cliffs, a delta-debugging minimizer
//! shrinks each cliff to its load-bearing core, and the survivors are
//! pinned as a regression corpus (`results/chaos_corpus.json`,
//! [`corpus`]) that CI replays byte-identically.
//!
//! Determinism contract (the whole point):
//!
//! * every random draw — plan sampling, search moves, tie-breaking —
//!   comes from the frozen `streams::CHAOS` substream of the master
//!   seed (`lp_sim::rng`); the `chaos-rng` lint (`lp-check`) bans any
//!   other entropy source from this crate;
//! * candidate evaluation fans out through
//!   `lp_sim::par::ordered_map`, which collects results in submission
//!   order, so the search trajectory is byte-identical at any
//!   `LP_JOBS`;
//! * plan parameters are integer-quantized (rates in ppm, times in
//!   µs), so corpus serialization round-trips exactly — no float
//!   formatting ambiguity can drift a replay.
//!
//! See `docs/CHAOS.md` for the workflow and the full determinism
//! argument.

#![warn(missing_docs)]

pub mod corpus;
pub mod eval;
pub mod lower;
pub mod plan;
pub mod search;

pub use corpus::CorpusEntry;
pub use eval::{evaluate, evaluate_report, runtime_config, EvalConfig, EvalOutcome};
pub use lower::{lower, LoweredPlan};
pub use plan::{ChaosAtom, ChaosPlan};
pub use search::{search, minimize, SearchBudget};
