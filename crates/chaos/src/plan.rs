//! The compositional fault-plan algebra.
//!
//! A [`ChaosPlan`] is a tree: leaves are typed attack primitives
//! ([`ChaosAtom`]), inner nodes place them in time. [`ChaosPlan::Window`]
//! restricts its body to a sub-interval, [`ChaosPlan::Overlay`] runs
//! children simultaneously, and [`ChaosPlan::Sequence`] splits the
//! enclosing interval evenly among consecutive children. Normalization
//! ([`ChaosPlan::normalize`]) flattens any tree into a list of
//! `(atom, from, until)` spans over a fixed horizon — the only form the
//! lowering to `FaultPlan` windows and arrival phases consumes.
//!
//! All parameters are integers (rates in parts-per-million, times in
//! microseconds) so plans hash, compare, and serialize exactly.

/// One attack primitive, active over whatever span the enclosing
/// combinators give it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosAtom {
    /// UINTR drop burst: each `SENDUIPI` in the span is dropped with
    /// probability `rate_ppm / 1e6` (lowered to an `IpiDrop` window).
    UintrDropBurst {
        /// Drop probability, parts per million.
        rate_ppm: u32,
    },
    /// Core-hog storm: each task start in the span hogs its core for
    /// `hog_us` with probability `rate_ppm / 1e6` (a `CoreHog` window;
    /// preemptions cannot land inside the stall).
    CoreHogStorm {
        /// Hog probability per task start, parts per million.
        rate_ppm: u32,
        /// Stall length, microseconds.
        hog_us: u32,
    },
    /// Timer-jitter wave: each kernel-timer arm in the span fires
    /// `spike_us` late with probability `rate_ppm / 1e6` (a
    /// `TimerSpike` window).
    TimerJitterWave {
        /// Spike probability per arm, parts per million.
        rate_ppm: u32,
        /// Extra delay, microseconds.
        spike_us: u32,
    },
    /// Antagonist-tenant arrival spike: `extra_rps` requests/second of
    /// additional offered load over the span (lowered to a
    /// `RateSchedule::Phases` segment, not a fault window).
    ArrivalSpike {
        /// Additional offered load, requests per second.
        extra_rps: u32,
    },
}

impl ChaosAtom {
    /// Short lower-case tag used by the corpus text form and labels.
    pub const fn tag(self) -> &'static str {
        match self {
            ChaosAtom::UintrDropBurst { .. } => "drop",
            ChaosAtom::CoreHogStorm { .. } => "hog",
            ChaosAtom::TimerJitterWave { .. } => "jitter",
            ChaosAtom::ArrivalSpike { .. } => "spike",
        }
    }
}

/// A typed, composable attack plan. See the module docs for the
/// semantics of each combinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosPlan {
    /// A primitive, active over the whole enclosing span.
    Atom(ChaosAtom),
    /// The body, restricted to `[from_us, from_us + dur_us)` relative
    /// to the enclosing span's start (clipped to the span's end).
    Window {
        /// Body of the window.
        body: Box<ChaosPlan>,
        /// Offset of the window start within the enclosing span, µs.
        from_us: u32,
        /// Window length, µs.
        dur_us: u32,
    },
    /// All children active simultaneously over the enclosing span.
    Overlay(Vec<ChaosPlan>),
    /// Children active back-to-back: the enclosing span is split into
    /// equal consecutive segments, one per child.
    Sequence(Vec<ChaosPlan>),
}

/// One normalized span: `atom` is active on `[from_us, until_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomSpan {
    /// The active primitive.
    pub atom: ChaosAtom,
    /// Span start, µs from run start.
    pub from_us: u64,
    /// Span end (exclusive), µs from run start.
    pub until_us: u64,
}

impl ChaosPlan {
    /// Convenience constructor: `body` windowed to
    /// `[from_us, from_us + dur_us)`.
    pub fn windowed(body: ChaosPlan, from_us: u32, dur_us: u32) -> ChaosPlan {
        ChaosPlan::Window { body: Box::new(body), from_us, dur_us }
    }

    /// Flattens the tree into atom spans over `[0, horizon_us)`.
    /// Degenerate spans (empty intervals, empty combinators) vanish;
    /// the result is sorted by `(from, until, atom)` so equal plans
    /// normalize to equal bytes regardless of tree shape.
    pub fn normalize(&self, horizon_us: u64) -> Vec<AtomSpan> {
        let mut spans = Vec::new();
        self.collect(0, horizon_us, &mut spans);
        spans.sort_by(|a, b| {
            (a.from_us, a.until_us, a.atom).cmp(&(b.from_us, b.until_us, b.atom))
        });
        spans
    }

    fn collect(&self, from_us: u64, until_us: u64, out: &mut Vec<AtomSpan>) {
        if from_us >= until_us {
            return;
        }
        match self {
            ChaosPlan::Atom(a) => out.push(AtomSpan { atom: *a, from_us, until_us }),
            ChaosPlan::Window { body, from_us: off, dur_us } => {
                let start = (from_us + u64::from(*off)).min(until_us);
                let end = start.saturating_add(u64::from(*dur_us)).min(until_us);
                body.collect(start, end, out);
            }
            ChaosPlan::Overlay(children) => {
                for c in children {
                    c.collect(from_us, until_us, out);
                }
            }
            ChaosPlan::Sequence(children) => {
                if children.is_empty() {
                    return;
                }
                let n = children.len() as u64;
                let total = until_us - from_us;
                for (i, c) in children.iter().enumerate() {
                    // Integer segment boundaries: child i covers
                    // [from + i*total/n, from + (i+1)*total/n), so the
                    // segments tile the span exactly.
                    let a = from_us + total * i as u64 / n;
                    let b = from_us + total * (i as u64 + 1) / n;
                    c.collect(a, b, out);
                }
            }
        }
    }

    /// Number of atom leaves (0 for a plan of empty combinators) — the
    /// size metric the minimizer drives down.
    pub fn leaves(&self) -> usize {
        match self {
            ChaosPlan::Atom(_) => 1,
            ChaosPlan::Window { body, .. } => body.leaves(),
            ChaosPlan::Overlay(cs) | ChaosPlan::Sequence(cs) => {
                cs.iter().map(ChaosPlan::leaves).sum()
            }
        }
    }

    /// Returns a copy with the `i`-th leaf (depth-first order) removed,
    /// pruning combinators emptied by the removal. `None` when `i` is
    /// out of range or the plan is a single leaf (nothing would
    /// remain).
    pub fn without_leaf(&self, i: usize) -> Option<ChaosPlan> {
        if self.leaves() <= 1 {
            return None;
        }
        let mut k = i;
        let out = self.remove_leaf(&mut k);
        // `k` only reaches the sentinel when a leaf was actually
        // removed; an out-of-range index walks off the end and returns
        // the plan unchanged, which is not a removal.
        (k == usize::MAX).then_some(out).flatten()
    }

    fn remove_leaf(&self, k: &mut usize) -> Option<ChaosPlan> {
        match self {
            ChaosPlan::Atom(_) => {
                if *k == 0 {
                    // Signal removal by returning None from a leaf; the
                    // parent drops it.
                    *k = usize::MAX;
                    None
                } else {
                    *k -= 1;
                    Some(self.clone())
                }
            }
            ChaosPlan::Window { body, from_us, dur_us } => {
                let new = body.remove_leaf(k)?;
                Some(ChaosPlan::Window {
                    body: Box::new(new),
                    from_us: *from_us,
                    dur_us: *dur_us,
                })
            }
            ChaosPlan::Overlay(cs) => {
                let kept = Self::remove_from_children(cs, k);
                (!kept.is_empty()).then(|| ChaosPlan::Overlay(kept))
            }
            ChaosPlan::Sequence(cs) => {
                let kept = Self::remove_from_children(cs, k);
                (!kept.is_empty()).then(|| ChaosPlan::Sequence(kept))
            }
        }
    }

    /// Returns a copy with the `i`-th leaf (depth-first order) replaced
    /// by `f(leaf)`; `None` when `i` is out of range. The coordinate
    /// moves of the search mutate one leaf at a time through this.
    pub fn map_leaf(&self, i: usize, f: impl FnOnce(ChaosAtom) -> ChaosAtom) -> Option<ChaosPlan> {
        let mut k = i;
        let mut f = Some(f);
        let out = self.replace_leaf(&mut k, &mut f);
        f.is_none().then_some(out)
    }

    fn replace_leaf(
        &self,
        k: &mut usize,
        f: &mut Option<impl FnOnce(ChaosAtom) -> ChaosAtom>,
    ) -> ChaosPlan {
        match self {
            ChaosPlan::Atom(a) => {
                if f.is_some() && *k == 0 {
                    let f = f.take().expect("checked");
                    ChaosPlan::Atom(f(*a))
                } else {
                    if f.is_some() {
                        *k -= 1;
                    }
                    self.clone()
                }
            }
            ChaosPlan::Window { body, from_us, dur_us } => ChaosPlan::Window {
                body: Box::new(body.replace_leaf(k, f)),
                from_us: *from_us,
                dur_us: *dur_us,
            },
            ChaosPlan::Overlay(cs) => {
                ChaosPlan::Overlay(cs.iter().map(|c| c.replace_leaf(k, f)).collect())
            }
            ChaosPlan::Sequence(cs) => {
                ChaosPlan::Sequence(cs.iter().map(|c| c.replace_leaf(k, f)).collect())
            }
        }
    }

    fn remove_from_children(cs: &[ChaosPlan], k: &mut usize) -> Vec<ChaosPlan> {
        let mut kept = Vec::with_capacity(cs.len());
        for c in cs {
            if *k == usize::MAX {
                kept.push(c.clone());
                continue;
            }
            if let Some(child) = c.remove_leaf(k) {
                kept.push(child);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop(ppm: u32) -> ChaosPlan {
        ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: ppm })
    }

    #[test]
    fn atom_covers_the_whole_horizon() {
        let spans = drop(1000).normalize(500);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].from_us, spans[0].until_us), (0, 500));
    }

    #[test]
    fn window_clips_to_the_horizon() {
        let p = ChaosPlan::windowed(drop(1000), 400, 1_000);
        let spans = p.normalize(500);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].from_us, spans[0].until_us), (400, 500));
        // A window entirely past the horizon vanishes.
        assert!(ChaosPlan::windowed(drop(1), 600, 10).normalize(500).is_empty());
    }

    #[test]
    fn sequence_tiles_the_span_exactly() {
        let p = ChaosPlan::Sequence(vec![drop(1), drop(2), drop(3)]);
        let spans = p.normalize(1000);
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].from_us, spans[0].until_us), (0, 333));
        assert_eq!((spans[1].from_us, spans[1].until_us), (333, 666));
        assert_eq!((spans[2].from_us, spans[2].until_us), (666, 1000));
    }

    #[test]
    fn overlay_runs_children_simultaneously() {
        let p = ChaosPlan::Overlay(vec![
            drop(1),
            ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 500 }),
        ]);
        let spans = p.normalize(100);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.from_us == 0 && s.until_us == 100));
    }

    #[test]
    fn normalization_is_shape_independent() {
        // overlay(a, overlay(b)) and overlay(a, b) normalize equal.
        let a = drop(1);
        let b = drop(2);
        let nested = ChaosPlan::Overlay(vec![a.clone(), ChaosPlan::Overlay(vec![b.clone()])]);
        let flat = ChaosPlan::Overlay(vec![a, b]);
        assert_eq!(nested.normalize(100), flat.normalize(100));
    }

    #[test]
    fn leaf_removal_prunes_emptied_combinators() {
        let p = ChaosPlan::Overlay(vec![
            ChaosPlan::windowed(drop(1), 0, 10),
            ChaosPlan::Sequence(vec![drop(2), drop(3)]),
        ]);
        assert_eq!(p.leaves(), 3);
        // Removing leaf 0 drops the whole window branch.
        let q = p.without_leaf(0).expect("removable");
        assert_eq!(q.leaves(), 2);
        assert_eq!(q, ChaosPlan::Overlay(vec![ChaosPlan::Sequence(vec![drop(2), drop(3)])]));
        // A single-leaf plan refuses to empty itself.
        assert!(drop(1).without_leaf(0).is_none());
        assert!(p.without_leaf(3).is_none());
    }

    #[test]
    fn leaf_mapping_targets_exactly_one_leaf() {
        let p = ChaosPlan::Sequence(vec![drop(1), ChaosPlan::Overlay(vec![drop(2), drop(3)])]);
        let q = p
            .map_leaf(1, |_| ChaosAtom::UintrDropBurst { rate_ppm: 99 })
            .expect("in range");
        assert_eq!(
            q,
            ChaosPlan::Sequence(vec![drop(1), ChaosPlan::Overlay(vec![drop(99), drop(3)])])
        );
        assert!(p.map_leaf(3, |a| a).is_none());
    }
}
