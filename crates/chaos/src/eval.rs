//! Evaluation: score one chaos plan against the runtime.
//!
//! The adversary's objective rewards *cliffs*: worst-case end-to-end
//! response plus a mass term for every request that missed the SLO or
//! was dropped/shed. Evaluation is one deterministic simulated run per
//! `(plan, seed, hardened)` triple — identical inputs produce identical
//! scores at any job count, which is what lets the search fan out and
//! the corpus replay byte-identically.

use libpreemptible::policy::FcfsPreempt;
use libpreemptible::runtime::{
    run, AdmissionConfig, PreemptMech, RuntimeConfig, ServiceSource, WorkloadSpec,
};
use libpreemptible::RunReport;
use lp_sim::SimDur;
use lp_workload::{PhasedService, ServiceDist};

use crate::lower::lower;
use crate::plan::ChaosPlan;

/// Fixed parameters of one evaluation context (everything but the
/// plan and the hardening switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker cores.
    pub workers: usize,
    /// Master seed; the run derives every substream from it.
    pub seed: u64,
    /// Base offered load, requests/second (spikes add on top).
    pub base_rps: u32,
    /// Run length, µs — also the chaos plan's horizon.
    pub horizon_us: u64,
    /// Latency SLO, µs (the miss-mass term counts requests above it).
    pub slo_us: u64,
    /// Constant per-request service time, µs.
    pub service_us: u64,
    /// Preemption quantum, µs.
    pub quantum_us: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        // The figr resilience geometry: 400 µs requests under a 20 µs
        // quantum need ~20 preemptions each, so every lost or masked
        // preemption lands squarely on the tail.
        EvalConfig {
            workers: 4,
            seed: 2024,
            base_rps: 8_000,
            horizon_us: 40_000,
            slo_us: 1_500,
            service_us: 400,
            quantum_us: 20,
        }
    }
}

/// What one evaluation measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// Censoring-aware worst-case end-to-end response, ns: the worst
    /// completed latency, or the age of the oldest request the run
    /// never finished, whichever is larger. Under queue blow-up the
    /// true worst offenders never complete — counting only completed
    /// requests would let a total-starvation plan report a worst case
    /// of zero.
    pub worst_ns: u64,
    /// p99 end-to-end response, ns.
    pub p99_ns: u64,
    /// SLO-miss mass: completed requests above the SLO, plus every
    /// dropped or shed request, plus requests still queued when the
    /// horizon closed (each is a miss by definition).
    pub miss_mass: u64,
    /// Completed requests.
    pub completions: u64,
    /// Dropped requests (pool exhaustion and admission sheds).
    pub dropped: u64,
    /// Requests still in flight at the end of the run.
    pub in_flight: u64,
    /// Arrival conservation held (`arrivals == completions + dropped +
    /// in_flight`) — a `false` here is a runtime bug, not a cliff.
    pub conserved: bool,
}

impl EvalOutcome {
    /// The adversary's scalar objective, higher = worse for the
    /// system: worst-case response in ns, plus 100 µs of equivalent
    /// badness per missed/dropped request. Pure integer arithmetic so
    /// scores compare exactly across runs and job counts.
    pub fn objective(&self) -> u64 {
        self.worst_ns.saturating_add(self.miss_mass.saturating_mul(100_000))
    }
}

/// Builds the runtime config one evaluation runs under.
pub fn runtime_config(plan: &ChaosPlan, cfg: &EvalConfig, hardened: bool) -> RuntimeConfig {
    let lowered = lower(plan, cfg.base_rps, cfg.horizon_us);
    RuntimeConfig {
        workers: cfg.workers,
        mech: PreemptMech::Uintr,
        seed: cfg.seed,
        control_period: SimDur::millis(10),
        slo: Some(SimDur::micros(cfg.slo_us)),
        faults: lowered.faults,
        admission: AdmissionConfig {
            enabled: hardened,
            queue_cap: 64 * cfg.workers,
            brownout_cap: 16 * cfg.workers,
            slo_aware: hardened,
        },
        ..RuntimeConfig::default()
    }
}

/// Runs `plan` once and returns the full [`RunReport`] — the
/// attribution- and trace-bearing superset of [`evaluate`]. The
/// scheduling decisions are identical to [`evaluate`]'s (tracing and
/// the phase accountant are passive observers), so a report-backed
/// sweep like the figA decomposition sees exactly the runs the corpus
/// pinned. `trace_capacity > 0` additionally captures the last that
/// many typed events for Perfetto export.
pub fn evaluate_report(
    plan: &ChaosPlan,
    cfg: &EvalConfig,
    hardened: bool,
    trace_capacity: usize,
) -> RunReport {
    let lowered = lower(plan, cfg.base_rps, cfg.horizon_us);
    let spec = WorkloadSpec {
        source: ServiceSource::Phased(PhasedService::constant(ServiceDist::Constant(
            SimDur::micros(cfg.service_us),
        ))),
        arrivals: lowered.arrivals,
        duration: SimDur::micros(cfg.horizon_us),
        warmup: SimDur::ZERO,
    };
    run(
        RuntimeConfig { trace_capacity, ..runtime_config(plan, cfg, hardened) },
        Box::new(FcfsPreempt::fixed(SimDur::micros(cfg.quantum_us))),
        spec,
    )
}

/// Runs `plan` once and scores it. `hardened` arms admission control;
/// everything else is identical between the two variants, so the pair
/// isolates exactly what the hardening buys.
pub fn evaluate(plan: &ChaosPlan, cfg: &EvalConfig, hardened: bool) -> EvalOutcome {
    let r = evaluate_report(plan, cfg, hardened, 0);
    let slo_ns = cfg.slo_us * 1_000;
    let missed_completed = r.latency.count() - r.latency.count_at_or_below(slo_ns);
    EvalOutcome {
        worst_ns: r.worst_case_ns(),
        p99_ns: r.latency.p99(),
        miss_mass: missed_completed + r.dropped + r.in_flight,
        completions: r.completions,
        dropped: r.dropped,
        in_flight: r.in_flight,
        conserved: r.is_conserved(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosAtom;

    #[test]
    fn evaluation_is_deterministic_and_conserved() {
        let plan = ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 300_000 });
        let cfg = EvalConfig { horizon_us: 20_000, ..EvalConfig::default() };
        let a = evaluate(&plan, &cfg, false);
        let b = evaluate(&plan, &cfg, false);
        assert_eq!(a, b);
        assert!(a.conserved);
        assert!(a.completions > 0);
    }

    #[test]
    fn a_hostile_plan_scores_worse_than_a_quiet_one() {
        let cfg = EvalConfig { horizon_us: 20_000, ..EvalConfig::default() };
        let quiet = ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 0 });
        let hostile = ChaosPlan::Overlay(vec![
            ChaosPlan::Atom(ChaosAtom::UintrDropBurst { rate_ppm: 900_000 }),
            ChaosPlan::Atom(ChaosAtom::ArrivalSpike { extra_rps: 8_000 }),
        ]);
        let q = evaluate(&quiet, &cfg, false);
        let h = evaluate(&hostile, &cfg, false);
        assert!(
            h.objective() > q.objective(),
            "hostile {} <= quiet {}",
            h.objective(),
            q.objective()
        );
    }
}
