//! Deterministic adversarial search over the plan space.
//!
//! Two phases, both byte-reproducible:
//!
//! 1. **Successive halving**: a seeded population of random plans is
//!    scored on short runs; each rung keeps the better half and
//!    doubles the evaluation horizon, so the budget concentrates on
//!    plans that keep looking bad as the run gets longer.
//! 2. **Coordinate descent**: the winner's leaves are mutated one
//!    parameter at a time (rates ×2/÷2, magnitudes ×2/÷2, spikes
//!    ±50%); any move that raises the objective is kept, for a fixed
//!    number of passes.
//!
//! Then [`minimize`] delta-debugs the cliff: leaves are removed and
//! rates halved while the plan keeps ≥ 90% of the peak objective, so
//! the corpus stores the load-bearing core of each attack, not the
//! haystack the search walked through.
//!
//! Determinism: every random draw comes from the single `SmallRng` the
//! caller seeds from `rng(master, streams::CHAOS)`, and all draws
//! happen on the calling thread — the parallel fan-out
//! (`lp_sim::par::ordered_map`) only evaluates already-built
//! candidates and returns scores in submission order. Ties break by
//! submission index. The trajectory is therefore a pure function of
//! `(master seed, budget, eval config)`, independent of `LP_JOBS`.

use lp_sim::par::ordered_map;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::eval::{evaluate, EvalConfig, EvalOutcome};
use crate::plan::{ChaosAtom, ChaosPlan};

/// How much work the search may spend.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Rung-0 population size.
    pub population: usize,
    /// Successive-halving rungs (each keeps half, doubles the horizon).
    pub rungs: usize,
    /// Coordinate-descent passes over the winner's leaves.
    pub descent_passes: usize,
    /// Worker threads for candidate evaluation (`1` = serial; any
    /// value produces the same bytes).
    pub jobs: usize,
    /// Atom families the sampler may draw from, by tag
    /// (`"drop"`, `"hog"`, `"jitter"`, `"spike"`); empty means all
    /// four. Unconstrained search converges on the single strongest
    /// family, so corpus generation runs restarts under different
    /// restrictions to cover the whole fault algebra.
    pub families: &'static [&'static str],
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget { population: 16, rungs: 3, descent_passes: 2, jobs: 1, families: &[] }
    }
}

/// A scored plan.
#[derive(Debug, Clone)]
pub struct ScoredPlan {
    /// The plan.
    pub plan: ChaosPlan,
    /// Its outcome at the full evaluation horizon, unhardened.
    pub outcome: EvalOutcome,
}

/// Every atom family tag, in wire order.
const ALL_FAMILIES: [&str; 4] = ["drop", "hog", "jitter", "spike"];

/// Samples one random plan: 2–4 components overlaid, each a primitive
/// optionally windowed into the horizon. `families` restricts the
/// atom pool (empty = all four).
pub fn sample_plan(rng: &mut SmallRng, horizon_us: u64, families: &[&str]) -> ChaosPlan {
    let n = rng.gen_range(2..5usize);
    let parts = (0..n).map(|_| sample_component(rng, horizon_us, families)).collect();
    ChaosPlan::Overlay(parts)
}

fn sample_component(rng: &mut SmallRng, horizon_us: u64, families: &[&str]) -> ChaosPlan {
    let atom = sample_atom(rng, families);
    if rng.gen_bool(0.5) {
        let h = horizon_us.max(4) as u32;
        let from = rng.gen_range(0..h / 2);
        let dur = rng.gen_range(h / 8..h / 2 + 1).max(1);
        ChaosPlan::windowed(ChaosPlan::Atom(atom), from, dur)
    } else {
        ChaosPlan::Atom(atom)
    }
}

fn sample_atom(rng: &mut SmallRng, families: &[&str]) -> ChaosAtom {
    let pool = if families.is_empty() { &ALL_FAMILIES[..] } else { families };
    // Rates are drawn in whole per-mille steps so sampled plans are
    // already quantized for the corpus text form.
    let ppm = |rng: &mut SmallRng| rng.gen_range(1..1_000u32) * 1_000;
    match pool[rng.gen_range(0..pool.len())] {
        "drop" => ChaosAtom::UintrDropBurst { rate_ppm: ppm(rng) },
        "hog" => ChaosAtom::CoreHogStorm {
            rate_ppm: ppm(rng) / 10,
            hog_us: rng.gen_range(1..21u32) * 100,
        },
        "jitter" => ChaosAtom::TimerJitterWave {
            rate_ppm: ppm(rng),
            spike_us: rng.gen_range(1..21u32) * 50,
        },
        "spike" => ChaosAtom::ArrivalSpike { extra_rps: rng.gen_range(1..17u32) * 1_000 },
        other => panic!("unknown atom family {other:?}"),
    }
}

/// Scores candidates in parallel, in submission order.
fn score_all(plans: &[ChaosPlan], cfg: &EvalConfig, jobs: usize) -> Vec<EvalOutcome> {
    ordered_map(jobs, plans, |_, p| evaluate(p, cfg, false))
}

/// Ranks indices by objective descending, ties by index ascending.
fn ranked(outcomes: &[EvalOutcome]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..outcomes.len()).collect();
    idx.sort_by_key(|&i| (std::cmp::Reverse(outcomes[i].objective()), i));
    idx
}

/// Runs the full search and returns the worst plan found, scored at
/// the full horizon. `rng` must come from
/// `lp_sim::rng::rng(master, streams::CHAOS)`.
pub fn search(rng: &mut SmallRng, cfg: &EvalConfig, budget: &SearchBudget) -> ScoredPlan {
    assert!(budget.population >= 2, "need a population to halve");
    assert!(budget.rungs >= 1, "need at least one rung");
    let mut plans: Vec<ChaosPlan> = (0..budget.population)
        .map(|_| sample_plan(rng, cfg.horizon_us, budget.families))
        .collect();

    // Successive halving: rung r evaluates at horizon / 2^(rungs-1-r),
    // so the last rung runs at the full horizon.
    for r in 0..budget.rungs {
        let shift = (budget.rungs - 1 - r) as u32;
        let rung_cfg = EvalConfig {
            horizon_us: (cfg.horizon_us >> shift).max(1_000),
            ..*cfg
        };
        let outcomes = score_all(&plans, &rung_cfg, budget.jobs);
        let keep = (plans.len() / 2).max(1);
        let order = ranked(&outcomes);
        plans = order[..keep].iter().map(|&i| plans[i].clone()).collect();
        if plans.len() == 1 {
            break;
        }
    }
    let mut best = plans.swap_remove(0);
    let mut best_outcome = evaluate(&best, cfg, false);

    // Coordinate descent: all moves for a pass are generated up front
    // (no RNG involved), scored in parallel, and the single best
    // improvement is taken; repeat within the pass until no move
    // improves.
    for _ in 0..budget.descent_passes {
        loop {
            let mut moves: Vec<ChaosPlan> = Vec::new();
            for leaf in 0..best.leaves() {
                for m in coordinate_moves() {
                    if let Some(cand) = best.map_leaf(leaf, |a| apply_move(a, m)) {
                        // Skip no-op moves (already at a clamp) so rank
                        // order stays meaningful.
                        if cand != best {
                            moves.push(cand);
                        }
                    }
                }
            }
            if moves.is_empty() {
                break;
            }
            let outcomes = score_all(&moves, cfg, budget.jobs);
            let order = ranked(&outcomes);
            let top = order[0];
            if outcomes[top].objective() > best_outcome.objective() {
                best = moves[top].clone();
                best_outcome = outcomes[top];
            } else {
                break;
            }
        }
    }
    ScoredPlan { plan: best, outcome: best_outcome }
}

/// One coordinate move: a pure transform of a single atom.
#[derive(Debug, Clone, Copy)]
enum Move {
    RateUp,
    RateDown,
    MagUp,
    MagDown,
}

fn coordinate_moves() -> [Move; 4] {
    [Move::RateUp, Move::RateDown, Move::MagUp, Move::MagDown]
}

fn apply_move(a: ChaosAtom, m: Move) -> ChaosAtom {
    let rate = |r: u32, up: bool| {
        if up {
            (r.saturating_mul(2)).min(1_000_000)
        } else {
            (r / 2).max(1_000)
        }
    };
    let mag = |v: u32, up: bool, lo: u32, hi: u32| {
        if up {
            (v.saturating_mul(2)).min(hi)
        } else {
            (v / 2).max(lo)
        }
    };
    match (a, m) {
        (ChaosAtom::UintrDropBurst { rate_ppm }, Move::RateUp) => {
            ChaosAtom::UintrDropBurst { rate_ppm: rate(rate_ppm, true) }
        }
        (ChaosAtom::UintrDropBurst { rate_ppm }, Move::RateDown) => {
            ChaosAtom::UintrDropBurst { rate_ppm: rate(rate_ppm, false) }
        }
        // A drop burst has no magnitude knob: magnitude moves are
        // no-ops the caller filters out.
        (a @ ChaosAtom::UintrDropBurst { .. }, Move::MagUp | Move::MagDown) => a,
        (ChaosAtom::CoreHogStorm { rate_ppm, hog_us }, Move::RateUp) => {
            ChaosAtom::CoreHogStorm { rate_ppm: rate(rate_ppm, true), hog_us }
        }
        (ChaosAtom::CoreHogStorm { rate_ppm, hog_us }, Move::RateDown) => {
            ChaosAtom::CoreHogStorm { rate_ppm: rate(rate_ppm, false), hog_us }
        }
        (ChaosAtom::CoreHogStorm { rate_ppm, hog_us }, Move::MagUp) => {
            ChaosAtom::CoreHogStorm { rate_ppm, hog_us: mag(hog_us, true, 50, 4_000) }
        }
        (ChaosAtom::CoreHogStorm { rate_ppm, hog_us }, Move::MagDown) => {
            ChaosAtom::CoreHogStorm { rate_ppm, hog_us: mag(hog_us, false, 50, 4_000) }
        }
        (ChaosAtom::TimerJitterWave { rate_ppm, spike_us }, Move::RateUp) => {
            ChaosAtom::TimerJitterWave { rate_ppm: rate(rate_ppm, true), spike_us }
        }
        (ChaosAtom::TimerJitterWave { rate_ppm, spike_us }, Move::RateDown) => {
            ChaosAtom::TimerJitterWave { rate_ppm: rate(rate_ppm, false), spike_us }
        }
        (ChaosAtom::TimerJitterWave { rate_ppm, spike_us }, Move::MagUp) => {
            ChaosAtom::TimerJitterWave { rate_ppm, spike_us: mag(spike_us, true, 10, 2_000) }
        }
        (ChaosAtom::TimerJitterWave { rate_ppm, spike_us }, Move::MagDown) => {
            ChaosAtom::TimerJitterWave { rate_ppm, spike_us: mag(spike_us, false, 10, 2_000) }
        }
        (ChaosAtom::ArrivalSpike { extra_rps }, Move::RateUp | Move::MagUp) => {
            ChaosAtom::ArrivalSpike { extra_rps: (extra_rps + extra_rps / 2).min(64_000) }
        }
        (ChaosAtom::ArrivalSpike { extra_rps }, Move::RateDown | Move::MagDown) => {
            ChaosAtom::ArrivalSpike { extra_rps: (extra_rps - extra_rps / 3).max(500) }
        }
    }
}

/// Delta-debugging minimizer: repeatedly drop leaves and halve rates
/// while the plan keeps at least `keep_frac_pct`% of `cliff`'s
/// objective. Returns the smallest surviving plan with its outcome.
pub fn minimize(
    plan: &ChaosPlan,
    cfg: &EvalConfig,
    cliff: u64,
    keep_frac_pct: u64,
) -> ScoredPlan {
    let floor = cliff / 100 * keep_frac_pct;
    let mut best = plan.clone();
    let mut outcome = evaluate(&best, cfg, false);
    // Pass 1: structural — remove whole leaves, first-fit, restarting
    // after every successful removal (classic ddmin step with n = 1).
    'removal: loop {
        for i in 0..best.leaves() {
            if let Some(cand) = best.without_leaf(i) {
                let o = evaluate(&cand, cfg, false);
                if o.objective() >= floor {
                    best = cand;
                    outcome = o;
                    continue 'removal;
                }
            }
        }
        break;
    }
    // Pass 2: magnitudes — halve each surviving rate while the cliff
    // holds, so the corpus records the weakest fault intensity that
    // still reproduces it.
    loop {
        let mut improved = false;
        for i in 0..best.leaves() {
            if let Some(cand) = best.map_leaf(i, |a| apply_move(a, Move::RateDown)) {
                if cand == best {
                    continue;
                }
                let o = evaluate(&cand, cfg, false);
                if o.objective() >= floor {
                    best = cand;
                    outcome = o;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    ScoredPlan { plan: best, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::{rng, streams};

    fn quick_cfg() -> EvalConfig {
        EvalConfig { horizon_us: 8_000, ..EvalConfig::default() }
    }

    #[test]
    fn search_is_reproducible_across_job_counts() {
        let cfg = quick_cfg();
        let budget = |jobs| SearchBudget { population: 4, rungs: 2, descent_passes: 1, jobs, families: &[] };
        let a = search(&mut rng(7, streams::CHAOS), &cfg, &budget(1));
        let b = search(&mut rng(7, streams::CHAOS), &cfg, &budget(8));
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let cfg = quick_cfg();
        let budget = SearchBudget { population: 4, rungs: 1, descent_passes: 0, jobs: 1, families: &[] };
        let a = search(&mut rng(1, streams::CHAOS), &cfg, &budget);
        let b = search(&mut rng(2, streams::CHAOS), &cfg, &budget);
        assert_ne!(a.plan, b.plan, "two seeds sampled identical populations");
    }

    #[test]
    fn minimizer_never_loses_the_cliff_threshold() {
        let cfg = quick_cfg();
        let found = search(
            &mut rng(7, streams::CHAOS),
            &cfg,
            &SearchBudget { population: 4, rungs: 2, descent_passes: 0, jobs: 1, families: &[] },
        );
        let cliff = found.outcome.objective();
        let min = minimize(&found.plan, &cfg, cliff, 90);
        assert!(min.outcome.objective() >= cliff / 100 * 90);
        assert!(min.plan.leaves() <= found.plan.leaves());
        // Minimization itself is deterministic.
        let again = minimize(&found.plan, &cfg, cliff, 90);
        assert_eq!(min.plan, again.plan);
    }
}
