//! Signal delivery with kernel lock contention.
//!
//! §V-B of the paper: "In Linux, calling a signal handler involves
//! taking a lock in the kernel, thus causing lock contention when
//! multiple signals are issued at the same time", producing the
//! superlinear per-thread-timer curve of Fig. 11. We model the lock as a
//! FIFO resource with a hold time that dilates with the number of
//! concurrent waiters (cacheline bouncing), which reproduces both the
//! uncontended Table IV floor and the contended storm behaviour.

use lp_sim::fault::SignalFault;
use lp_sim::obs::{Event, Observer};
use lp_sim::{SimDur, SimTime};
use rand::rngs::SmallRng;

use crate::cost::KernelCosts;
use lp_hw::jitter;

/// Outcome of one signal send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalDelivery {
    /// When the receiver's handler begins executing.
    pub handler_start: SimTime,
    /// Total receiver-visible latency (send initiation → handler entry).
    pub latency: SimDur,
    /// Time the sender's CPU was occupied (syscall + lock wait + hold).
    pub sender_busy: SimDur,
    /// How long the send waited on the kernel lock.
    pub lock_wait: SimDur,
}

/// The serialized kernel signal path.
///
/// ```
/// use lp_kernel::{KernelCosts, SignalPath};
/// use lp_sim::SimTime;
/// let mut path = SignalPath::new(KernelCosts::default(), lp_sim::rng::rng(1, 4));
/// let t = SimTime::ZERO;
/// let first = path.deliver(t);
/// let second = path.deliver(t); // same instant: must queue behind first
/// assert!(second.lock_wait > first.lock_wait);
/// assert!(second.latency > first.latency);
/// ```
#[derive(Debug)]
pub struct SignalPath {
    costs: KernelCosts,
    rng: SmallRng,
    /// Instant the signal lock becomes free.
    lock_free_at: SimTime,
    /// Sends observed in the current congestion epoch (decays when the
    /// lock goes idle); drives hold-time dilation.
    epoch_waiters: u32,
    delivered: u64,
}

impl SignalPath {
    /// Creates the path with its own RNG substream.
    pub fn new(costs: KernelCosts, rng: SmallRng) -> Self {
        SignalPath {
            costs,
            rng,
            lock_free_at: SimTime::ZERO,
            epoch_waiters: 0,
            delivered: 0,
        }
    }

    /// Total signals delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivers one signal initiated at `now`; serializes on the kernel
    /// lock.
    pub fn deliver(&mut self, now: SimTime) -> SignalDelivery {
        self.deliver_inner(now, 0)
    }

    fn deliver_inner(&mut self, now: SimTime, extra_waiters: u32) -> SignalDelivery {
        // New congestion epoch if the lock has been idle since before
        // `now`.
        if self.lock_free_at <= now {
            self.epoch_waiters = 0;
        }
        self.epoch_waiters += 1 + extra_waiters;

        let lock_wait = self.lock_free_at.saturating_since(now);
        let dilation = 1.0 + self.costs.signal_lock_contention * self.epoch_waiters as f64;
        let hold = jitter::sample(
            &mut self.rng,
            self.costs.signal_lock_hold.mul_f64(dilation),
            0.1,
        );
        let acquire_at = if self.lock_free_at > now {
            self.lock_free_at
        } else {
            now
        };
        self.lock_free_at = acquire_at + hold;

        let base = jitter::sample(&mut self.rng, self.costs.signal_deliver_base, 0.15);
        let latency = self.costs.syscall + lock_wait + hold + base + self.costs.signal_handler;
        self.delivered += 1;
        SignalDelivery {
            handler_start: now + latency,
            latency,
            sender_busy: self.costs.syscall + lock_wait + hold,
            lock_wait,
        }
    }

    /// [`deliver`](Self::deliver) plus a `signal_sent` event carrying
    /// the lock wait — the per-send view behind Fig. 11's contention
    /// curves.
    pub fn deliver_observed(
        &mut self,
        now: SimTime,
        worker: u16,
        obs: &mut Observer,
    ) -> SignalDelivery {
        let d = self.deliver(now);
        obs.emit(
            now,
            Event::SignalSent {
                worker,
                lock_wait_ns: d.lock_wait.as_nanos(),
            },
        );
        d
    }

    /// [`deliver`](Self::deliver) with a pre-sampled fault decision
    /// applied. The decision comes from
    /// [`FaultInjector::signal`](lp_sim::fault::FaultInjector::signal).
    ///
    /// * `None` — identical to [`deliver`](Self::deliver) (same lock
    ///   state transitions, same RNG draws), wrapped in `Some`.
    /// * [`SignalFault::Lost`] — the signal vanishes before the kernel
    ///   queues it: no handler runs, no lock state changes, returns
    ///   `None`; the runtime watchdog recovers the lost preemption.
    /// * [`SignalFault::ContentionBurst`] — delivery proceeds but sees
    ///   that many extra waiters in its congestion epoch, inflating the
    ///   lock hold exactly as a real runqueue-lock storm would.
    pub fn deliver_with_fault(
        &mut self,
        now: SimTime,
        fault: Option<SignalFault>,
    ) -> Option<SignalDelivery> {
        match fault {
            None => Some(self.deliver(now)),
            Some(SignalFault::Lost) => None,
            Some(SignalFault::ContentionBurst(extra)) => Some(self.deliver_inner(now, extra)),
        }
    }

    /// [`deliver_with_fault`](Self::deliver_with_fault) plus the
    /// `signal_sent` event when delivery actually happens. A lost
    /// signal emits nothing here — the runtime emits the matching
    /// `fault_injected` event.
    pub fn deliver_with_fault_observed(
        &mut self,
        now: SimTime,
        fault: Option<SignalFault>,
        worker: u16,
        obs: &mut Observer,
    ) -> Option<SignalDelivery> {
        let d = self.deliver_with_fault(now, fault)?;
        obs.emit(now, Event::SignalSent { worker, lock_wait_ns: d.lock_wait.as_nanos() });
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    fn path(seed: u64) -> SignalPath {
        SignalPath::new(KernelCosts::default(), rng(seed, 0))
    }

    #[test]
    fn uncontended_latency_near_floor() {
        let mut p = path(1);
        let mut total = 0.0;
        let n = 200;
        for i in 0..n {
            // Spread sends 1 ms apart: never contended.
            let d = p.deliver(SimTime::from_nanos(i * 1_000_000));
            assert_eq!(d.lock_wait, SimDur::ZERO);
            total += d.latency.as_micros_f64();
        }
        let avg = total / n as f64;
        assert!((5.0..10.0).contains(&avg), "uncontended avg = {avg} us");
    }

    #[test]
    fn simultaneous_storm_serializes_fifo() {
        let mut p = path(2);
        let t = SimTime::from_nanos(1_000);
        let deliveries: Vec<SignalDelivery> = (0..32).map(|_| p.deliver(t)).collect();
        // Strictly increasing handler start times.
        for w in deliveries.windows(2) {
            assert!(w[1].handler_start > w[0].handler_start);
            assert!(w[1].lock_wait >= w[0].lock_wait);
        }
        // The last waiter sees Fig. 11-scale latency (tens of us).
        let worst = deliveries.last().unwrap().latency.as_micros_f64();
        assert!(worst > 60.0, "worst storm latency = {worst} us");
    }

    #[test]
    fn storm_is_superlinear_in_thread_count() {
        // The *contention* component (latency beyond the uncontended
        // path) must grow faster than linearly in the storm size: 32/8
        // threads is 4x, so the excess ratio must exceed 4 by a margin.
        let avg_excess_for = |n: u64, seed: u64| {
            let mut p = path(seed);
            let t = SimTime::ZERO;
            let lats: Vec<f64> = (0..n).map(|_| p.deliver(t).latency.as_micros_f64()).collect();
            // A lone send much later gives the uncontended base.
            let base = p.deliver(SimTime::from_nanos(1_000_000_000)).latency.as_micros_f64();
            lats.iter().sum::<f64>() / n as f64 - base
        };
        let a8: f64 = (0..20).map(|s| avg_excess_for(8, 100 + s)).sum::<f64>() / 20.0;
        let a32: f64 = (0..20).map(|s| avg_excess_for(32, 200 + s)).sum::<f64>() / 20.0;
        assert!(
            a32 > 4.4 * a8,
            "expected superlinear growth of contention: excess(8)={a8}, excess(32)={a32}"
        );
    }

    #[test]
    fn contention_epoch_resets_when_idle() {
        let mut p = path(3);
        let t0 = SimTime::ZERO;
        for _ in 0..16 {
            p.deliver(t0);
        }
        // Much later, a single send is uncontended again.
        let lone = p.deliver(SimTime::from_nanos(10_000_000));
        assert_eq!(lone.lock_wait, SimDur::ZERO);
        assert!(lone.latency.as_micros_f64() < 12.0);
        assert_eq!(p.delivered(), 17);
    }

    #[test]
    fn observed_delivery_carries_lock_wait() {
        use lp_sim::obs::{Counter, Observer};
        let mut p = path(5);
        let mut obs = Observer::new(8);
        let t = SimTime::from_nanos(500);
        let first = p.deliver_observed(t, 1, &mut obs);
        let second = p.deliver_observed(t, 2, &mut obs); // queues behind first
        assert_eq!(obs.metrics().get(Counter::SignalsSent), 2);
        let evs: Vec<_> = obs.events().copied().collect();
        assert_eq!(
            evs[0].ev,
            Event::SignalSent { worker: 1, lock_wait_ns: first.lock_wait.as_nanos() }
        );
        assert_eq!(
            evs[1].ev,
            Event::SignalSent { worker: 2, lock_wait_ns: second.lock_wait.as_nanos() }
        );
        assert!(second.lock_wait > first.lock_wait);
    }

    #[test]
    fn fault_free_delivery_matches_plain_path() {
        let mut a = path(6);
        let mut b = path(6);
        for i in 0..100u64 {
            let t = SimTime::from_nanos(i * 3_000);
            assert_eq!(a.deliver_with_fault(t, None), Some(b.deliver(t)));
        }
    }

    #[test]
    fn injected_signal_faults() {
        use lp_sim::fault::SignalFault;
        let mut p = path(7);
        let t = SimTime::from_nanos(1_000);
        // A lost signal changes nothing: no delivery count, no lock
        // state, so the next send is uncontended.
        assert_eq!(p.deliver_with_fault(t, Some(SignalFault::Lost)), None);
        assert_eq!(p.delivered(), 0);
        let after = p.deliver(t);
        assert_eq!(after.lock_wait, SimDur::ZERO);
        // A contention burst dilates the hold like a real storm.
        let mut calm = path(8);
        let mut stormy = path(8);
        let later = SimTime::from_nanos(50_000_000);
        let base = calm.deliver(later);
        let burst = stormy
            .deliver_with_fault(later, Some(SignalFault::ContentionBurst(16)))
            .unwrap();
        assert!(
            burst.latency > base.latency,
            "burst {:?} must exceed calm {:?}",
            burst.latency,
            base.latency
        );
    }

    #[test]
    fn lost_signal_emits_no_event() {
        use lp_sim::fault::SignalFault;
        use lp_sim::obs::{Counter, Observer};
        let mut p = path(9);
        let mut obs = Observer::new(4);
        let out =
            p.deliver_with_fault_observed(SimTime::ZERO, Some(SignalFault::Lost), 3, &mut obs);
        assert!(out.is_none());
        assert_eq!(obs.metrics().get(Counter::SignalsSent), 0);
    }

    #[test]
    fn staggered_sends_avoid_contention() {
        // Spacing sends by more than the hold time keeps lock waits at
        // zero — the "per-thread (aligned)" strategy of Fig. 11.
        let mut p = path(4);
        for i in 0..32u64 {
            let d = p.deliver(SimTime::from_nanos(i * 50_000)); // 50 us apart
            assert_eq!(d.lock_wait, SimDur::ZERO, "send {i} contended");
        }
    }
}
