//! Kernel timers: granularity floor, slack, and noise.
//!
//! Fig. 12 of the paper shows that a kernel timer asked for a 20 us
//! period actually fires around 60 us with large variance, while
//! LibUtimer tracks the target within ~1%. The floor comes from hrtimer
//! slack and softirq batching; the variance from unrelated kernel
//! activity. Both are explicit parameters here
//! ([`KernelCosts::timer_floor`], [`KernelCosts::timer_jitter_sigma`],
//! noise spikes).

use lp_sim::fault::TimerFault;
use lp_sim::obs::{Event, Observer};
use lp_sim::{SimDur, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::cost::KernelCosts;
use lp_hw::jitter;

/// A simulated kernel timer (POSIX `timer_create` + `timer_settime`
/// semantics at the fidelity the experiments need).
#[derive(Debug)]
pub struct KernelTimer {
    costs: KernelCosts,
    rng: SmallRng,
    target: SimDur,
    armed: bool,
}

impl KernelTimer {
    /// Creates a timer; arming costs are charged by the caller via
    /// [`arm_cost`](Self::arm_cost).
    pub fn new(costs: KernelCosts, rng: SmallRng) -> Self {
        KernelTimer {
            costs,
            rng,
            target: SimDur::ZERO,
            armed: false,
        }
    }

    /// CPU cost of the arming syscall.
    pub fn arm_cost(&self) -> SimDur {
        self.costs.timer_arm + self.costs.syscall
    }

    /// Arms the timer for `target` from now (periodic re-arm uses the
    /// same path).
    pub fn arm(&mut self, target: SimDur) {
        assert!(!target.is_zero(), "cannot arm a zero-length kernel timer");
        self.target = target;
        self.armed = true;
    }

    /// [`arm`](Self::arm) plus a `ktimer_armed` event recording the
    /// requested interval for `worker`.
    pub fn arm_observed(&mut self, target: SimDur, worker: u16, at: SimTime, obs: &mut Observer) {
        self.arm(target);
        obs.emit(
            at,
            Event::KtimerArmed {
                worker,
                target_ns: target.as_nanos(),
            },
        );
    }

    /// [`sample_expiry`](Self::sample_expiry) plus a `ktimer_fired`
    /// event stamped at the sampled expiry instant.
    ///
    /// # Panics
    ///
    /// Panics if the timer is not armed.
    pub fn sample_expiry_observed(
        &mut self,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> SimDur {
        let delay = self.sample_expiry();
        obs.emit(at + delay, Event::KtimerFired { worker });
        delay
    }

    /// Disarms without firing.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// `true` if armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The requested interval.
    pub fn target(&self) -> SimDur {
        self.target
    }

    /// Samples the *actual* delay until expiry for the armed interval.
    ///
    /// # Panics
    ///
    /// Panics if the timer is not armed.
    pub fn sample_expiry(&mut self) -> SimDur {
        assert!(self.armed, "sampling expiry of a disarmed timer");
        let effective = self.target.max(self.costs.timer_floor);
        let mut delay = jitter::sample(&mut self.rng, effective, self.costs.timer_jitter_sigma);
        if self.rng.gen_bool(self.costs.noise_spike_prob) {
            delay += jitter::sample(&mut self.rng, self.costs.noise_spike, 0.4);
        }
        // An expiry can be late, never early.
        delay.max(self.target)
    }

    /// [`sample_expiry`](Self::sample_expiry) with a pre-sampled fault
    /// decision applied. The decision comes from
    /// [`FaultInjector::timer`](lp_sim::fault::FaultInjector::timer) —
    /// this layer never draws fault randomness itself.
    ///
    /// * `None` — identical to [`sample_expiry`](Self::sample_expiry)
    ///   (same RNG draws, same delay), wrapped in `Some`.
    /// * [`TimerFault::Miss`] — the kernel loses the arming entirely:
    ///   returns `None` and consumes no expiry randomness; the caller
    ///   must not schedule a fire (the runtime watchdog recovers).
    /// * [`TimerFault::JitterSpike`] — a normal expiry, late by the
    ///   spike duration.
    /// * [`TimerFault::Spurious`] — a normal expiry; the *caller*
    ///   additionally schedules one extra, spurious fire.
    ///
    /// # Panics
    ///
    /// Panics if the timer is not armed.
    pub fn sample_expiry_with_fault(&mut self, fault: Option<TimerFault>) -> Option<SimDur> {
        assert!(self.armed, "sampling expiry of a disarmed timer");
        match fault {
            None | Some(TimerFault::Spurious) => Some(self.sample_expiry()),
            Some(TimerFault::Miss) => None,
            Some(TimerFault::JitterSpike(extra)) => Some(self.sample_expiry() + extra),
        }
    }

    /// [`sample_expiry_with_fault`](Self::sample_expiry_with_fault) plus
    /// the `ktimer_fired` event when an expiry actually fires. A missed
    /// expiry emits nothing here — the runtime emits the matching
    /// `fault_injected` event.
    ///
    /// # Panics
    ///
    /// Panics if the timer is not armed.
    pub fn sample_expiry_with_fault_observed(
        &mut self,
        fault: Option<TimerFault>,
        worker: u16,
        at: SimTime,
        obs: &mut Observer,
    ) -> Option<SimDur> {
        let delay = self.sample_expiry_with_fault(fault)?;
        obs.emit(at + delay, Event::KtimerFired { worker });
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    fn timer(seed: u64) -> KernelTimer {
        KernelTimer::new(KernelCosts::default(), rng(seed, 1))
    }

    fn mean_std(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let m = samples.iter().sum::<f64>() / n;
        let v = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v.sqrt())
    }

    #[test]
    fn sub_floor_target_quantizes_up() {
        // Fig. 12: a 20 us request fires around the ~55-60 us floor.
        let mut t = timer(1);
        t.arm(SimDur::micros(20));
        let xs: Vec<f64> = (0..5_000).map(|_| t.sample_expiry().as_micros_f64()).collect();
        let (m, s) = mean_std(&xs);
        assert!((45.0..75.0).contains(&m), "mean = {m} us");
        assert!(s > 5.0, "kernel timer must jitter, std = {s} us");
    }

    #[test]
    fn above_floor_tracks_target_with_jitter() {
        let mut t = timer(2);
        t.arm(SimDur::micros(100));
        let xs: Vec<f64> = (0..5_000).map(|_| t.sample_expiry().as_micros_f64()).collect();
        let (m, s) = mean_std(&xs);
        assert!((95.0..125.0).contains(&m), "mean = {m} us");
        assert!(s > 10.0, "std = {s} us");
    }

    #[test]
    fn never_fires_early() {
        let mut t = timer(3);
        t.arm(SimDur::micros(80));
        for _ in 0..2_000 {
            assert!(t.sample_expiry() >= SimDur::micros(80));
        }
    }

    #[test]
    fn arm_disarm_state() {
        let mut t = timer(4);
        assert!(!t.is_armed());
        t.arm(SimDur::micros(10));
        assert!(t.is_armed());
        assert_eq!(t.target(), SimDur::micros(10));
        t.disarm();
        assert!(!t.is_armed());
        assert!(!t.arm_cost().is_zero());
    }

    #[test]
    fn observed_arm_and_expiry_emit_events() {
        use lp_sim::obs::{Counter, Event, Observer};
        let mut t = timer(7);
        let mut obs = Observer::new(8);
        let at = SimTime::from_nanos(1_000);
        t.arm_observed(SimDur::micros(30), 4, at, &mut obs);
        let delay = t.sample_expiry_observed(4, at, &mut obs);
        assert_eq!(obs.metrics().get(Counter::KtimersArmed), 1);
        assert_eq!(obs.metrics().get(Counter::KtimersFired), 1);
        let evs: Vec<_> = obs.events().copied().collect();
        assert_eq!(evs[0].at, at);
        assert_eq!(evs[0].ev, Event::KtimerArmed { worker: 4, target_ns: 30_000 });
        // The fired event is stamped at the sampled expiry instant.
        assert_eq!(evs[1].at, at + delay);
        assert_eq!(evs[1].ev, Event::KtimerFired { worker: 4 });
    }

    #[test]
    #[should_panic(expected = "disarmed timer")]
    fn sampling_disarmed_panics() {
        timer(5).sample_expiry();
    }

    #[test]
    fn fault_free_expiry_matches_plain_sampling() {
        // Same seed, no fault: the `_with_fault` path must consume the
        // RNG identically to the plain one.
        let mut a = timer(8);
        let mut b = timer(8);
        a.arm(SimDur::micros(60));
        b.arm(SimDur::micros(60));
        for _ in 0..500 {
            assert_eq!(a.sample_expiry_with_fault(None), Some(b.sample_expiry()));
        }
    }

    #[test]
    fn injected_timer_faults() {
        use lp_sim::fault::TimerFault;
        let mut t = timer(9);
        t.arm(SimDur::micros(60));
        // A miss never fires and leaves the timer armed for re-use.
        assert_eq!(t.sample_expiry_with_fault(Some(TimerFault::Miss)), None);
        assert!(t.is_armed());
        // A spike is a normal expiry pushed later by exactly the spike.
        let mut u = timer(10);
        let mut v = timer(10);
        u.arm(SimDur::micros(60));
        v.arm(SimDur::micros(60));
        let plain = v.sample_expiry();
        let spiked = u
            .sample_expiry_with_fault(Some(TimerFault::JitterSpike(SimDur::micros(40))))
            .unwrap();
        assert_eq!(spiked, plain + SimDur::micros(40));
        // Spurious fires normally (the extra fire is the caller's job).
        let mut w = timer(10);
        w.arm(SimDur::micros(60));
        assert_eq!(w.sample_expiry_with_fault(Some(TimerFault::Spurious)), Some(plain));
    }

    #[test]
    fn missed_expiry_emits_no_fire_event() {
        use lp_sim::fault::TimerFault;
        use lp_sim::obs::{Counter, Observer};
        let mut t = timer(11);
        let mut obs = Observer::new(4);
        t.arm_observed(SimDur::micros(30), 2, SimTime::ZERO, &mut obs);
        let fired = t.sample_expiry_with_fault_observed(
            Some(TimerFault::Miss),
            2,
            SimTime::ZERO,
            &mut obs,
        );
        assert_eq!(fired, None);
        assert_eq!(obs.metrics().get(Counter::KtimersArmed), 1);
        assert_eq!(obs.metrics().get(Counter::KtimersFired), 0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_arm_panics() {
        timer(6).arm(SimDur::ZERO);
    }
}
