//! IPC / event-notification mechanisms (Table IV).
//!
//! The paper compares per-message latency of six notification paths with
//! a 1M-iteration ping-pong microbenchmark. The kernel-mediated paths
//! (signal, mq, pipe, eventFD) are modeled as shifted lognormals
//! calibrated to the *measured* (min, avg, std) triples from Table IV —
//! they are substrates the paper itself took as given. The two `uintrFd`
//! rows are NOT calibrated here: they are *composed* from the
//! architectural model ([`lp_hw::HwCosts`] + the UINTR state machine),
//! so the hardware/software gap of Fig. 1 (left) is an output of the
//! reproduction rather than an input.

use lp_sim::obs::{Event, Observer};
use lp_sim::{SimDur, SimTime};
use rand::rngs::SmallRng;

use lp_hw::jitter::standard_normal;
use lp_hw::HwCosts;

/// The IPC mechanisms of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpcMechanism {
    /// POSIX real-time signal (`kill`/`sigwaitinfo`).
    Signal,
    /// POSIX message queue (`mq_send`/`mq_receive`).
    MessageQueue,
    /// Pipe write/read.
    Pipe,
    /// `eventfd(2)` write/read.
    EventFd,
    /// `uintr_fd` with the receiver running (`SENDUIPI` → handler).
    UintrFd,
    /// `uintr_fd` with the receiver blocked in the kernel.
    UintrFdBlocked,
}

impl IpcMechanism {
    /// All mechanisms in Table IV's row order.
    pub const ALL: [IpcMechanism; 6] = [
        IpcMechanism::Signal,
        IpcMechanism::MessageQueue,
        IpcMechanism::Pipe,
        IpcMechanism::EventFd,
        IpcMechanism::UintrFd,
        IpcMechanism::UintrFdBlocked,
    ];

    /// The name used in Table IV.
    pub fn name(self) -> &'static str {
        match self {
            IpcMechanism::Signal => "signal",
            IpcMechanism::MessageQueue => "mq",
            IpcMechanism::Pipe => "pipe",
            IpcMechanism::EventFd => "eventFD",
            IpcMechanism::UintrFd => "uintrFd",
            IpcMechanism::UintrFdBlocked => "uintrFd (blocked)",
        }
    }

    /// `true` for the hardware-assisted (kernel-bypass) paths.
    pub fn is_user_interrupt(self) -> bool {
        matches!(self, IpcMechanism::UintrFd | IpcMechanism::UintrFdBlocked)
    }

    /// Table IV row index — the `mech` code carried by `ipc_sampled`
    /// events (see `docs/TRACING.md`).
    pub fn index(self) -> u8 {
        match self {
            IpcMechanism::Signal => 0,
            IpcMechanism::MessageQueue => 1,
            IpcMechanism::Pipe => 2,
            IpcMechanism::EventFd => 3,
            IpcMechanism::UintrFd => 4,
            IpcMechanism::UintrFdBlocked => 5,
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(idx: u8) -> Option<IpcMechanism> {
        IpcMechanism::ALL.get(idx as usize).copied()
    }
}

/// A `min + LogNormal` latency distribution fitted to a measured
/// (min, mean, std) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedLognormal {
    min_ns: f64,
    mu: f64,
    sigma: f64,
}

impl ShiftedLognormal {
    /// Fits the distribution so that its minimum, mean, and standard
    /// deviation match the given values (all in nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= min` or `std <= 0`.
    pub fn from_min_mean_std(min_ns: f64, mean_ns: f64, std_ns: f64) -> Self {
        assert!(mean_ns > min_ns, "mean must exceed min");
        assert!(std_ns > 0.0, "std must be positive");
        let e = mean_ns - min_ns;
        let v = std_ns * std_ns;
        let sigma2 = (1.0 + v / (e * e)).ln();
        let mu = e.ln() - sigma2 / 2.0;
        ShiftedLognormal {
            min_ns,
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draws one latency.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDur {
        let z = standard_normal(rng);
        let x = self.min_ns + (self.mu + self.sigma * z).exp();
        SimDur::nanos(x.round() as u64)
    }

    /// The distribution's theoretical mean, ns.
    pub fn mean_ns(&self) -> f64 {
        self.min_ns + (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Latency sampler for every Table IV mechanism.
#[derive(Debug, Clone)]
pub struct IpcLatency {
    hw: HwCosts,
    signal: ShiftedLognormal,
    mq: ShiftedLognormal,
    pipe: ShiftedLognormal,
    eventfd: ShiftedLognormal,
}

impl Default for IpcLatency {
    fn default() -> Self {
        Self::new(HwCosts::default())
    }
}

impl IpcLatency {
    /// Builds the samplers. Kernel paths use Table IV's measured
    /// (min, avg, std) in microseconds; user-interrupt paths compose
    /// from `hw`.
    pub fn new(hw: HwCosts) -> Self {
        let us = |x: f64| x * 1_000.0;
        IpcLatency {
            hw,
            // Table IV rows: avg / min / std (us).
            signal: ShiftedLognormal::from_min_mean_std(us(3.584), us(15.325), us(3.478)),
            mq: ShiftedLognormal::from_min_mean_std(us(8.960), us(10.468), us(2.017)),
            pipe: ShiftedLognormal::from_min_mean_std(us(10.240), us(17.761), us(4.304)),
            eventfd: ShiftedLognormal::from_min_mean_std(us(2.816), us(29.688), us(13.612)),
        }
    }

    /// Samples one message's notification latency.
    pub fn sample(&self, mech: IpcMechanism, rng: &mut SmallRng) -> SimDur {
        match mech {
            IpcMechanism::Signal => self.signal.sample(rng),
            IpcMechanism::MessageQueue => self.mq.sample(rng),
            IpcMechanism::Pipe => self.pipe.sample(rng),
            IpcMechanism::EventFd => self.eventfd.sample(rng),
            IpcMechanism::UintrFd => {
                // SENDUIPI + running delivery + handler entry/UIRET.
                let base = self.hw.senduipi_issue
                    + self.hw.uintr_delivery_running
                    + self.hw.uintr_handler;
                lp_hw::jitter::sample(rng, base, self.hw.jitter_sigma * 4.0)
            }
            IpcMechanism::UintrFdBlocked => {
                let base = self.hw.senduipi_issue
                    + self.hw.uintr_delivery_blocked
                    + self.hw.uintr_handler;
                lp_hw::jitter::sample(rng, base, self.hw.jitter_sigma)
            }
        }
    }

    /// [`sample`](Self::sample) plus an `ipc_sampled` event recording
    /// the mechanism ([`IpcMechanism::index`]) and drawn latency.
    pub fn sample_observed(
        &self,
        mech: IpcMechanism,
        rng: &mut SmallRng,
        at: SimTime,
        obs: &mut Observer,
    ) -> SimDur {
        let d = self.sample(mech, rng);
        obs.emit(
            at,
            Event::IpcSampled {
                mech: mech.index(),
                latency_ns: d.as_nanos(),
            },
        );
        d
    }

    /// Per-iteration overhead *besides* the notification latency that a
    /// ping-pong loop pays (loop body, state toggling). Matters only for
    /// the sub-microsecond mechanisms, where it dominates the achievable
    /// message rate (Table IV's `uintrFd` rate of 857 k/s implies ~1.17
    /// us per iteration against a 0.73 us latency).
    pub fn pingpong_iteration_overhead(&self, mech: IpcMechanism) -> SimDur {
        match mech {
            IpcMechanism::UintrFd => SimDur::nanos(430),
            IpcMechanism::UintrFdBlocked => SimDur::nanos(50),
            _ => SimDur::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_sim::rng::rng;

    fn stats(xs: &[f64]) -> (f64, f64, f64) {
        let n = xs.len() as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (min, mean, var.sqrt())
    }

    #[test]
    fn shifted_lognormal_fits_moments() {
        let d = ShiftedLognormal::from_min_mean_std(1_000.0, 5_000.0, 2_000.0);
        let mut r = rng(1, 0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r).as_nanos() as f64).collect();
        let (min, mean, std) = stats(&xs);
        assert!(min >= 1_000.0);
        assert!((mean - 5_000.0).abs() < 100.0, "mean = {mean}");
        assert!((std - 2_000.0).abs() < 200.0, "std = {std}");
        assert!((d.mean_ns() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mean must exceed min")]
    fn bad_fit_panics() {
        ShiftedLognormal::from_min_mean_std(10.0, 5.0, 1.0);
    }

    #[test]
    fn calibrated_means_match_table_iv() {
        let lat = IpcLatency::default();
        let mut r = rng(2, 0);
        let expect = [
            (IpcMechanism::Signal, 15.325),
            (IpcMechanism::MessageQueue, 10.468),
            (IpcMechanism::Pipe, 17.761),
            (IpcMechanism::EventFd, 29.688),
        ];
        for (mech, want_us) in expect {
            let n = 30_000;
            let total: f64 = (0..n)
                .map(|_| lat.sample(mech, &mut r).as_micros_f64())
                .sum();
            let mean = total / n as f64;
            let rel = (mean - want_us).abs() / want_us;
            assert!(rel < 0.05, "{}: mean {mean} vs {want_us}", mech.name());
        }
    }

    #[test]
    fn uintr_latency_emerges_near_table_iv() {
        // Not calibrated — composed from HwCosts. Check it lands near
        // the measured 0.734 us (running) and 2.393 us (blocked).
        let lat = IpcLatency::default();
        let mut r = rng(3, 0);
        let mean_of = |mech, r: &mut rand::rngs::SmallRng| {
            let n = 30_000;
            (0..n).map(|_| lat.sample(mech, r).as_micros_f64()).sum::<f64>() / n as f64
        };
        let running = mean_of(IpcMechanism::UintrFd, &mut r);
        let blocked = mean_of(IpcMechanism::UintrFdBlocked, &mut r);
        assert!((0.55..0.95).contains(&running), "running = {running} us");
        assert!((2.0..2.8).contains(&blocked), "blocked = {blocked} us");
    }

    #[test]
    fn uintr_beats_best_software_by_10x() {
        // Fig. 1 (left) / §V-B: "10x better average latency compared to
        // the fastest IPC mechanism (message queue)".
        let lat = IpcLatency::default();
        let mut r = rng(4, 0);
        let mean_of = |mech, r: &mut rand::rngs::SmallRng| {
            let n = 20_000;
            (0..n).map(|_| lat.sample(mech, r).as_micros_f64()).sum::<f64>() / n as f64
        };
        let uintr = mean_of(IpcMechanism::UintrFd, &mut r);
        let mq = mean_of(IpcMechanism::MessageQueue, &mut r);
        assert!(mq / uintr > 8.0, "gap = {}", mq / uintr);
    }

    #[test]
    fn names_and_order() {
        assert_eq!(IpcMechanism::ALL.len(), 6);
        assert_eq!(IpcMechanism::ALL[0].name(), "signal");
        assert_eq!(IpcMechanism::ALL[5].name(), "uintrFd (blocked)");
        assert!(IpcMechanism::UintrFd.is_user_interrupt());
        assert!(!IpcMechanism::Pipe.is_user_interrupt());
    }

    #[test]
    fn index_round_trips_table_iv_order() {
        for (i, mech) in IpcMechanism::ALL.iter().enumerate() {
            assert_eq!(mech.index() as usize, i);
            assert_eq!(IpcMechanism::from_index(mech.index()), Some(*mech));
        }
        assert_eq!(IpcMechanism::from_index(6), None);
    }

    #[test]
    fn sample_observed_records_mechanism_and_latency() {
        use lp_sim::obs::{Counter, Observer};
        let lat = IpcLatency::default();
        let mut r = rng(5, 0);
        let mut obs = Observer::new(8);
        let at = SimTime::from_nanos(42);
        let d = lat.sample_observed(IpcMechanism::Pipe, &mut r, at, &mut obs);
        assert_eq!(obs.metrics().get(Counter::IpcSamples), 1);
        let te = obs.events().next().copied().unwrap();
        assert_eq!(te.at, at);
        assert_eq!(
            te.ev,
            Event::IpcSampled { mech: IpcMechanism::Pipe.index(), latency_ns: d.as_nanos() }
        );
    }
}
