//! # lp-kernel — the simulated Linux kernel paths
//!
//! Models the kernel-mediated mechanisms the paper's baselines rely on
//! (and LibPreemptible bypasses):
//!
//! * [`signal`] — signal delivery serialized on a kernel lock with
//!   contention dilation. Reproduces Table IV's signal row at low load
//!   and Fig. 11's superlinear per-thread-timer curve under storms.
//! * [`timer`] — kernel timers with an effective granularity floor and
//!   expiry jitter, reproducing Fig. 12's ~60 us line for a 20 us
//!   request.
//! * [`ipc`] — the Table IV mechanism zoo. Kernel paths are calibrated
//!   to the paper's measured (min, avg, std); the `uintrFd` rows are
//!   *composed* from `lp-hw`'s architectural model so the HW/SW gap is
//!   an output, not an input.
//! * [`cost`] — every kernel latency constant in one place.

#![warn(missing_docs)]

pub mod cost;
pub mod ipc;
pub mod signal;
pub mod timer;

pub use cost::KernelCosts;
pub use ipc::{IpcLatency, IpcMechanism, ShiftedLognormal};
pub use signal::{SignalDelivery, SignalPath};
pub use timer::KernelTimer;
