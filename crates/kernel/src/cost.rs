//! Calibrated kernel cost model.
//!
//! Companion to [`lp_hw::HwCosts`]: the latency constants of the
//! kernel-mediated paths (signals, timers, syscalls) that the paper's
//! baselines depend on and that LibPreemptible exists to avoid.

use lp_sim::SimDur;

/// Latency constants for the simulated Linux 5.15 kernel.
///
/// Anchors:
///
/// * Table IV: signal ping-pong min 3.58 us — the uncontended
///   signal-delivery floor.
/// * Fig. 11: signal delivery cost grows superlinearly to ~100 us at 32
///   simultaneous timers, driven by a kernel lock taken in the signal
///   path; the hold time below reproduces that slope.
/// * Fig. 12: a kernel timer asked for a 20 us period actually fires at
///   ~60 us with high variance — the `timer_floor` plus slack.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCosts {
    /// Syscall entry/exit (ring transition + prologue).
    pub syscall: SimDur,
    /// Uncontended one-way signal delivery: sender syscall through
    /// handler invocation on the receiver.
    pub signal_deliver_base: SimDur,
    /// User-side signal handler entry + `sigreturn`.
    pub signal_handler: SimDur,
    /// Hold time of the kernel lock serializing signal dispatch to
    /// runnable threads (per-process sighand/runqueue interplay).
    pub signal_lock_hold: SimDur,
    /// Extra hold per concurrent waiter (cacheline bouncing makes the
    /// critical section itself dilate under contention; this produces
    /// Fig. 11's superlinearity).
    pub signal_lock_contention: f64,
    /// Effective minimum period of a kernel timer under load: below
    /// this, expirations quantize up (hrtimer slack + softirq batching).
    pub timer_floor: SimDur,
    /// Multiplicative jitter sigma on timer expiry.
    pub timer_jitter_sigma: f64,
    /// Cost of `timer_settime(2)`/`timerfd_settime(2)` to (re)arm.
    pub timer_arm: SimDur,
    /// Probability per timer expiry of colliding with unrelated kernel
    /// activity (IRQs, TLB shootdowns) and eating a spike.
    pub noise_spike_prob: f64,
    /// Magnitude of such a spike.
    pub noise_spike: SimDur,
    /// Kernel thread context switch (sched + CR3 swap), used by the
    /// blocked paths of eventfd/pipe/mq.
    pub ctx_switch: SimDur,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self::linux_5_15()
    }
}

impl KernelCosts {
    /// The calibrated kernel model used by every experiment.
    pub fn linux_5_15() -> Self {
        KernelCosts {
            syscall: SimDur::nanos(350),
            signal_deliver_base: SimDur::nanos(3_500),
            signal_handler: SimDur::nanos(550),
            signal_lock_hold: SimDur::nanos(2_400),
            signal_lock_contention: 0.035,
            timer_floor: SimDur::micros(55),
            timer_jitter_sigma: 0.18,
            timer_arm: SimDur::nanos(900),
            noise_spike_prob: 0.02,
            noise_spike: SimDur::micros(25),
            ctx_switch: SimDur::nanos(1_500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_floor_matches_table_iv_min() {
        let k = KernelCosts::default();
        let min_path = k.signal_deliver_base + k.signal_handler;
        let us = min_path.as_micros_f64();
        assert!((3.0..5.0).contains(&us), "signal floor = {us} us");
    }

    #[test]
    fn timer_floor_matches_fig12() {
        let k = KernelCosts::default();
        // Fig. 12: a 20 us kernel timer actually fires around 60 us.
        let us = k.timer_floor.as_micros_f64();
        assert!((45.0..70.0).contains(&us), "timer floor = {us} us");
    }

    #[test]
    fn contended_signal_storm_reaches_fig11_scale() {
        // 32 threads' timers firing at once: the last waiter should see
        // on the order of 100 us (Fig. 11, creation-time curve).
        let k = KernelCosts::default();
        let n = 32.0;
        let dilated_hold = k.signal_lock_hold.as_micros_f64() * (1.0 + k.signal_lock_contention * n);
        let last_wait = (n - 1.0) * dilated_hold + k.signal_deliver_base.as_micros_f64();
        assert!(
            (80.0..220.0).contains(&last_wait),
            "worst-case storm latency = {last_wait} us"
        );
    }
}
