//! Microbenchmarks of the substrate itself: event-queue throughput,
//! histogram recording, workload sampling, and end-to-end simulated
//! events/second — the numbers that bound how big a paper-scale run
//! can be.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use libpreemptible::{run, FcfsPreempt, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_sim::obs::{Event, Observer, TimedEvent};
use lp_sim::trace::TraceRing;
use lp_sim::{EventQueue, SimDur, SimTime};
use lp_stats::Histogram;
use lp_workload::{PhasedService, RateSchedule, ServiceDist, Zipf};
use rand::Rng;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut r = lp_sim::rng::rng(1, 0);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(r.gen_range(0..1_000_000)), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    // The LibUtimer arming pattern: every task start arms a preemption
    // deadline, most tasks complete before it fires, so the hot loop is
    // push → cancel → re-arm. With tombstones this left a dead entry in
    // the heap per iteration; generation-tagged slots make cancel O(1)
    // and keep the heap at O(live).
    g.bench_function("arm_cancel_rearm_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            let mut r = lp_sim::rng::rng(5, 0);
            // Background events keep the heap non-trivial.
            for i in 0..32u64 {
                q.push(SimTime::from_nanos(1_000_000_000 + i), i);
            }
            let mut now = 0u64;
            let mut armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
            for _ in 0..10_000 {
                q.cancel(armed);
                now += r.gen_range(1..100);
                armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    // Cancel-after-fire: the deadline already popped; the completion
    // path still calls cancel on the stale id. Must be an O(1) no-op
    // and must not grow any internal state (regression-tested in
    // lp-sim; measured here).
    g.bench_function("fire_then_cancel_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(8);
            q.push(SimTime::from_nanos(u64::MAX), 0u64);
            for i in 0..10_000u64 {
                let id = q.push(SimTime::from_nanos(i), 1);
                let fired = q.pop().expect("armed deadline");
                black_box(fired);
                q.cancel(id); // stale: the event already fired
            }
            black_box(q.live_len())
        })
    });
    g.finish();
}

fn bench_wheel(c: &mut Criterion) {
    // Cascade stress: deadlines scattered across every wheel level and
    // the overflow heap, so draining exercises level rollover, bucket
    // refiling, and heap migration — the paths a heap-only queue never
    // had.
    let mut g = c.benchmark_group("wheel_cascade");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("all_levels_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut r = lp_sim::rng::rng(6, 0);
            for i in 0..10_000u64 {
                // Log-uniform-ish spread: every level of the 2^40 ns
                // horizon gets traffic, plus ~3% overflow residents.
                let t = r.gen_range(0..1u64 << 41) >> r.gen_range(0..30);
                q.push(SimTime::from_nanos(t), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    // A long march of evenly spaced deadlines: every pop advances the
    // cursor across slot (and periodically level-window) boundaries, so
    // this isolates steady cascade cost rather than bucket drain cost.
    g.bench_function("rollover_march_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(i * 4_096), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();

    // Collision stress: many events landing in one bucket. Drain order
    // within a bucket must still follow (time, seq), so these measure
    // the intrusive-list walk and the cached-minimum recompute under
    // worst-case occupancy skew.
    let mut g = c.benchmark_group("bucket_collision");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("same_tick_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(777), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.bench_function("one_window_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut r = lp_sim::rng::rng(7, 0);
            for i in 0..10_000u64 {
                // All inside one level-2 window (one bucket from the
                // cursor's viewpoint); pops cascade it down through
                // level 1 into level 0.
                q.push(SimTime::from_nanos(r.gen_range(4_096..8_192)), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("record_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            let mut r = lp_sim::rng::rng(2, 0);
            for _ in 0..100_000 {
                h.record(r.gen_range(1..10_000_000));
            }
            black_box(h.p99())
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("zipf_100k", |b| {
        let z = Zipf::new(1_000_000, 0.99);
        let mut r = lp_sim::rng::rng(3, 0);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut r));
            }
            black_box(acc)
        })
    });
    g.bench_function("bimodal_100k", |b| {
        let d = ServiceDist::workload_a1();
        let mut r = lp_sim::rng::rng(4, 0);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(d.sample(&mut r).as_nanos());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.throughput(Throughput::Elements(100_000));
    // The typed ring (hot-path emission: counter bump + Copy store)...
    g.bench_function("typed_ring_emit_100k", |b| {
        let mut obs = Observer::new(4_096);
        b.iter(|| {
            for i in 0..100_000u64 {
                obs.emit(
                    SimTime::from_nanos(i),
                    Event::Preempt { worker: (i % 8) as u16, fiber: i as u32, ran_ns: 10_000 },
                );
            }
            black_box(obs.metrics().snapshot().counters.len())
        })
    });
    // ...versus the legacy string ring it replaced (per-push format!).
    g.bench_function("string_ring_push_100k", |b| {
        let mut ring = TraceRing::new(4_096);
        b.iter(|| {
            for i in 0..100_000u64 {
                ring.push(
                    SimTime::from_nanos(i),
                    format!("preempt fiber {} on worker {} (ran 10000ns)", i, i % 8),
                );
            }
            black_box(ring.len())
        })
    });
    // Counters only — the always-on production configuration.
    g.bench_function("counters_only_emit_100k", |b| {
        let mut obs = Observer::counters_only();
        b.iter(|| {
            for i in 0..100_000u64 {
                obs.emit(
                    SimTime::from_nanos(i),
                    Event::Preempt { worker: (i % 8) as u16, fiber: i as u32, ran_ns: 10_000 },
                );
            }
            black_box(obs.metrics().snapshot().counters.len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("trace_export");
    g.throughput(Throughput::Elements(4_096));
    g.bench_function("jsonl_4k_events", |b| {
        let mut obs = Observer::new(4_096);
        for i in 0..4_096u64 {
            obs.emit(
                SimTime::from_nanos(i * 100),
                Event::UipiSent { worker: (i % 8) as u16, vector: 0 },
            );
        }
        b.iter(|| black_box(obs.to_jsonl().len()))
    });
    g.bench_function("parse_4k_lines", |b| {
        let mut obs = Observer::new(4_096);
        for i in 0..4_096u64 {
            obs.emit(
                SimTime::from_nanos(i * 100),
                Event::TaskFinish { worker: (i % 8) as u16, fiber: i as u32, latency_ns: 5_000 },
            );
        }
        let text = obs.to_jsonl();
        b.iter(|| {
            let n = text
                .lines()
                .filter_map(TimedEvent::parse_jsonl)
                .count();
            black_box(n)
        })
    });
    g.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    // ~10k requests with preemptions: reports simulated-requests/sec.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("a1_10k_requests", |b| {
        b.iter(|| {
            let dist = ServiceDist::workload_a1();
            let rate = dist.rate_for_utilization(0.8, 4);
            let duration = SimDur::from_secs_f64(10_000.0 / rate);
            let r = run(
                RuntimeConfig::default(),
                Box::new(FcfsPreempt::fixed(SimDur::micros(5))),
                WorkloadSpec {
                    source: ServiceSource::Phased(PhasedService::constant(dist)),
                    arrivals: RateSchedule::Constant(rate),
                    duration,
                    warmup: SimDur::ZERO,
                },
            );
            black_box(r.completions)
        })
    });
    g.finish();
}

criterion_group!(
    engine,
    bench_event_queue,
    bench_wheel,
    bench_histogram,
    bench_workload,
    bench_tracing,
    bench_runtime
);
criterion_main!(engine);
