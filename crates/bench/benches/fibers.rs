//! Real-hardware microbenchmarks of the fiber layer: the numbers the
//! simulated `HwCosts.fcontext_switch` constant (40 ns) stands in for.
//!
//! `fibers/switch_pair` measures a full yield+resume round trip (two
//! stack switches), so one switch is half the reported time — on
//! typical x86-64 parts this lands in the tens of nanoseconds,
//! validating the calibrated constant.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use lp_fibers::{Fiber, RoundRobinRunner, Status};

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fibers");
    // One iteration = resume into the fiber + yield back: 2 switches.
    g.throughput(Throughput::Elements(2));
    g.bench_function("switch_pair", |b| {
        let mut fiber = Fiber::new(64 * 1024, |y| loop {
            y.yield_now();
        });
        b.iter(|| {
            let s = fiber.resume(None);
            black_box(s == Status::Yielded)
        });
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("launch_complete", |b| {
        // Full fn_launch lifecycle: stack prep + first switch + final
        // switch (fresh stack each time; pooling is benched below).
        b.iter(|| {
            let mut f = Fiber::new(16 * 1024, |_| {});
            black_box(f.resume(None) == Status::Completed)
        });
    });

    g.throughput(Throughput::Elements(64));
    g.bench_function("rr_64_tasks_pooled", |b| {
        let mut rr = RoundRobinRunner::new(Duration::from_millis(5));
        // Warm the pool.
        for _ in 0..64 {
            rr.spawn(|_| {});
        }
        rr.run();
        b.iter(|| {
            for _ in 0..64 {
                rr.spawn(|y| {
                    y.yield_now();
                });
            }
            black_box(rr.run().completed)
        });
    });
    g.finish();
}

criterion_group!(fibers, bench_switch);
criterion_main!(fibers);
