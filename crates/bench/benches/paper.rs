//! Criterion benches: one group per paper table/figure, each running
//! the corresponding experiment at quick scale. `cargo bench -p
//! lp-bench --bench paper` both times the harness and prints the
//! regenerated rows once per artifact (via eprintln at setup).
//!
//! The paper-scale numbers come from the experiment binaries
//! (`cargo run --release -p lp-experiments --bin all`); these benches
//! exist so the whole evaluation is exercised under `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lp_experiments::common::Scale;
use lp_experiments::*;

const SEED: u64 = 2024;

fn bench_table1(c: &mut Criterion) {
    eprintln!("{}", table1::run().render());
    c.bench_function("table1_oversubscription", |b| {
        b.iter(|| black_box(table1::run().render().len()))
    });
}

fn bench_fig1(c: &mut Criterion) {
    let (tl, tr) = fig1::tables(&fig1::run_left(Scale::Quick), &fig1::run_right(Scale::Quick));
    eprintln!("{}", tl.render());
    eprintln!("{}", tr.render());
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("left_ipc_gap", |b| {
        b.iter(|| black_box(fig1::run_left(Scale::Quick).len()))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    eprintln!("{}", fig2::table(&fig2::run_fig2(Scale::Quick, SEED)).render());
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("quantum_sweep", |b| {
        b.iter(|| black_box(fig2::run_fig2(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let pts = fig8::run_fig8(Scale::Quick, SEED);
    eprintln!("{}", fig8::sweep_table(&pts).render());
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    // One representative point per system rather than the whole sweep.
    for sys in SystemUnderTest::ALL {
        g.bench_function(&format!("A1_rho0.8/{}", sys.name()), |b| {
            b.iter(|| {
                let rate = PaperWorkload::A1.rate_for(0.8, sys.workers());
                let r = common::run_system(sys, PaperWorkload::A1, rate, Scale::Quick, SEED);
                black_box(r.latency.p99())
            })
        });
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let rows = fig9::run_fig9(Scale::Quick, SEED);
    eprintln!("{}", fig9::table(&rows).render());
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("adaptive_workload_c", |b| {
        b.iter(|| black_box(fig9::run_fig9(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let pts = fig10::run_fig10(Scale::Quick, SEED);
    eprintln!("{}", fig10::table(&pts).render());
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("rpc_overhead_grid", |b| {
        b.iter(|| black_box(fig10::run_fig10(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let rows = table4::run(Scale::Quick);
    eprintln!("{}", table4::table(&rows).render());
    let mut g = c.benchmark_group("table4");
    g.bench_function("ipc_pingpong", |b| {
        b.iter(|| black_box(table4::run(Scale::Quick).len()))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let cells = fig11::run_fig11(Scale::Quick, SEED);
    eprintln!("{}", fig11::table(&cells).render());
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("timer_scalability", |b| {
        b.iter(|| black_box(fig11::run_fig11(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let rows = fig12::run_fig12(Scale::Quick, SEED);
    eprintln!("{}", fig12::table(&rows).render());
    let mut g = c.benchmark_group("fig12");
    g.bench_function("timer_precision", |b| {
        b.iter(|| black_box(fig12::run_fig12(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let left = fig13::run_left(Scale::Quick, SEED);
    eprintln!("{}", fig13::table(&left, "Fig 13 (left)").render());
    let right = fig13::run_right(Scale::Quick, SEED);
    eprintln!("{}", fig13::table(&right, "Fig 13 (right)").render());
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("colocation_left", |b| {
        b.iter(|| black_box(fig13::run_left(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let rows = fig14::run_fig14(Scale::Quick, SEED);
    eprintln!("{}", fig14::table(&rows).render());
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("bursty_adaptive", |b| {
        b.iter(|| black_box(fig14::run_fig14(Scale::Quick, SEED).len()))
    });
    g.finish();
}

fn bench_ext(c: &mut Criterion) {
    eprintln!("{}", ext::power_table().render());
    eprintln!("{}", ext::security_table().render());
    eprintln!(
        "{}",
        ext::min_quantum_table(&ext::run_min_quantum(Scale::Quick, SEED)).render()
    );
    let mut g = c.benchmark_group("ext");
    g.sample_size(10);
    g.bench_function("min_quantum_sweep", |b| {
        b.iter(|| black_box(ext::run_min_quantum(Scale::Quick, SEED).len()))
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_table4,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_ext,
);
criterion_main!(paper);
