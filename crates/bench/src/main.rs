//! `lp-bench` — the perf-regression harness.
//!
//! Measures the numbers that bound how big a paper-scale run can be and
//! how much the parallel runner buys:
//!
//! * event-queue push/pop throughput (engine events/second);
//! * the cancellation-heavy LibUtimer pattern (push → cancel → re-arm);
//! * wall-clock for the quick-scale `all` artifact list, serial
//!   (`LP_JOBS=1`) vs. parallel, plus the speedup — and a byte-identity
//!   check that both runs produced the same tables and CSVs;
//! * the healthy-path cost of the fault-injection machinery: the same
//!   run with no `FaultPlan` vs. an armed-but-unreachable one (injector
//!   constructed, a watchdog per preemption, zero faults fire). The
//!   results must be identical and the wall-clock overhead is the
//!   number CI gates at < 2% (see `docs/FAULTS.md`);
//! * the healthy-path cost of the admission gate: the same run with
//!   admission disabled vs. armed with unreachable caps. Same
//!   identical-results requirement, same < 2% CI gate (see
//!   `docs/CHAOS.md`);
//! * the cost of the always-on tail-attribution accountant: the same
//!   run with the phase accountant off vs. on (the shipped default).
//!   Scheduling results must be identical — attribution is passive —
//!   and the wall-clock overhead is gated at < 2% (see
//!   `docs/TRACING.md`).
//!
//! `lp-bench --json` additionally writes `BENCH_results.json` (schema
//! documented in `docs/PERFORMANCE.md`) for CI artifact upload and
//! regression tracking. Exits non-zero if the serial and parallel
//! outputs differ.
//!
//! Wall-clock timing is inherently nondeterministic; this binary is the
//! one place that reads the host clock, covered by the lint's static
//! allowlist (see `docs/CHECKS.md`).

use std::time::Instant;

use libpreemptible::runtime::AdmissionConfig;
use libpreemptible::{run, FcfsPreempt, RunReport, RuntimeConfig, ServiceSource, WorkloadSpec};
use lp_experiments::runner::{self, ArtifactOutput};
use lp_experiments::{Scale, DEFAULT_SEED};
use lp_sim::fault::{FaultKind, FaultPlan};
use lp_sim::{EventQueue, SimDur, SimTime};
use lp_workload::{PhasedService, RateSchedule, ServiceDist};

/// Events per measured iteration of the queue microbenchmarks.
const EVENTS: u64 = 10_000;
/// Timed iterations (after warmup).
const ITERS: u32 = 20;
/// Timed iterations for the two sub-millisecond engine metrics. Their
/// minimum-of-iterations estimate needs one iteration to land in a
/// quiet scheduling window; at ~0.5 ms each, extra samples are free,
/// so take enough that the estimate converges even on a busy host.
const ENGINE_ITERS: u32 = 60;
/// Warmup iterations, excluded from the measurement.
const WARMUP: u32 = 3;

/// Deterministic pseudo-random event time in `[0, 1ms)` — keeps the
/// heap order non-trivial without pulling an RNG into the binary.
fn scatter(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000
}

/// Push/pop throughput of the event queue, in events per second
/// (counting each pushed-then-popped event once). Like
/// `fault_overhead`, the estimate is the *fastest* measured iteration:
/// every iteration does identical deterministic work, so the minimum
/// is the noise-robust estimate of the code's true cost (a mean
/// absorbs every scheduler hiccup of the host, which on a shared CI
/// runner swings far more than the 10% the perf gate polices).
fn push_pop_events_per_sec() -> f64 {
    let mut best = f64::INFINITY;
    for it in 0..WARMUP + ENGINE_ITERS {
        let mut q = EventQueue::with_capacity(EVENTS as usize);
        let start = Instant::now();
        for i in 0..EVENTS {
            q.push(SimTime::from_nanos(scatter(i)), i);
        }
        let mut n = 0u64;
        while q.pop().is_some() {
            n += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(n, EVENTS);
        if it >= WARMUP {
            best = best.min(elapsed);
        }
    }
    EVENTS as f64 / best
}

/// The LibUtimer arming pattern: push a deadline, cancel it, re-arm.
/// Reported as re-arm cycles per second, estimated as the fastest
/// measured iteration (see `push_pop_events_per_sec` on why).
fn arm_cancel_rearm_per_sec() -> f64 {
    let mut best = f64::INFINITY;
    for it in 0..WARMUP + ENGINE_ITERS {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..32u64 {
            q.push(SimTime::from_nanos(1_000_000_000 + i), i);
        }
        let mut now = 0u64;
        let start = Instant::now();
        let mut armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
        for i in 0..EVENTS {
            q.cancel(armed);
            now += 1 + scatter(i) % 99;
            armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
        }
        while q.pop().is_some() {}
        let elapsed = start.elapsed().as_secs_f64();
        if it >= WARMUP {
            best = best.min(elapsed);
        }
    }
    EVENTS as f64 / best
}

/// One iteration of the fault-overhead workload: preemption-heavy
/// (every request needs many quanta), UINTR mechanism.
fn fault_probe_run(faults: FaultPlan) -> RunReport {
    probe_run(faults, AdmissionConfig::default(), true)
}

fn probe_run(faults: FaultPlan, admission: AdmissionConfig, attribution: bool) -> RunReport {
    run(
        RuntimeConfig {
            workers: 4,
            control_period: SimDur::millis(10),
            faults,
            admission,
            attribution,
            ..RuntimeConfig::default()
        },
        Box::new(FcfsPreempt::fixed(SimDur::micros(10))),
        WorkloadSpec {
            source: ServiceSource::Phased(PhasedService::constant(ServiceDist::workload_b())),
            arrivals: RateSchedule::Constant(300_000.0),
            // Long enough that the <2% overhead gate sits above the
            // host's scheduling-noise floor now that the timing-wheel
            // engine drains this run several times faster.
            duration: SimDur::millis(200),
            warmup: SimDur::millis(5),
        },
    )
}

/// Wall-clock cost of the fault-injection machinery on the healthy
/// path: disabled plan vs. an armed plan whose single scheduled fault
/// sits at an unreachable occurrence — the injector exists and every
/// preemption arms a watchdog, but nothing ever fires. Returns
/// `(healthy_secs, armed_secs, results_identical)` where the times are
/// the *minimum* over the measured iterations: the two configurations
/// are interleaved and each does identical deterministic work, so the
/// fastest observed run of each is the noise-robust estimate of its
/// true cost (sums/means absorb every scheduler hiccup of the host).
/// The two runs must produce identical results or the machinery is not
/// a no-op.
fn fault_overhead() -> (f64, f64, bool) {
    let armed_plan = || FaultPlan::once(FaultKind::IpiDrop, u64::MAX);
    let mut healthy_secs = f64::INFINITY;
    let mut armed_secs = f64::INFINITY;
    let mut identical = true;
    for it in 0..WARMUP + ITERS {
        let start = Instant::now();
        let healthy = fault_probe_run(FaultPlan::disabled());
        let healthy_t = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let armed = fault_probe_run(armed_plan());
        let armed_t = start.elapsed().as_secs_f64();
        if it >= WARMUP {
            healthy_secs = healthy_secs.min(healthy_t);
            armed_secs = armed_secs.min(armed_t);
        }
        identical &= healthy.arrivals == armed.arrivals
            && healthy.completions == armed.completions
            && healthy.preemptions == armed.preemptions
            && healthy.latency.p99() == armed.latency.p99()
            && healthy.metrics.counters == armed.metrics.counters
            && armed.metrics.counter("faults_injected") == 0;
    }
    (healthy_secs, armed_secs, identical)
}

/// Wall-clock cost of the admission gate on the healthy path: the
/// same run with admission disabled vs. armed with caps the workload
/// never reaches (the gate is consulted at every dispatch but stays
/// silent — no shed, no event, no RNG draw). Returns
/// `(disabled_secs, armed_secs, results_identical)`, minimum over the
/// measured iterations as in [`fault_overhead`]. Identical results are
/// the byte-identity half of the "armed but idle" contract
/// (`docs/CHAOS.md`); the wall-clock ratio is the number CI gates at
/// < 2%.
fn admission_overhead() -> (f64, f64, bool) {
    let armed_cfg = || AdmissionConfig {
        enabled: true,
        queue_cap: usize::MAX,
        brownout_cap: usize::MAX,
        slo_aware: false,
    };
    let mut disabled_secs = f64::INFINITY;
    let mut armed_secs = f64::INFINITY;
    let mut identical = true;
    for it in 0..WARMUP + ITERS {
        let start = Instant::now();
        let disabled = probe_run(FaultPlan::disabled(), AdmissionConfig::default(), true);
        let disabled_t = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let armed = probe_run(FaultPlan::disabled(), armed_cfg(), true);
        let armed_t = start.elapsed().as_secs_f64();
        if it >= WARMUP {
            disabled_secs = disabled_secs.min(disabled_t);
            armed_secs = armed_secs.min(armed_t);
        }
        identical &= disabled.arrivals == armed.arrivals
            && disabled.completions == armed.completions
            && disabled.preemptions == armed.preemptions
            && disabled.latency.p99() == armed.latency.p99()
            && disabled.metrics.counters == armed.metrics.counters
            && armed.metrics.counter("sheds") == 0
            && armed.metrics.counter("admissions") == 0;
    }
    (disabled_secs, armed_secs, identical)
}

/// Wall-clock cost of the tail-attribution accountant, which ships
/// always-on: the same preemption-heavy run with the phase accountant
/// enabled (the shipped default) vs. disabled (the off switch exists
/// only for this measurement — see `docs/TRACING.md`). Returns
/// `(off_secs, on_secs, results_identical)`, minimum over the measured
/// iterations as in [`fault_overhead`]. The accountant is a passive
/// observer — no RNG draws, no simulated time — so every scheduling
/// result must be identical; the wall-clock ratio is the number CI
/// gates at < 2%.
fn attribution_overhead() -> (f64, f64, bool) {
    // Twice the shared iteration budget: this section gates < 2 %, the
    // tightest bound in the file, so it gets the most chances to hit
    // the host's noise floor (each iteration is only ~60 ms).
    let iters = 2 * ITERS;
    let mut off_secs = f64::INFINITY;
    let mut on_secs = f64::INFINITY;
    let mut identical = true;
    for it in 0..WARMUP + iters {
        let start = Instant::now();
        let off = probe_run(FaultPlan::disabled(), AdmissionConfig::default(), false);
        let off_t = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let on = probe_run(FaultPlan::disabled(), AdmissionConfig::default(), true);
        let on_t = start.elapsed().as_secs_f64();
        if it >= WARMUP {
            off_secs = off_secs.min(off_t);
            on_secs = on_secs.min(on_t);
        }
        identical &= off.arrivals == on.arrivals
            && off.completions == on.completions
            && off.preemptions == on.preemptions
            && off.latency.p99() == on.latency.p99()
            && off.metrics.counters == on.metrics.counters
            && off.phases.end_to_end.is_empty()
            && on.phases.end_to_end.count() == on.completions
            && on.worst_exemplar().is_some_and(|e| e.phase_sum() == e.latency_ns);
    }
    (off_secs, on_secs, identical)
}

/// Runs the quick-scale artifact list once, returning the outputs and
/// the wall-clock seconds.
fn timed_all(jobs: usize) -> (Vec<(&'static str, ArtifactOutput)>, f64) {
    let start = Instant::now();
    let out = runner::with_jobs(jobs, || {
        runner::run_artifacts(&runner::all_artifacts(), Scale::Quick, DEFAULT_SEED)
    });
    (out, start.elapsed().as_secs_f64())
}

/// Byte-compares two artifact runs: names, rendered tables, and CSVs.
fn outputs_identical(
    a: &[(&'static str, ArtifactOutput)],
    b: &[(&'static str, ArtifactOutput)],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((na, oa), (nb, ob))| {
            na == nb
                && oa.csvs == ob.csvs
                && oa.tables.len() == ob.tables.len()
                && oa
                    .tables
                    .iter()
                    .zip(&ob.tables)
                    .all(|(ta, tb)| ta.render() == tb.render())
        })
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    eprintln!("lp-bench: event queue (push/pop) ...");
    let push_pop = push_pop_events_per_sec();
    eprintln!("lp-bench: event queue (arm/cancel/re-arm) ...");
    let rearm = arm_cancel_rearm_per_sec();

    eprintln!("lp-bench: fault-injection overhead (healthy vs armed) ...");
    let (fault_healthy_secs, fault_armed_secs, fault_identical) = fault_overhead();
    let fault_overhead_pct = (fault_armed_secs / fault_healthy_secs - 1.0) * 100.0;

    eprintln!("lp-bench: admission-gate overhead (disabled vs armed-idle) ...");
    let (adm_disabled_secs, adm_armed_secs, adm_identical) = admission_overhead();
    let adm_overhead_pct = (adm_armed_secs / adm_disabled_secs - 1.0) * 100.0;

    eprintln!("lp-bench: attribution overhead (off vs always-on) ...");
    let (attr_off_secs, attr_on_secs, attr_identical) = attribution_overhead();
    let attr_overhead_pct = (attr_on_secs / attr_off_secs - 1.0) * 100.0;

    let jobs = runner::jobs();
    eprintln!("lp-bench: quick-scale all, serial ...");
    let (serial_out, serial_secs) = timed_all(1);
    eprintln!("lp-bench: quick-scale all, {jobs} job(s) ...");
    let (par_out, par_secs) = timed_all(jobs);
    let identical = outputs_identical(&serial_out, &par_out);
    let speedup = serial_secs / par_secs;
    // A fixed LP_JOBS=8 point rides along so the recorded matrix always
    // has a host-independent parallel column next to the serial one
    // (the `jobs` point above floats with the runner's default).
    eprintln!("lp-bench: quick-scale all, 8 jobs ...");
    let (par8_out, par8_secs) = timed_all(8);
    let identical8 = outputs_identical(&serial_out, &par8_out);
    let speedup8 = serial_secs / par8_secs;

    println!("engine.push_pop:        {:>12.0} events/s", push_pop);
    println!("engine.arm_cancel_rearm:{:>12.0} cycles/s", rearm);
    println!("faults.healthy:         {fault_healthy_secs:>12.3} s");
    println!("faults.armed:           {fault_armed_secs:>12.3} s");
    println!("faults.overhead:        {fault_overhead_pct:>12.2} %");
    println!(
        "faults.results:         {}",
        if fault_identical { "identical" } else { "DIFFER" }
    );
    println!("admission.disabled:     {adm_disabled_secs:>12.3} s");
    println!("admission.armed:        {adm_armed_secs:>12.3} s");
    println!("admission.overhead:     {adm_overhead_pct:>12.2} %");
    println!(
        "admission.results:      {}",
        if adm_identical { "identical" } else { "DIFFER" }
    );
    println!("attribution.off:        {attr_off_secs:>12.3} s");
    println!("attribution.on:         {attr_on_secs:>12.3} s");
    println!("attribution.overhead:   {attr_overhead_pct:>12.2} %");
    println!(
        "attribution.results:    {}",
        if attr_identical { "identical" } else { "DIFFER" }
    );
    println!("all(quick).serial:      {serial_secs:>12.2} s");
    println!("all(quick).parallel:    {par_secs:>12.2} s  (LP_JOBS={jobs})");
    println!("all(quick).speedup:     {speedup:>12.2} x");
    println!(
        "all(quick).outputs:     {}",
        if identical { "identical" } else { "DIFFER" }
    );
    println!("all(quick).parallel8:   {par8_secs:>12.2} s  (LP_JOBS=8)");
    println!("all(quick).speedup8:    {speedup8:>12.2} x");
    println!(
        "all(quick).outputs8:    {}",
        if identical8 { "identical" } else { "DIFFER" }
    );

    if json {
        let body = format!(
            "{{\n  \"schema\": \"lp-bench/4\",\n  \"engine\": {{\n    \"push_pop_events_per_sec\": {push_pop:.0},\n    \"arm_cancel_rearm_per_sec\": {rearm:.0}\n  }},\n  \"fault_overhead\": {{\n    \"healthy_secs\": {fault_healthy_secs:.3},\n    \"armed_secs\": {fault_armed_secs:.3},\n    \"overhead_pct\": {fault_overhead_pct:.3},\n    \"results_identical\": {fault_identical}\n  }},\n  \"admission_overhead\": {{\n    \"disabled_secs\": {adm_disabled_secs:.3},\n    \"armed_secs\": {adm_armed_secs:.3},\n    \"overhead_pct\": {adm_overhead_pct:.3},\n    \"results_identical\": {adm_identical}\n  }},\n  \"attribution_overhead\": {{\n    \"off_secs\": {attr_off_secs:.3},\n    \"on_secs\": {attr_on_secs:.3},\n    \"overhead_pct\": {attr_overhead_pct:.3},\n    \"results_identical\": {attr_identical}\n  }},\n  \"all_quick\": {{\n    \"jobs\": {jobs},\n    \"serial_secs\": {serial_secs:.3},\n    \"parallel_secs\": {par_secs:.3},\n    \"speedup\": {speedup:.3},\n    \"outputs_identical\": {identical},\n    \"parallel8_secs\": {par8_secs:.3},\n    \"speedup8\": {speedup8:.3},\n    \"outputs8_identical\": {identical8}\n  }}\n}}\n"
        );
        std::fs::write("BENCH_results.json", body).expect("write BENCH_results.json");
        eprintln!("lp-bench: wrote BENCH_results.json");
    }

    if !identical || !identical8 {
        eprintln!("lp-bench: serial and parallel outputs differ — determinism regression");
        std::process::exit(1);
    }
    if !fault_identical {
        eprintln!("lp-bench: armed-but-silent fault plan changed results — injector is not a no-op");
        std::process::exit(1);
    }
    if !adm_identical {
        eprintln!("lp-bench: armed-but-idle admission gate changed results — gate is not a no-op");
        std::process::exit(1);
    }
    if !attr_identical {
        eprintln!("lp-bench: the phase accountant changed scheduling results — attribution is not passive");
        std::process::exit(1);
    }
}
