//! `lp-bench` — the perf-regression harness.
//!
//! Measures the numbers that bound how big a paper-scale run can be and
//! how much the parallel runner buys:
//!
//! * event-queue push/pop throughput (engine events/second);
//! * the cancellation-heavy LibUtimer pattern (push → cancel → re-arm);
//! * wall-clock for the quick-scale `all` artifact list, serial
//!   (`LP_JOBS=1`) vs. parallel, plus the speedup — and a byte-identity
//!   check that both runs produced the same tables and CSVs.
//!
//! `lp-bench --json` additionally writes `BENCH_results.json` (schema
//! documented in `docs/PERFORMANCE.md`) for CI artifact upload and
//! regression tracking. Exits non-zero if the serial and parallel
//! outputs differ.
//!
//! Wall-clock timing is inherently nondeterministic; this binary is the
//! one place that reads the host clock, covered by the lint's static
//! allowlist (see `docs/CHECKS.md`).

use std::time::Instant;

use lp_experiments::runner::{self, ArtifactOutput};
use lp_experiments::{Scale, DEFAULT_SEED};
use lp_sim::{EventQueue, SimTime};

/// Events per measured iteration of the queue microbenchmarks.
const EVENTS: u64 = 10_000;
/// Timed iterations (after warmup).
const ITERS: u32 = 20;
/// Warmup iterations, excluded from the measurement.
const WARMUP: u32 = 3;

/// Deterministic pseudo-random event time in `[0, 1ms)` — keeps the
/// heap order non-trivial without pulling an RNG into the binary.
fn scatter(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000
}

/// Push/pop throughput of the event queue, in events per second
/// (counting each pushed-then-popped event once).
fn push_pop_events_per_sec() -> f64 {
    let mut total = 0.0f64;
    for it in 0..WARMUP + ITERS {
        let mut q = EventQueue::with_capacity(EVENTS as usize);
        let start = Instant::now();
        for i in 0..EVENTS {
            q.push(SimTime::from_nanos(scatter(i)), i);
        }
        let mut n = 0u64;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, EVENTS);
        if it >= WARMUP {
            total += start.elapsed().as_secs_f64();
        }
    }
    (EVENTS * ITERS as u64) as f64 / total
}

/// The LibUtimer arming pattern: push a deadline, cancel it, re-arm.
/// Reported as re-arm cycles per second.
fn arm_cancel_rearm_per_sec() -> f64 {
    let mut total = 0.0f64;
    for it in 0..WARMUP + ITERS {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..32u64 {
            q.push(SimTime::from_nanos(1_000_000_000 + i), i);
        }
        let mut now = 0u64;
        let start = Instant::now();
        let mut armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
        for i in 0..EVENTS {
            q.cancel(armed);
            now += 1 + scatter(i) % 99;
            armed = q.push(SimTime::from_nanos(now + 100), u64::MAX);
        }
        while q.pop().is_some() {}
        if it >= WARMUP {
            total += start.elapsed().as_secs_f64();
        }
    }
    (EVENTS * ITERS as u64) as f64 / total
}

/// Runs the quick-scale artifact list once, returning the outputs and
/// the wall-clock seconds.
fn timed_all(jobs: usize) -> (Vec<(&'static str, ArtifactOutput)>, f64) {
    let start = Instant::now();
    let out = runner::with_jobs(jobs, || {
        runner::run_artifacts(&runner::all_artifacts(), Scale::Quick, DEFAULT_SEED)
    });
    (out, start.elapsed().as_secs_f64())
}

/// Byte-compares two artifact runs: names, rendered tables, and CSVs.
fn outputs_identical(
    a: &[(&'static str, ArtifactOutput)],
    b: &[(&'static str, ArtifactOutput)],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((na, oa), (nb, ob))| {
            na == nb
                && oa.csvs == ob.csvs
                && oa.tables.len() == ob.tables.len()
                && oa
                    .tables
                    .iter()
                    .zip(&ob.tables)
                    .all(|(ta, tb)| ta.render() == tb.render())
        })
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    eprintln!("lp-bench: event queue (push/pop) ...");
    let push_pop = push_pop_events_per_sec();
    eprintln!("lp-bench: event queue (arm/cancel/re-arm) ...");
    let rearm = arm_cancel_rearm_per_sec();

    let jobs = runner::jobs();
    eprintln!("lp-bench: quick-scale all, serial ...");
    let (serial_out, serial_secs) = timed_all(1);
    eprintln!("lp-bench: quick-scale all, {jobs} job(s) ...");
    let (par_out, par_secs) = timed_all(jobs);
    let identical = outputs_identical(&serial_out, &par_out);
    let speedup = serial_secs / par_secs;

    println!("engine.push_pop:        {:>12.0} events/s", push_pop);
    println!("engine.arm_cancel_rearm:{:>12.0} cycles/s", rearm);
    println!("all(quick).serial:      {serial_secs:>12.2} s");
    println!("all(quick).parallel:    {par_secs:>12.2} s  (LP_JOBS={jobs})");
    println!("all(quick).speedup:     {speedup:>12.2} x");
    println!(
        "all(quick).outputs:     {}",
        if identical { "identical" } else { "DIFFER" }
    );

    if json {
        let body = format!(
            "{{\n  \"schema\": \"lp-bench/1\",\n  \"engine\": {{\n    \"push_pop_events_per_sec\": {push_pop:.0},\n    \"arm_cancel_rearm_per_sec\": {rearm:.0}\n  }},\n  \"all_quick\": {{\n    \"jobs\": {jobs},\n    \"serial_secs\": {serial_secs:.3},\n    \"parallel_secs\": {par_secs:.3},\n    \"speedup\": {speedup:.3},\n    \"outputs_identical\": {identical}\n  }}\n}}\n"
        );
        std::fs::write("BENCH_results.json", body).expect("write BENCH_results.json");
        eprintln!("lp-bench: wrote BENCH_results.json");
    }

    if !identical {
        eprintln!("lp-bench: serial and parallel outputs differ — determinism regression");
        std::process::exit(1);
    }
}
