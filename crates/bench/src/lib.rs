//! Microbenchmark harness crate: no library code — the benchmarks live
//! in `benches/engine.rs`. Run with `cargo bench -p lp-bench`.

#![warn(missing_docs)]
