//! Real preemptible functions (paper §IV-C) on switched stacks.
//!
//! A [`Fiber`] runs a closure on its own stack. Control returns to the
//! caller when the closure completes, explicitly yields, or passes a
//! *preemption point* after its time slice expired — exactly the
//! `fn_launch` / `fn_resume` / `fn_completed` contract of the paper,
//! with the UINTR-driven asynchronous preemption replaced by
//! deadline-checked safe points (the portable fallback the paper
//! prescribes for hardware without user interrupts).

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::arch::{prepare_stack, switch_stacks, StackPointer};
use crate::stack::Stack;

/// Why control came back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The function ran to completion (`fn_completed` is now true).
    Completed,
    /// The function called [`Yielder::yield_now`].
    Yielded,
    /// The function passed a preemption point after its deadline.
    Preempted,
}

/// Yield codes passed through the stack switch.
const CODE_COMPLETED: usize = 0;
const CODE_YIELDED: usize = 1;
const CODE_PREEMPTED: usize = 2;
const CODE_PANICKED: usize = 3;
/// Resume codes.
const RESUME_FIRST_MASK: usize = !0; // first resume passes the inner ptr
const RESUME_RUN: usize = 0;
const RESUME_CANCEL: usize = 1;

/// Cancellation token unwound through a cancelled fiber.
struct Cancelled;

struct Inner {
    /// Caller's saved stack pointer while the fiber runs.
    caller_sp: UnsafeCell<StackPointer>,
    /// Fiber's saved stack pointer while suspended.
    fiber_sp: UnsafeCell<StackPointer>,
    /// The closure, present until first entry.
    func: UnsafeCell<Option<Box<dyn FnOnce(&Yielder)>>>,
    /// Deadline for the current slice (checked at preemption points).
    deadline: Cell<Option<Instant>>,
    /// Set when the next resume should unwind the fiber.
    cancel: Cell<bool>,
    /// Payload of a panic that escaped the closure.
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    /// Times the fiber was preempted at a safe point.
    preemptions: Cell<u32>,
}

/// The entry function the architecture trampoline calls on the fiber's
/// stack. `arg` is the `Inner` pointer passed by the first switch.
pub(crate) unsafe extern "sysv64" fn fiber_entry(arg: usize) -> ! {
    // SAFETY: the only caller is the arch trampoline, whose bootstrap
    // frame was filed by `Fiber::with_stack` with `arg` set to the
    // `Inner` box that outlives the whole run of this fiber.
    let inner = unsafe { &*(arg as *const Inner) };
    let yielder = Yielder {
        inner,
        _not_send: PhantomData,
    };
    // SAFETY: `func` is only taken here, exactly once per fiber (first
    // entry); no other reference to the cell exists while we run.
    let func = unsafe { (*inner.func.get()).take() }.expect("fiber entered twice");
    let result = catch_unwind(AssertUnwindSafe(|| func(&yielder)));
    let code = match result {
        Ok(()) => CODE_COMPLETED,
        Err(payload) => {
            if payload.downcast_ref::<Cancelled>().is_some() {
                CODE_COMPLETED
            } else {
                // SAFETY: the caller side only reads `panic` after this
                // fiber switched out for good (CODE_PANICKED below).
                unsafe { *inner.panic.get() = Some(payload) };
                CODE_PANICKED
            }
        }
    };
    // Final switch out; this context is dead and must never resume.
    // SAFETY: `caller_sp` was stored by the `resume` that entered us
    // and its stack is suspended waiting for exactly this switch.
    unsafe { switch_stacks(inner.fiber_sp.get(), inner.caller_sp.get(), code) };
    unreachable!("completed fiber resumed");
}

/// Handle the running closure uses to cede control.
pub struct Yielder<'a> {
    inner: &'a Inner,
    _not_send: PhantomData<*mut ()>,
}

impl Yielder<'_> {
    fn switch_out(&self, code: usize) {
        // SAFETY: called from fiber context only (the Yielder never
        // leaves the closure), so `caller_sp` holds the suspended
        // caller written by the `resume` that entered us.
        let resume = unsafe {
            switch_stacks(
                self.inner.fiber_sp.get(),
                self.inner.caller_sp.get(),
                code,
            )
        };
        if resume == RESUME_CANCEL || self.inner.cancel.get() {
            std::panic::panic_any(Cancelled);
        }
    }

    /// Unconditionally yields to the caller ([`Status::Yielded`]).
    pub fn yield_now(&self) {
        self.switch_out(CODE_YIELDED);
    }

    /// A preemption point: yields with [`Status::Preempted`] iff the
    /// current slice's deadline has passed. Returns `true` if a
    /// preemption happened (and the fiber has since been resumed).
    ///
    /// This is the safe-point analogue of the UINTR handler: on
    /// UINTR-less hardware LibPreemptible "will fall back to standard
    /// interrupts"; in a plain library context the fallback is
    /// cooperative checks against the armed deadline.
    pub fn preempt_point(&self) -> bool {
        match self.inner.deadline.get() {
            Some(d) if Instant::now() >= d => {
                self.inner.preemptions.set(self.inner.preemptions.get() + 1);
                self.switch_out(CODE_PREEMPTED);
                true
            }
            _ => false,
        }
    }

    /// Remaining time in the current slice, if a deadline is armed.
    pub fn remaining_slice(&self) -> Option<Duration> {
        self.inner
            .deadline
            .get()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

enum State {
    /// Never entered.
    Fresh,
    /// Suspended at a yield or preemption point.
    Suspended,
    /// Done (or cancelled); stack reusable.
    Completed,
}

/// A preemptible function: a closure running on its own switched
/// stack, resumable slice by slice.
///
/// ```
/// use lp_fibers::{Fiber, Status};
/// use std::time::Duration;
///
/// let mut counter = 0u32;
/// let mut fiber = Fiber::new(8192, |y| {
///     for _ in 0..3 {
///         y.yield_now();
///     }
/// });
/// // fn_launch semantics: run until completion or yield.
/// let mut status = fiber.resume(None);
/// while status != Status::Completed {
///     counter += 1;
///     status = fiber.resume(None);
/// }
/// assert_eq!(counter, 3);
/// assert!(fiber.completed());
/// ```
pub struct Fiber {
    inner: Box<Inner>,
    stack: Option<Stack>,
    state: State,
    /// Fibers hold raw stack state; moving the handle between threads
    /// while suspended is fine (the state is self-contained), but the
    /// handle is intentionally !Sync.
    _not_sync: PhantomData<Cell<()>>,
}

impl Fiber {
    /// Creates a fiber with a dedicated stack of `stack_size` bytes.
    /// Execution does not start until [`resume`](Self::resume) —
    /// compose `new` + `resume` for the paper's `fn_launch`.
    pub fn new<F>(stack_size: usize, f: F) -> Self
    where
        F: FnOnce(&Yielder) + 'static,
    {
        Self::with_stack(Stack::new(stack_size), f)
    }

    /// Creates a fiber on a caller-provided (possibly pooled) stack.
    pub fn with_stack<F>(stack: Stack, f: F) -> Self
    where
        F: FnOnce(&Yielder) + 'static,
    {
        // SAFETY: `stack.top()` is the one-past-the-end address of an
        // owned, writable, 16-byte-aligned allocation of >= 4 KiB —
        // ample for the 7-word bootstrap frame.
        let sp = unsafe { prepare_stack(stack.top()) };
        Fiber {
            inner: Box::new(Inner {
                caller_sp: UnsafeCell::new(0),
                fiber_sp: UnsafeCell::new(sp),
                func: UnsafeCell::new(Some(Box::new(f))),
                deadline: Cell::new(None),
                cancel: Cell::new(false),
                panic: UnsafeCell::new(None),
                preemptions: Cell::new(0),
            }),
            stack: Some(stack),
            state: State::Fresh,
            _not_sync: PhantomData,
        }
    }

    /// Runs the fiber until it completes, yields, or — when `slice` is
    /// given — passes a preemption point after the slice expires.
    ///
    /// # Panics
    ///
    /// Panics if the fiber already completed, or re-raises a panic
    /// that escaped the fiber's closure.
    pub fn resume(&mut self, slice: Option<Duration>) -> Status {
        let first = matches!(self.state, State::Fresh);
        assert!(
            !matches!(self.state, State::Completed),
            "resuming a completed fiber"
        );
        self.inner.deadline.set(slice.map(|s| Instant::now() + s));
        let arg = if first {
            (&*self.inner as *const Inner as usize) & RESUME_FIRST_MASK
        } else {
            RESUME_RUN
        };
        // SAFETY: `fiber_sp` is either the bootstrap frame filed by
        // `prepare_stack` (first resume) or the frame saved by the
        // fiber's own `switch_out`; the state check above guarantees
        // the fiber is not completed, so the frame is live and unique.
        let code = unsafe {
            switch_stacks(self.inner.caller_sp.get(), self.inner.fiber_sp.get(), arg)
        };
        match code {
            CODE_COMPLETED => {
                self.state = State::Completed;
                Status::Completed
            }
            CODE_YIELDED => {
                self.state = State::Suspended;
                Status::Yielded
            }
            CODE_PREEMPTED => {
                self.state = State::Suspended;
                Status::Preempted
            }
            CODE_PANICKED => {
                self.state = State::Completed;
                // SAFETY: the fiber stored the payload and switched out
                // for good before signalling CODE_PANICKED; we are the
                // only remaining accessor of the cell.
                let payload = unsafe { (*self.inner.panic.get()).take() }
                    .expect("panicked fiber without payload");
                resume_unwind(payload);
            }
            other => unreachable!("bad yield code {other}"),
        }
    }

    /// `fn_completed`: whether the function finished (so "a reschedule
    /// is unnecessary").
    pub fn completed(&self) -> bool {
        matches!(self.state, State::Completed)
    }

    /// How many times the fiber was preempted at safe points.
    pub fn preemptions(&self) -> u32 {
        self.inner.preemptions.get()
    }

    /// Reclaims the stack of a completed fiber for pooling.
    ///
    /// Returns `None` if the fiber has not completed (its stack still
    /// holds live frames).
    pub fn into_stack(mut self) -> Option<Stack> {
        if self.completed() {
            self.stack.take()
        } else {
            None
        }
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        if matches!(self.state, State::Suspended) {
            // Unwind the fiber so locals on its stack are dropped.
            self.inner.cancel.set(true);
            // SAFETY: the fiber is suspended at a `switch_out`, so its
            // saved frame is live; RESUME_CANCEL makes it unwind and
            // switch back exactly once with CODE_COMPLETED.
            let code = unsafe {
                switch_stacks(
                    self.inner.caller_sp.get(),
                    self.inner.fiber_sp.get(),
                    RESUME_CANCEL,
                )
            };
            debug_assert_eq!(code, CODE_COMPLETED, "cancel must complete the fiber");
            self.state = State::Completed;
        }
        // Fresh fibers never ran: just drop the boxed closure.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const STACK: usize = 32 * 1024;

    #[test]
    fn runs_to_completion() {
        let out = Rc::new(RefCell::new(0));
        let o = out.clone();
        let mut f = Fiber::new(STACK, move |_| {
            *o.borrow_mut() = 42;
        });
        assert_eq!(f.resume(None), Status::Completed);
        assert!(f.completed());
        assert_eq!(*out.borrow(), 42);
    }

    #[test]
    fn yields_and_resumes_with_state_intact() {
        let trace = Rc::new(RefCell::new(Vec::new()));
        let t = trace.clone();
        let mut f = Fiber::new(STACK, move |y| {
            let mut local = vec![1, 2, 3]; // lives across switches
            t.borrow_mut().push(local.len());
            y.yield_now();
            local.push(4);
            t.borrow_mut().push(local.len());
            y.yield_now();
            t.borrow_mut().push(local.iter().sum::<i32>() as usize);
        });
        assert_eq!(f.resume(None), Status::Yielded);
        assert_eq!(f.resume(None), Status::Yielded);
        assert_eq!(f.resume(None), Status::Completed);
        assert_eq!(*trace.borrow(), vec![3, 4, 10]);
    }

    #[test]
    fn preemption_points_honor_slices() {
        let mut f = Fiber::new(STACK, move |y| {
            // Spin past any deadline, checking safe points.
            for _ in 0..1_000 {
                let spin_until = Instant::now() + Duration::from_micros(200);
                while Instant::now() < spin_until {}
                y.preempt_point();
            }
        });
        // A tiny slice must produce a preemption, not completion.
        let status = f.resume(Some(Duration::from_micros(50)));
        assert_eq!(status, Status::Preempted);
        assert!(f.preemptions() >= 1);
        // A generous slice lets it finish eventually.
        let mut guard = 0;
        while !f.completed() {
            f.resume(Some(Duration::from_secs(10)));
            guard += 1;
            assert!(guard < 2_000, "fiber never completed");
        }
    }

    #[test]
    fn no_deadline_means_no_preemption() {
        let mut f = Fiber::new(STACK, |y| {
            for _ in 0..100 {
                assert!(!y.preempt_point());
            }
        });
        assert_eq!(f.resume(None), Status::Completed);
    }

    #[test]
    fn remaining_slice_visible_to_fiber() {
        let seen = Rc::new(Cell::new(None));
        let s = seen.clone();
        let mut f = Fiber::new(STACK, move |y| {
            s.set(y.remaining_slice());
        });
        f.resume(Some(Duration::from_millis(100)));
        let rem = seen.get().expect("deadline visible");
        assert!(rem <= Duration::from_millis(100));
        assert!(rem > Duration::from_millis(50));
    }

    #[test]
    fn panic_propagates_to_caller() {
        let mut f = Fiber::new(STACK, |_| panic!("boom from fiber"));
        let err = catch_unwind(AssertUnwindSafe(|| f.resume(None))).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from fiber");
        assert!(f.completed());
    }

    #[test]
    fn drop_unwinds_suspended_fiber() {
        struct SetOnDrop(Rc<Cell<bool>>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let dropped = Rc::new(Cell::new(false));
        let d = dropped.clone();
        let mut f = Fiber::new(STACK, move |y| {
            let _guard = SetOnDrop(d);
            loop {
                y.yield_now();
            }
        });
        assert_eq!(f.resume(None), Status::Yielded);
        assert!(!dropped.get());
        drop(f);
        assert!(dropped.get(), "locals on the fiber stack must be dropped");
    }

    #[test]
    fn fresh_fiber_drop_is_clean() {
        let dropped = Rc::new(Cell::new(false));
        let d = dropped.clone();
        let f = Fiber::new(STACK, move |_| {
            d.set(true);
        });
        drop(f); // never ran; closure simply dropped
        assert!(!dropped.get());
    }

    #[test]
    #[should_panic(expected = "resuming a completed fiber")]
    fn resume_after_completion_panics() {
        let mut f = Fiber::new(STACK, |_| {});
        f.resume(None);
        f.resume(None);
    }

    #[test]
    fn stack_reclaim_after_completion() {
        let mut f = Fiber::new(STACK, |_| {});
        assert!(matches!(f.resume(None), Status::Completed));
        let stack = f.into_stack().expect("stack back");
        assert!(stack.canary_intact());
    }

    #[test]
    fn suspended_fiber_keeps_its_stack() {
        let mut f = Fiber::new(STACK, |y| y.yield_now());
        f.resume(None);
        assert!(f.into_stack().is_none());
    }

    #[test]
    fn deep_call_stacks_work() {
        fn recurse(n: u32, y: &Yielder) -> u64 {
            if n == 0 {
                y.yield_now();
                1
            } else {
                recurse(n - 1, y).wrapping_mul(2).wrapping_add(1)
            }
        }
        let out = Rc::new(Cell::new(0u64));
        let o = out.clone();
        let mut f = Fiber::new(256 * 1024, move |y| {
            o.set(recurse(500, y));
        });
        assert_eq!(f.resume(None), Status::Yielded);
        assert_eq!(f.resume(None), Status::Completed);
        // f(n) = 2^(n+1) - 1; mod 2^64 with n=500 that wraps to u64::MAX.
        assert_eq!(out.get(), u64::MAX);
    }

    #[test]
    fn many_concurrent_fibers() {
        let total = Rc::new(Cell::new(0u64));
        let mut fibers: Vec<Fiber> = (0..500)
            .map(|i| {
                let t = total.clone();
                Fiber::new(16 * 1024, move |y| {
                    y.yield_now();
                    t.set(t.get() + i);
                })
            })
            .collect();
        for f in &mut fibers {
            assert_eq!(f.resume(None), Status::Yielded);
        }
        for f in &mut fibers {
            assert_eq!(f.resume(None), Status::Completed);
        }
        assert_eq!(total.get(), (0..500).sum::<u64>());
    }
}
