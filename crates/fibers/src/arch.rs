//! x86-64 stack switching — the `fcontext` core (paper §IV-B).
//!
//! One primitive does all the work: [`switch_stacks`] saves the
//! callee-saved register frame on the current stack, stores the stack
//! pointer, installs another stack pointer, restores its frame, and
//! returns there. Everything else (what lives on the new stack) is set
//! up by [`prepare_stack`], which files a bootstrap frame whose return
//! address is a trampoline into [`crate::fiber`]'s entry function.
//!
//! Only `x86_64` + System V ABI is implemented, matching the paper's
//! testbed; the crate is `cfg`-gated accordingly.

#![allow(clippy::missing_safety_doc)] // documented on each item

use core::arch::naked_asm;

/// The saved machine state of a suspended fiber: just its stack
/// pointer. Everything else lives in the frame that pointer points at.
pub type StackPointer = usize;

/// Switches stacks: saves the current callee-saved frame, stores `rsp`
/// into `*save`, loads `rsp` from `*restore`, restores that frame, and
/// returns into the restored context with `arg` as the switch's return
/// value (in `rax`).
///
/// # Safety
///
/// * `save` must be a valid, exclusive location to store the outgoing
///   stack pointer.
/// * `*restore` must be a stack pointer previously produced by this
///   function or by [`prepare_stack`], whose stack is live and not in
///   use by any other execution.
/// * The restored context resumes as if its own `switch_stacks` call
///   returned `arg` — caller and fiber must agree on the protocol.
#[unsafe(naked)]
pub unsafe extern "sysv64" fn switch_stacks(
    save: *mut StackPointer,
    restore: *const StackPointer,
    arg: usize,
) -> usize {
    naked_asm!(
        // Save the System V callee-saved frame on the current stack.
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        // Install the target stack and restore its frame.
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        // The switch "returns" arg to the resumed context.
        "mov rax, rdx",
        "ret",
    )
}

/// First-entry trampoline. A fresh fiber's bootstrap frame makes
/// [`switch_stacks`]' `ret` land here with the switch argument in
/// `rax`. It forwards that argument as the first parameter of
/// `entry`, with the stack explicitly 16-byte aligned for the call.
///
/// # Safety
///
/// Only reachable through a frame built by [`prepare_stack`].
#[unsafe(naked)]
unsafe extern "sysv64" fn trampoline() {
    naked_asm!(
        "mov rdi, rax",
        "and rsp, -16",
        "call {entry}",
        // `entry` never returns; trap if it somehow does.
        "ud2",
        entry = sym crate::fiber::fiber_entry,
    )
}

/// Files the bootstrap frame for a fresh fiber on `stack_top`
/// (exclusive upper end, 16-byte aligned) and returns the stack
/// pointer to hand to [`switch_stacks`].
///
/// Frame layout (downward from `stack_top`):
/// `[trampoline address][rbp=0][rbx=0][r12=0][r13=0][r14=0][r15=0]`
///
/// # Safety
///
/// `stack_top` must be the one-past-the-end address of a writable
/// region of at least 7 machine words.
pub unsafe fn prepare_stack(stack_top: *mut u8) -> StackPointer {
    debug_assert_eq!(stack_top as usize % 16, 0, "stack top must be 16-aligned");
    let mut sp = stack_top as *mut usize;
    // SAFETY: the caller guarantees at least 7 writable machine words
    // below `stack_top`; all writes stay within that region.
    unsafe {
        // Return address the final `ret` of switch_stacks will pop.
        sp = sp.sub(1);
        sp.write(trampoline as *const () as usize);
        // Zeroed callee-saved frame (rbp, rbx, r12..r15), popped in
        // reverse order by switch_stacks.
        for _ in 0..6 {
            sp = sp.sub(1);
            sp.write(0);
        }
    }
    sp as StackPointer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_stack_layout() {
        let mut buf = vec![0u8; 1024];
        // SAFETY: one-past-the-end of the live buffer.
        let top = unsafe { buf.as_mut_ptr().add(1024) };
        let top = ((top as usize) & !15) as *mut u8;
        // SAFETY: `top` is 16-aligned inside a 1 KiB writable buffer.
        let sp = unsafe { prepare_stack(top) };
        // 7 words below the top.
        assert_eq!(top as usize - sp, 7 * 8);
        // The word the final `ret` pops is the trampoline.
        // SAFETY: reads the word `prepare_stack` just wrote.
        let ret_slot = unsafe { *(top as *const usize).sub(1) };
        assert_eq!(ret_slot, trampoline as *const () as usize);
    }
}
