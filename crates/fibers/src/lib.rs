//! # lp-fibers — real preemptible functions (not simulated)
//!
//! The rest of this repository reproduces LibPreemptible's *evaluation*
//! on a simulated machine because UINTR hardware is unavailable. This
//! crate is the complementary artifact: the paper's §IV context layer
//! **actually running** — fcontext-style stack switching in x86-64
//! assembly, the `fn_launch` / `fn_resume` / `fn_completed` API, a
//! pooled-stack allocator, and the Fig. 7 round-robin scheduler —
//! executing real closures on real switched stacks.
//!
//! Asynchronous UINTR preemption is replaced by *deadline-checked
//! preemption points* ([`Yielder::preempt_point`]): the slice armed at
//! `resume` time is checked against a real [`std::time::Instant`]
//! deadline, which is exactly the deadline-address discipline LibUtimer
//! imposes, minus the hardware interrupt that makes the check
//! asynchronous. On UINTR silicon the same control structure is driven
//! by the user-interrupt handler instead.
//!
//! ```
//! use lp_fibers::{Fiber, Status};
//! use std::time::{Duration, Instant};
//!
//! // fn_launch: create and run a preemptible function with a slice.
//! let mut f = Fiber::new(32 * 1024, |y| {
//!     let end = Instant::now() + Duration::from_micros(400);
//!     while Instant::now() < end {
//!         y.preempt_point(); // safe point, as LibUtimer's deadline
//!     }
//! });
//! let mut status = f.resume(Some(Duration::from_micros(100)));
//! // fn_resume until fn_completed.
//! while !f.completed() {
//!     status = f.resume(Some(Duration::from_micros(100)));
//! }
//! assert_eq!(status, Status::Completed);
//! ```
//!
//! Only `x86_64` Linux/System-V is supported, matching the paper's
//! testbed.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg(all(target_arch = "x86_64", unix))]

mod arch;
pub mod fiber;
pub mod rr;
pub mod stack;

pub use fiber::{Fiber, Status, Yielder};
pub use rr::{RoundRobinRunner, RoundRobinStats};
pub use stack::{Stack, StackPool, DEFAULT_STACK_SIZE};
