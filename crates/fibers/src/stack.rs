//! Fiber stacks: aligned heap allocations with overflow canaries and a
//! reuse pool (the paper's "global memory pool" of contexts, §IV-B).

use std::alloc::{alloc, dealloc, Layout};

/// Canary pattern written at the low end of every stack; checked on
/// release to detect overflows after the fact.
const CANARY: u64 = 0xDEAD_57AC_CAFE_F00D;
/// Number of canary words.
const CANARY_WORDS: usize = 4;

/// Default stack size (the paper's contexts are request-sized; 64 KiB
/// is roomy for test workloads).
pub const DEFAULT_STACK_SIZE: usize = 64 * 1024;

/// An owned, 16-byte-aligned fiber stack.
#[derive(Debug)]
pub struct Stack {
    base: *mut u8,
    size: usize,
}

// SAFETY: the stack is plain owned memory; ownership moves freely
// across threads as long as the fiber running on it does not (enforced
// by Fiber being !Send while suspended mid-run — see fiber.rs).
unsafe impl Send for Stack {}

impl Stack {
    /// Allocates a stack of `size` bytes (rounded up to 16).
    ///
    /// # Panics
    ///
    /// Panics if `size` is too small to be useful (< 4 KiB) or the
    /// allocation fails.
    pub fn new(size: usize) -> Self {
        assert!(size >= 4096, "stack of {size} bytes is too small");
        let size = (size + 15) & !15;
        let layout = Layout::from_size_align(size, 16).expect("stack layout");
        // SAFETY: `layout` has nonzero size (asserted >= 4 KiB above).
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "stack allocation failed");
        let stack = Stack { base, size };
        // SAFETY: `base` points at a fresh allocation of at least
        // CANARY_WORDS * 8 bytes, exclusively owned by `stack`.
        unsafe {
            let words = base as *mut u64;
            for i in 0..CANARY_WORDS {
                words.add(i).write(CANARY);
            }
        }
        stack
    }

    /// One-past-the-end (highest) address, 16-byte aligned — where the
    /// bootstrap frame is filed.
    pub fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the owned allocation is a valid
        // provenance-carrying address (never dereferenced as such).
        let top = unsafe { self.base.add(self.size) };
        debug_assert_eq!(top as usize % 16, 0);
        top
    }

    /// The usable size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// `true` if the low-end canary is intact (no overflow reached the
    /// bottom of the stack).
    pub fn canary_intact(&self) -> bool {
        // SAFETY: the canary words were written at construction and
        // the allocation lives until Drop.
        unsafe {
            let words = self.base as *const u64;
            (0..CANARY_WORDS).all(|i| words.add(i).read() == CANARY)
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        debug_assert!(
            self.canary_intact(),
            "fiber stack overflow detected on drop"
        );
        let layout = Layout::from_size_align(self.size, 16).expect("stack layout");
        // SAFETY: `base` came from `alloc` with this exact layout and
        // is freed exactly once (Drop consumes the owner).
        unsafe { dealloc(self.base, layout) };
    }
}

/// A free-list of stacks for reuse across fiber launches — "contexts
/// can be reused by other requests once a function finished execution;
/// the free contexts are maintained in a global free list".
#[derive(Debug, Default)]
pub struct StackPool {
    free: Vec<Stack>,
    stack_size: usize,
    allocated: usize,
}

impl StackPool {
    /// Creates a pool handing out stacks of `stack_size` bytes.
    pub fn new(stack_size: usize) -> Self {
        StackPool {
            free: Vec::new(),
            stack_size,
            allocated: 0,
        }
    }

    /// Takes a stack from the free list, allocating if empty.
    pub fn take(&mut self) -> Stack {
        self.free.pop().unwrap_or_else(|| {
            self.allocated += 1;
            Stack::new(self.stack_size)
        })
    }

    /// Returns a stack for reuse.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the stack's canary shows an overflow.
    pub fn put(&mut self, stack: Stack) {
        debug_assert!(stack.canary_intact(), "returning an overflowed stack");
        self.free.push(stack);
    }

    /// Stacks currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total stacks ever allocated (high-water of concurrency).
    pub fn allocated(&self) -> usize {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_alignment() {
        let s = Stack::new(DEFAULT_STACK_SIZE);
        assert_eq!(s.top() as usize % 16, 0);
        assert!(s.size() >= DEFAULT_STACK_SIZE);
        assert!(s.canary_intact());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_stacks() {
        Stack::new(64);
    }

    #[test]
    fn canary_detects_scribble() {
        let s = Stack::new(8192);
        // SAFETY: top - size is the base of the live allocation; we
        // deliberately scribble the first canary word.
        unsafe {
            (s.top().sub(s.size()) as *mut u64).write(0);
        }
        assert!(!s.canary_intact());
        // Avoid the debug panic in Drop.
        std::mem::forget(s);
    }

    #[test]
    fn pool_reuses() {
        let mut pool = StackPool::new(8192);
        let a = pool.take();
        let a_top = a.top() as usize;
        pool.put(a);
        assert_eq!(pool.free_count(), 1);
        let b = pool.take();
        assert_eq!(b.top() as usize, a_top, "stack must be recycled");
        assert_eq!(pool.allocated(), 1);
        let _c = pool.take();
        assert_eq!(pool.allocated(), 2);
    }
}
