//! The paper's Fig. 7: "a simple round-robin scheduler running N
//! static user-level threads" — on *real* fibers.
//!
//! `fn_launch` each task, then loop `fn_resume` over the incomplete
//! ones with a per-slice deadline until all complete.

use std::time::Duration;

use crate::fiber::{Fiber, Status, Yielder};
use crate::stack::{StackPool, DEFAULT_STACK_SIZE};

/// Outcome of a round-robin run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinStats {
    /// Total scheduling passes over the task list.
    pub rounds: u32,
    /// Total preemptions delivered across all tasks.
    pub preemptions: u32,
    /// Tasks completed (always all of them on return).
    pub completed: usize,
}

/// A Fig. 7-style round-robin runner over preemptible functions.
pub struct RoundRobinRunner {
    fibers: Vec<Fiber>,
    pool: StackPool,
    slice: Duration,
}

impl RoundRobinRunner {
    /// Creates a runner granting each task `slice` per turn.
    pub fn new(slice: Duration) -> Self {
        RoundRobinRunner {
            fibers: Vec::new(),
            pool: StackPool::new(DEFAULT_STACK_SIZE),
            slice,
        }
    }

    /// `fn_launch`: adds a task (execution starts on the first
    /// [`run`](Self::run) pass, slice-bounded like every resume).
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce(&Yielder) + 'static,
    {
        let stack = self.pool.take();
        self.fibers.push(Fiber::with_stack(stack, f));
    }

    /// Number of tasks not yet complete.
    pub fn pending(&self) -> usize {
        self.fibers.iter().filter(|f| !f.completed()).count()
    }

    /// Runs every task to completion, one slice at a time, recycling
    /// stacks into the pool as tasks finish.
    pub fn run(&mut self) -> RoundRobinStats {
        let mut stats = RoundRobinStats {
            rounds: 0,
            preemptions: 0,
            completed: 0,
        };
        while self.pending() > 0 {
            stats.rounds += 1;
            for fiber in &mut self.fibers {
                if fiber.completed() {
                    continue;
                }
                match fiber.resume(Some(self.slice)) {
                    Status::Completed => {}
                    Status::Preempted => stats.preemptions += 1,
                    Status::Yielded => {}
                }
            }
        }
        // Recycle all stacks.
        for fiber in self.fibers.drain(..) {
            if let Some(stack) = fiber.into_stack() {
                self.pool.put(stack);
            }
            stats.completed += 1;
        }
        stats
    }

    /// Stacks currently pooled for reuse.
    pub fn pooled_stacks(&self) -> usize {
        self.pool.free_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Instant;

    #[test]
    fn runs_mixed_tasks_to_completion() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut rr = RoundRobinRunner::new(Duration::from_micros(200));
        for i in 0..8u32 {
            let l = log.clone();
            rr.spawn(move |y| {
                // Some tasks are long (spin + preemption points), some
                // short.
                if i % 2 == 0 {
                    let end = Instant::now() + Duration::from_micros(600);
                    while Instant::now() < end {
                        y.preempt_point();
                    }
                }
                l.borrow_mut().push(i);
            });
        }
        let stats = rr.run();
        assert_eq!(stats.completed, 8);
        assert!(stats.preemptions > 0, "long tasks must be preempted");
        assert!(stats.rounds >= 2, "preempted tasks need extra rounds");
        let mut got = log.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // All 8 stacks recycled.
        assert_eq!(rr.pooled_stacks(), 8);
    }

    #[test]
    fn short_tasks_complete_in_one_round() {
        let mut rr = RoundRobinRunner::new(Duration::from_millis(10));
        let n = Rc::new(RefCell::new(0));
        for _ in 0..16 {
            let n = n.clone();
            rr.spawn(move |_| *n.borrow_mut() += 1);
        }
        let stats = rr.run();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.preemptions, 0);
        assert_eq!(*n.borrow(), 16);
    }

    #[test]
    fn stacks_are_reused_across_batches() {
        let mut rr = RoundRobinRunner::new(Duration::from_millis(1));
        for _ in 0..4 {
            rr.spawn(|_| {});
        }
        rr.run();
        let after_first = rr.pooled_stacks();
        for _ in 0..4 {
            rr.spawn(|_| {});
        }
        rr.run();
        assert_eq!(rr.pooled_stacks(), after_first.max(4));
    }
}
