//! Event tracing: a bounded ring buffer of recent simulation activity.
//!
//! Debugging a discrete-event model usually starts with "what were the
//! last N things that happened?". [`TraceRing`] keeps a fixed-capacity
//! window of formatted trace records with zero allocation on the hot
//! path beyond the record string itself, and is deliberately
//! model-agnostic: models push whatever text is useful.

use std::collections::VecDeque;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// Model-defined description.
    pub what: String,
}

/// A bounded ring of recent trace records.
///
/// ```
/// use lp_sim::{trace::TraceRing, SimTime};
/// let mut ring = TraceRing::new(2);
/// ring.push(SimTime::from_nanos(1), "a");
/// ring.push(SimTime::from_nanos(2), "b");
/// ring.push(SimTime::from_nanos(3), "c");
/// let texts: Vec<&str> = ring.iter().map(|r| r.what.as_str()).collect();
/// assert_eq!(texts, ["b", "c"]); // "a" was evicted
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceRing {
    /// Creates a ring holding the last `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        TraceRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A ring that records nothing (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceRing {
            buf: VecDeque::new(),
            capacity: 1,
            dropped: 0,
            enabled: false,
        }
    }

    /// `true` if records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, at: SimTime, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            at,
            what: what.into(),
        });
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or tracing is disabled).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Renders the window as `time  message` lines, oldest first.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for r in &self.buf {
            let _ = writeln!(out, "{:>14}  {}", r.at.to_string(), r.what);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn keeps_most_recent() {
        let mut ring = TraceRing::new(3);
        for i in 0..10u64 {
            ring.push(t(i), format!("ev{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let whats: Vec<&str> = ring.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(whats, ["ev7", "ev8", "ev9"]);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        ring.push(t(1), "x");
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn dump_format() {
        let mut ring = TraceRing::new(2);
        ring.push(t(1_500), "first");
        ring.push(t(2_500), "second");
        ring.push(t(3_500), "third");
        let s = ring.dump();
        assert!(s.starts_with("... 1 earlier records dropped ..."));
        assert!(s.contains("2.500us  second"));
        assert!(s.contains("third"));
        assert!(!s.contains("first"));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        TraceRing::new(0);
    }
}
