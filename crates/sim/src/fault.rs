//! Deterministic fault injection for the mechanism stack.
//!
//! A [`FaultPlan`] declares *what* can go wrong (per-site probabilities
//! plus an exact occurrence schedule); a [`FaultInjector`] decides
//! *when*, drawing every decision from a dedicated
//! [`rng`](crate::rng) substream ([`streams::FAULTS`]) of the
//! experiment master seed — so faulty runs are byte-reproducible and a
//! disabled plan is a true no-op (no RNG draws, no state).
//!
//! The injector is consulted at four sites, one decision method each:
//!
//! * [`ipi`](FaultInjector::ipi) — before every `SENDUIPI`
//!   (drop / delay / duplicate / stuck `SN` / stale `NDST`);
//! * [`timer`](FaultInjector::timer) — at every kernel-timer arming
//!   (missed expiry / jitter spike / spurious fire);
//! * [`signal`](FaultInjector::signal) — before every kernel signal
//!   (lost delivery / runqueue-lock contention burst);
//! * [`core`](FaultInjector::core) — at every task launch
//!   (core stall/hog window that masks preemption delivery).
//!
//! The taxonomy, the recovery protocol each fault exercises, and the
//! watchdog parameters are documented in `docs/FAULTS.md`.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::rng::{rng, streams};
use crate::time::SimDur;

/// Every injectable fault, as a flat label.
///
/// The `u8` representation is the wire value of the `kind` field in
/// `fault_injected` events (see `docs/TRACING.md`), so the discriminants
/// are frozen: new kinds append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FaultKind {
    /// `SENDUIPI` silently dropped by the fabric; no UPID state changes.
    IpiDrop = 0,
    /// `SENDUIPI` delivery delayed by the plan's `ipi_delay_ns`.
    IpiDelay = 1,
    /// `SENDUIPI` issued twice; the second send must coalesce.
    IpiDuplicate = 2,
    /// The receiver's `SN` suppress bit is stuck set when the send
    /// arrives; notification suppressed until a repair clears it.
    StuckSn = 3,
    /// The UPID's `NDST` destination is stale: the vector posts but the
    /// notification is misdirected and never lands.
    StaleNdst = 4,
    /// The kernel timer never fires for this arming.
    TimerMiss = 5,
    /// The kernel timer fires late by the plan's `timer_spike_ns`.
    TimerSpike = 6,
    /// The kernel timer fires one extra, spurious time.
    TimerSpurious = 7,
    /// The kernel signal is lost before the handler runs.
    SignalLost = 8,
    /// A runqueue-lock contention burst: delivery sees the plan's
    /// `contention_waiters` extra waiters ahead of it.
    SignalContention = 9,
    /// The core hogs (stalls) for the plan's `core_hog_ns`, masking
    /// preemption delivery for the window.
    CoreHog = 10,
}

impl FaultKind {
    /// All kinds, in wire order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::IpiDrop,
        FaultKind::IpiDelay,
        FaultKind::IpiDuplicate,
        FaultKind::StuckSn,
        FaultKind::StaleNdst,
        FaultKind::TimerMiss,
        FaultKind::TimerSpike,
        FaultKind::TimerSpurious,
        FaultKind::SignalLost,
        FaultKind::SignalContention,
        FaultKind::CoreHog,
    ];

    /// Stable snake_case label (used in reports and docs).
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::IpiDrop => "ipi_drop",
            FaultKind::IpiDelay => "ipi_delay",
            FaultKind::IpiDuplicate => "ipi_duplicate",
            FaultKind::StuckSn => "stuck_sn",
            FaultKind::StaleNdst => "stale_ndst",
            FaultKind::TimerMiss => "timer_miss",
            FaultKind::TimerSpike => "timer_spike",
            FaultKind::TimerSpurious => "timer_spurious",
            FaultKind::SignalLost => "signal_lost",
            FaultKind::SignalContention => "signal_contention",
            FaultKind::CoreHog => "core_hog",
        }
    }

    /// The injection site this kind belongs to.
    pub const fn site(self) -> Site {
        match self {
            FaultKind::IpiDrop
            | FaultKind::IpiDelay
            | FaultKind::IpiDuplicate
            | FaultKind::StuckSn
            | FaultKind::StaleNdst => Site::Ipi,
            FaultKind::TimerMiss | FaultKind::TimerSpike | FaultKind::TimerSpurious => Site::Timer,
            FaultKind::SignalLost | FaultKind::SignalContention => Site::Signal,
            FaultKind::CoreHog => Site::Core,
        }
    }

    /// Inverse of the `u8` wire value; `None` for unknown codes.
    pub fn from_u8(v: u8) -> Option<FaultKind> {
        FaultKind::ALL.get(v as usize).copied()
    }
}

/// One of the four injection sites the runtime consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// `UintrDomain::senduipi` (one decision per send attempt).
    Ipi,
    /// `KernelTimer` arming (one decision per armed expiry).
    Timer,
    /// `SignalPath` delivery (one decision per signal send).
    Signal,
    /// Worker-core task launch (one decision per started slice).
    Core,
}

impl Site {
    /// Every site, in the frozen index order used by reports and the
    /// injector's internal arrays. JSON exports iterate this array, so
    /// per-site counters always serialize in the same byte order.
    pub const ALL: [Site; 4] = [Site::Ipi, Site::Timer, Site::Signal, Site::Core];

    /// Stable snake_case label (the JSON key of per-site counters).
    pub const fn name(self) -> &'static str {
        match self {
            Site::Ipi => "ipi",
            Site::Timer => "timer",
            Site::Signal => "signal",
            Site::Core => "core",
        }
    }
}

/// A time-bounded rate boost: while `from_ns <= now < until_ns`, `rate`
/// is added to `kind`'s base rate. Windows are how `lp-chaos` lowers
/// sequenced/overlaid fault storms onto the injector — a burst is a
/// window, a wave is several.
///
/// A plan with no windows samples exactly like one built before windows
/// existed (same RNG draws at every decision), so the combinator layer
/// is free for everyone who does not use it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// What to inject while the window is open.
    pub kind: FaultKind,
    /// Extra per-decision probability added inside the window.
    pub rate: f64,
    /// Window start (inclusive), nanoseconds of sim time.
    pub from_ns: u64,
    /// Window end (exclusive), nanoseconds of sim time.
    pub until_ns: u64,
}

impl FaultWindow {
    /// Whether the window is open at `now_ns`.
    pub fn open_at(&self, now_ns: u64) -> bool {
        self.from_ns <= now_ns && now_ns < self.until_ns
    }
}

/// An exact, deterministic injection: fire `kind` at the site's
/// `occurrence`-th decision (0-based).
///
/// Schedule entries take precedence over the probabilistic rates, so a
/// test can say "drop exactly the third IPI" without touching any rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// What to inject.
    pub kind: FaultKind,
    /// Which decision at the kind's site (0-based occurrence index).
    pub occurrence: u64,
}

/// Declares which faults a run may see, and how hard.
///
/// All rates are per-decision probabilities in `[0, 1]`; magnitudes are
/// shared per site. The default plan is fully disabled: every rate is
/// `0.0` and the schedule is empty, and [`FaultPlan::enabled`] is
/// `false` — components must not even consult the injector then, so a
/// healthy run is byte-identical to one built before faults existed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// P(drop) per `SENDUIPI`.
    pub ipi_drop: f64,
    /// P(delayed delivery) per `SENDUIPI`.
    pub ipi_delay: f64,
    /// P(duplicated send) per `SENDUIPI`.
    pub ipi_duplicate: f64,
    /// P(stuck `SN` suppress bit) per `SENDUIPI`.
    pub ipi_stuck_sn: f64,
    /// P(stale `NDST` misdirection) per `SENDUIPI`.
    pub ipi_stale_ndst: f64,
    /// P(missed expiry) per kernel-timer arming.
    pub timer_miss: f64,
    /// P(jitter spike) per kernel-timer arming.
    pub timer_spike: f64,
    /// P(spurious extra fire) per kernel-timer arming.
    pub timer_spurious: f64,
    /// P(lost signal) per kernel-signal delivery.
    pub signal_lost: f64,
    /// P(contention burst) per kernel-signal delivery.
    pub signal_contention: f64,
    /// P(hog window) per started task slice.
    pub core_hog: f64,
    /// Extra delivery latency of an [`FaultKind::IpiDelay`].
    pub ipi_delay_ns: u64,
    /// Extra expiry latency of a [`FaultKind::TimerSpike`].
    pub timer_spike_ns: u64,
    /// Length of a [`FaultKind::CoreHog`] stall window.
    pub core_hog_ns: u64,
    /// Extra waiters a [`FaultKind::SignalContention`] burst simulates.
    pub contention_waiters: u32,
    /// Exact occurrence-indexed injections (checked before the rates).
    pub schedule: Vec<ScheduledFault>,
    /// Time-bounded rate boosts, added to the base rates while open.
    pub windows: Vec<FaultWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            ipi_drop: 0.0,
            ipi_delay: 0.0,
            ipi_duplicate: 0.0,
            ipi_stuck_sn: 0.0,
            ipi_stale_ndst: 0.0,
            timer_miss: 0.0,
            timer_spike: 0.0,
            timer_spurious: 0.0,
            signal_lost: 0.0,
            signal_contention: 0.0,
            core_hog: 0.0,
            ipi_delay_ns: 5_000,
            timer_spike_ns: 50_000,
            core_hog_ns: 200_000,
            contention_waiters: 8,
            schedule: Vec::new(),
            windows: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The fully healthy plan (all rates zero, empty schedule).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting only `kind`, probabilistically at `rate`.
    pub fn only(kind: FaultKind, rate: f64) -> Self {
        let mut p = FaultPlan::default();
        *p.rate_mut(kind) = rate;
        p
    }

    /// A plan injecting only `kind`, exactly once, at the site's
    /// `occurrence`-th decision.
    pub fn once(kind: FaultKind, occurrence: u64) -> Self {
        let mut p = FaultPlan::default();
        p.schedule.push(ScheduledFault { kind, occurrence });
        p
    }

    /// A plan injecting only `kind`, at `rate`, inside
    /// `[from_ns, until_ns)` of sim time.
    pub fn windowed(kind: FaultKind, rate: f64, from_ns: u64, until_ns: u64) -> Self {
        let mut p = FaultPlan::default();
        p.windows.push(FaultWindow { kind, rate, from_ns, until_ns });
        p
    }

    /// Whether this plan can inject anything at all. Disabled plans must
    /// never reach a [`FaultInjector`] decision (callers gate on this),
    /// which is what keeps healthy runs byte-identical.
    ///
    /// This is exactly "some site is armed" — the same per-site
    /// predicate ([`site_armed`](FaultPlan::site_armed)) the injector
    /// gates its hot path on, so `enabled()` and the injector can never
    /// disagree about a plan. In particular a schedule entry whose rate
    /// never matters (`once(kind, 0)`) arms its site, while a rate-0
    /// plan (`only(kind, 0.0)`) arms nothing.
    pub fn enabled(&self) -> bool {
        Site::ALL.iter().any(|&s| self.site_armed(s))
    }

    /// Sum of the base (always-on) rates of `site`'s kinds.
    pub fn site_rate_total(&self, site: Site) -> f64 {
        Self::site_kinds(site).iter().map(|&k| self.rate(k)).sum()
    }

    /// Whether the schedule mentions `site`.
    pub fn site_scheduled(&self, site: Site) -> bool {
        self.schedule.iter().any(|s| s.kind.site() == site)
    }

    /// Whether any window with a positive rate targets `site`.
    pub fn site_windowed(&self, site: Site) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind.site() == site && w.rate > 0.0 && w.from_ns < w.until_ns)
    }

    /// Whether `site` can ever inject: a schedule entry, a positive base
    /// rate, or an open-able window. The single source of truth shared
    /// by [`enabled`](FaultPlan::enabled) and the injector's gating.
    pub fn site_armed(&self, site: Site) -> bool {
        self.site_scheduled(site)
            || self.site_rate_total(site) > 0.0
            || self.site_windowed(site)
    }

    /// The probabilistic rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::IpiDrop => self.ipi_drop,
            FaultKind::IpiDelay => self.ipi_delay,
            FaultKind::IpiDuplicate => self.ipi_duplicate,
            FaultKind::StuckSn => self.ipi_stuck_sn,
            FaultKind::StaleNdst => self.ipi_stale_ndst,
            FaultKind::TimerMiss => self.timer_miss,
            FaultKind::TimerSpike => self.timer_spike,
            FaultKind::TimerSpurious => self.timer_spurious,
            FaultKind::SignalLost => self.signal_lost,
            FaultKind::SignalContention => self.signal_contention,
            FaultKind::CoreHog => self.core_hog,
        }
    }

    fn rate_mut(&mut self, kind: FaultKind) -> &mut f64 {
        match kind {
            FaultKind::IpiDrop => &mut self.ipi_drop,
            FaultKind::IpiDelay => &mut self.ipi_delay,
            FaultKind::IpiDuplicate => &mut self.ipi_duplicate,
            FaultKind::StuckSn => &mut self.ipi_stuck_sn,
            FaultKind::StaleNdst => &mut self.ipi_stale_ndst,
            FaultKind::TimerMiss => &mut self.timer_miss,
            FaultKind::TimerSpike => &mut self.timer_spike,
            FaultKind::TimerSpurious => &mut self.timer_spurious,
            FaultKind::SignalLost => &mut self.signal_lost,
            FaultKind::SignalContention => &mut self.signal_contention,
            FaultKind::CoreHog => &mut self.core_hog,
        }
    }

    fn site_kinds(site: Site) -> &'static [FaultKind] {
        match site {
            Site::Ipi => &[
                FaultKind::IpiDrop,
                FaultKind::IpiDelay,
                FaultKind::IpiDuplicate,
                FaultKind::StuckSn,
                FaultKind::StaleNdst,
            ],
            Site::Timer => {
                &[FaultKind::TimerMiss, FaultKind::TimerSpike, FaultKind::TimerSpurious]
            }
            Site::Signal => &[FaultKind::SignalLost, FaultKind::SignalContention],
            Site::Core => &[FaultKind::CoreHog],
        }
    }
}

/// The decision at an IPI send site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiFault {
    /// Do not deliver; no UPID state changes.
    Drop,
    /// Deliver, but this much later.
    Delay(SimDur),
    /// Send twice back-to-back.
    Duplicate,
    /// Force the receiver's `SN` bit set before the send.
    StuckSn,
    /// Post the vector but misdirect the notification.
    StaleNdst,
}

impl IpiFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            IpiFault::Drop => FaultKind::IpiDrop,
            IpiFault::Delay(_) => FaultKind::IpiDelay,
            IpiFault::Duplicate => FaultKind::IpiDuplicate,
            IpiFault::StuckSn => FaultKind::StuckSn,
            IpiFault::StaleNdst => FaultKind::StaleNdst,
        }
    }
}

/// The decision at a kernel-timer arming site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerFault {
    /// The expiry never fires.
    Miss,
    /// The expiry fires this much later.
    JitterSpike(SimDur),
    /// One extra, spurious expiry fires too.
    Spurious,
}

impl TimerFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            TimerFault::Miss => FaultKind::TimerMiss,
            TimerFault::JitterSpike(_) => FaultKind::TimerSpike,
            TimerFault::Spurious => FaultKind::TimerSpurious,
        }
    }
}

/// The decision at a kernel-signal delivery site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalFault {
    /// The handler never runs.
    Lost,
    /// Delivery proceeds but sees this many extra lock waiters.
    ContentionBurst(u32),
}

impl SignalFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            SignalFault::Lost => FaultKind::SignalLost,
            SignalFault::ContentionBurst(_) => FaultKind::SignalContention,
        }
    }
}

/// The decision at a task-launch (core) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreFault {
    /// The core stalls for this window, masking preemption delivery.
    Hog(SimDur),
}

impl CoreFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            CoreFault::Hog(_) => FaultKind::CoreHog,
        }
    }
}

/// Samples a [`FaultPlan`] deterministically.
///
/// All randomness comes from the [`streams::FAULTS`] substream of the
/// master seed, so two runs with the same `(seed, plan)` inject the
/// same faults at the same decisions. Sites whose rates are all zero
/// (and have no schedule entry at the current occurrence) never draw
/// from the RNG at all, so a rate-0.0 plan samples identically to no
/// plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    ipi_n: u64,
    timer_n: u64,
    signal_n: u64,
    core_n: u64,
    /// Per-site sum of rates, precomputed so the per-decision hot path
    /// (consulted on every send in a faulty run) is a load and a
    /// compare instead of a match-dispatched re-sum.
    totals: [f64; 4],
    /// Per-site "the schedule mentions this site" flags; sites with no
    /// entry skip the schedule scan entirely.
    scheduled: [bool; 4],
    /// Per-site "the plan has windows for this site" flags; the common
    /// windowless plan never touches the window list on a decision.
    windowed: [bool; 4],
    /// Per-kind injection counts, indexed by the `u8` wire value —
    /// exported in frozen [`FaultKind::ALL`] order so corpus diffs are
    /// byte-stable.
    injected: [u64; FaultKind::ALL.len()],
}

const fn site_index(site: Site) -> usize {
    match site {
        Site::Ipi => 0,
        Site::Timer => 1,
        Site::Signal => 2,
        Site::Core => 3,
    }
}

impl FaultInjector {
    /// Builds an injector for `plan`, seeded from the experiment
    /// `master` seed via the frozen [`streams::FAULTS`] substream.
    pub fn new(plan: FaultPlan, master: u64) -> Self {
        let mut totals = [0.0f64; 4];
        let mut scheduled = [false; 4];
        let mut windowed = [false; 4];
        for (i, &s) in Site::ALL.iter().enumerate() {
            totals[i] = plan.site_rate_total(s);
            scheduled[i] = plan.site_scheduled(s);
            windowed[i] = plan.site_windowed(s);
        }
        FaultInjector {
            plan,
            rng: rng(master, streams::FAULTS),
            ipi_n: 0,
            timer_n: 0,
            signal_n: 0,
            core_n: 0,
            totals,
            scheduled,
            windowed,
            injected: [0; FaultKind::ALL.len()],
        }
    }

    /// The plan this injector samples.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next `SENDUIPI` (windows evaluated at
    /// sim time zero; windowless plans are unaffected).
    pub fn ipi(&mut self) -> Option<IpiFault> {
        self.ipi_at(0)
    }

    /// Decide the fate of the next `SENDUIPI` at sim time `now_ns`.
    pub fn ipi_at(&mut self, now_ns: u64) -> Option<IpiFault> {
        let kind = self.decide(Site::Ipi, now_ns)?;
        Some(match kind {
            FaultKind::IpiDrop => IpiFault::Drop,
            FaultKind::IpiDelay => IpiFault::Delay(SimDur::nanos(self.plan.ipi_delay_ns)),
            FaultKind::IpiDuplicate => IpiFault::Duplicate,
            FaultKind::StuckSn => IpiFault::StuckSn,
            FaultKind::StaleNdst => IpiFault::StaleNdst,
            _ => unreachable!("non-IPI kind decided at the IPI site"),
        })
    }

    /// Decide the fate of the next kernel-timer arming (windows
    /// evaluated at sim time zero).
    pub fn timer(&mut self) -> Option<TimerFault> {
        self.timer_at(0)
    }

    /// Decide the fate of the next kernel-timer arming at `now_ns`.
    pub fn timer_at(&mut self, now_ns: u64) -> Option<TimerFault> {
        let kind = self.decide(Site::Timer, now_ns)?;
        Some(match kind {
            FaultKind::TimerMiss => TimerFault::Miss,
            FaultKind::TimerSpike => {
                TimerFault::JitterSpike(SimDur::nanos(self.plan.timer_spike_ns))
            }
            FaultKind::TimerSpurious => TimerFault::Spurious,
            _ => unreachable!("non-timer kind decided at the timer site"),
        })
    }

    /// Decide the fate of the next kernel-signal delivery (windows
    /// evaluated at sim time zero).
    pub fn signal(&mut self) -> Option<SignalFault> {
        self.signal_at(0)
    }

    /// Decide the fate of the next kernel-signal delivery at `now_ns`.
    pub fn signal_at(&mut self, now_ns: u64) -> Option<SignalFault> {
        let kind = self.decide(Site::Signal, now_ns)?;
        Some(match kind {
            FaultKind::SignalLost => SignalFault::Lost,
            FaultKind::SignalContention => {
                SignalFault::ContentionBurst(self.plan.contention_waiters)
            }
            _ => unreachable!("non-signal kind decided at the signal site"),
        })
    }

    /// Decide the fate of the next task launch on a worker core
    /// (windows evaluated at sim time zero).
    pub fn core(&mut self) -> Option<CoreFault> {
        self.core_at(0)
    }

    /// Decide the fate of the next task launch at `now_ns`.
    pub fn core_at(&mut self, now_ns: u64) -> Option<CoreFault> {
        let kind = self.decide(Site::Core, now_ns)?;
        Some(match kind {
            FaultKind::CoreHog => CoreFault::Hog(SimDur::nanos(self.plan.core_hog_ns)),
            _ => unreachable!("non-core kind decided at the core site"),
        })
    }

    /// One decision at `site`: schedule entries first (exact occurrence
    /// match wins, earliest-declared entry breaks ties), then one
    /// uniform draw partitioned by the site's cumulative rates (base
    /// rates plus any windows open at `now_ns`) — a single draw per
    /// decision keeps the stream consumption pattern independent of
    /// which kinds are enabled.
    fn decide(&mut self, site: Site, now_ns: u64) -> Option<FaultKind> {
        let idx = site_index(site);
        let counter = match site {
            Site::Ipi => &mut self.ipi_n,
            Site::Timer => &mut self.timer_n,
            Site::Signal => &mut self.signal_n,
            Site::Core => &mut self.core_n,
        };
        let n = *counter;
        *counter += 1;
        // The schedule scan only exists to match schedule entries; a
        // site the schedule never mentions skips it.
        if self.scheduled[idx] {
            if let Some(s) = self
                .plan
                .schedule
                .iter()
                .find(|s| s.kind.site() == site && s.occurrence == n)
            {
                self.injected[s.kind as usize] += 1;
                return Some(s.kind);
            }
        }
        // Windows boost the site total while open; the common
        // windowless plan pays nothing here.
        let boost = if self.windowed[idx] {
            self.plan
                .windows
                .iter()
                .filter(|w| w.kind.site() == site && w.open_at(now_ns))
                .map(|w| w.rate)
                .sum()
        } else {
            0.0
        };
        if self.totals[idx] + boost <= 0.0 {
            return None; // no draw: rate-0 sites are true no-ops
        }
        let kinds = FaultPlan::site_kinds(site);
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        for &k in kinds {
            acc += self.plan.rate(k);
            if boost > 0.0 {
                acc += self
                    .plan
                    .windows
                    .iter()
                    .filter(|w| w.kind == k && w.open_at(now_ns))
                    .map(|w| w.rate)
                    .sum::<f64>();
            }
            if x < acc {
                self.injected[k as usize] += 1;
                return Some(k);
            }
        }
        None
    }

    /// Per-site decision counts in frozen [`Site::ALL`] order.
    pub fn site_decisions(&self) -> [(&'static str, u64); 4] {
        [
            (Site::Ipi.name(), self.ipi_n),
            (Site::Timer.name(), self.timer_n),
            (Site::Signal.name(), self.signal_n),
            (Site::Core.name(), self.core_n),
        ]
    }

    /// Per-kind injection counts in frozen [`FaultKind::ALL`] (wire)
    /// order.
    pub fn injected_counts(&self) -> [(&'static str, u64); FaultKind::ALL.len()] {
        let mut out = [("", 0u64); FaultKind::ALL.len()];
        for (i, &k) in FaultKind::ALL.iter().enumerate() {
            out[i] = (k.name(), self.injected[k as usize]);
        }
        out
    }

    /// One JSON object with the per-site decision counts and per-kind
    /// injection counts, keys in frozen declaration order — never map
    /// order — so replay reports diff byte-for-byte.
    pub fn occurrences_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"sites\":{");
        for (i, (name, n)) in self.site_decisions().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{n}");
        }
        out.push_str("},\"injected\":{");
        for (i, (name, n)) in self.injected_counts().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{n}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for (i, &k) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(k as u8, i as u8, "{k:?} code drifted");
            assert_eq!(FaultKind::from_u8(i as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(FaultKind::from_u8(200), None);
        let mut names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len(), "duplicate kind names");
    }

    #[test]
    fn default_plan_is_disabled() {
        let p = FaultPlan::default();
        assert!(!p.enabled());
        assert_eq!(p, FaultPlan::disabled());
        assert!(FaultPlan::only(FaultKind::IpiDrop, 0.5).enabled());
        assert!(FaultPlan::once(FaultKind::TimerMiss, 3).enabled());
        assert!(!FaultPlan::only(FaultKind::IpiDrop, 0.0).enabled());
    }

    #[test]
    fn disabled_plan_never_injects() {
        let mut inj = FaultInjector::new(FaultPlan::disabled(), 42);
        for _ in 0..100 {
            assert_eq!(inj.ipi(), None);
            assert_eq!(inj.timer(), None);
            assert_eq!(inj.signal(), None);
            assert_eq!(inj.core(), None);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let plan = {
            let mut p = FaultPlan::only(FaultKind::IpiDrop, 0.3);
            p.timer_miss = 0.2;
            p.signal_lost = 0.1;
            p.core_hog = 0.25;
            p
        };
        let mut a = FaultInjector::new(plan.clone(), 7);
        let mut b = FaultInjector::new(plan, 7);
        for _ in 0..200 {
            assert_eq!(a.ipi(), b.ipi());
            assert_eq!(a.timer(), b.timer());
            assert_eq!(a.signal(), b.signal());
            assert_eq!(a.core(), b.core());
        }
    }

    #[test]
    fn schedule_fires_exactly_once_at_its_occurrence() {
        let mut inj = FaultInjector::new(FaultPlan::once(FaultKind::StuckSn, 2), 1);
        assert_eq!(inj.ipi(), None);
        assert_eq!(inj.ipi(), None);
        assert_eq!(inj.ipi(), Some(IpiFault::StuckSn));
        for _ in 0..32 {
            assert_eq!(inj.ipi(), None);
        }
        // Scheduling at the IPI site does not disturb the others.
        let mut inj = FaultInjector::new(FaultPlan::once(FaultKind::IpiDrop, 0), 1);
        assert_eq!(inj.timer(), None);
        assert_eq!(inj.signal(), None);
        assert_eq!(inj.ipi(), Some(IpiFault::Drop));
    }

    #[test]
    fn rate_one_always_fires_and_carries_magnitudes() {
        let mut plan = FaultPlan::only(FaultKind::IpiDelay, 1.0);
        plan.ipi_delay_ns = 777;
        plan.timer_spike = 1.0;
        plan.timer_spike_ns = 888;
        plan.signal_contention = 1.0;
        plan.contention_waiters = 9;
        plan.core_hog = 1.0;
        plan.core_hog_ns = 999;
        let mut inj = FaultInjector::new(plan, 3);
        assert_eq!(inj.ipi(), Some(IpiFault::Delay(SimDur::nanos(777))));
        assert_eq!(inj.timer(), Some(TimerFault::JitterSpike(SimDur::nanos(888))));
        assert_eq!(inj.signal(), Some(SignalFault::ContentionBurst(9)));
        assert_eq!(inj.core(), Some(CoreFault::Hog(SimDur::nanos(999))));
    }

    #[test]
    fn probabilistic_rate_hits_near_expectation() {
        let mut inj = FaultInjector::new(FaultPlan::only(FaultKind::SignalLost, 0.5), 11);
        let hits = (0..2_000).filter(|_| inj.signal().is_some()).count();
        assert!((800..1_200).contains(&hits), "{hits} hits at rate 0.5");
    }

    #[test]
    fn enabled_agrees_with_the_injector_gate() {
        // Regression (issue 9): `once(kind, 0)` must report enabled —
        // its schedule entry fires at the site's very first decision —
        // while a rate-0 plan stays disabled. Both answers now come
        // from the same per-site `site_armed` predicate the injector
        // gates on, so they cannot drift apart again.
        let armed = FaultPlan::once(FaultKind::IpiDrop, 0);
        assert!(armed.enabled());
        assert!(armed.site_armed(Site::Ipi));
        let mut inj = FaultInjector::new(armed, 9);
        assert_eq!(inj.ipi(), Some(IpiFault::Drop), "occurrence 0 is the first decision");

        let dead = FaultPlan::only(FaultKind::IpiDrop, 0.0);
        assert!(!dead.enabled());
        assert!(Site::ALL.iter().all(|&s| !dead.site_armed(s)));

        // A zero-rate or inverted window arms nothing either.
        assert!(!FaultPlan::windowed(FaultKind::CoreHog, 0.0, 0, 1_000).enabled());
        assert!(!FaultPlan::windowed(FaultKind::CoreHog, 0.5, 1_000, 1_000).enabled());
        assert!(FaultPlan::windowed(FaultKind::CoreHog, 0.5, 0, 1_000).enabled());
    }

    #[test]
    fn windows_fire_only_while_open() {
        let plan = FaultPlan::windowed(FaultKind::SignalLost, 1.0, 1_000, 2_000);
        let mut inj = FaultInjector::new(plan, 17);
        assert_eq!(inj.signal_at(999), None);
        assert_eq!(inj.signal_at(1_000), Some(SignalFault::Lost));
        assert_eq!(inj.signal_at(1_999), Some(SignalFault::Lost));
        assert_eq!(inj.signal_at(2_000), None, "until_ns is exclusive");
        // Other sites are untouched by the window.
        assert_eq!(inj.ipi_at(1_500), None);
    }

    #[test]
    fn windowless_plans_sample_identically_through_the_timed_api() {
        // The timed decision path must be a strict extension: with no
        // windows, `*_at(now)` consumes the RNG exactly like the
        // original untimed methods, whatever `now` is.
        let plan = {
            let mut p = FaultPlan::only(FaultKind::IpiDrop, 0.3);
            p.signal_lost = 0.4;
            p
        };
        let mut a = FaultInjector::new(plan.clone(), 23);
        let mut b = FaultInjector::new(plan, 23);
        for i in 0..200u64 {
            assert_eq!(a.ipi(), b.ipi_at(i * 1_000));
            assert_eq!(a.signal(), b.signal_at(i * 7_777));
        }
    }

    #[test]
    fn occurrence_export_is_fixed_order() {
        let mut plan = FaultPlan::only(FaultKind::IpiDrop, 1.0);
        plan.core_hog = 1.0;
        let mut inj = FaultInjector::new(plan, 4);
        for _ in 0..3 {
            inj.ipi();
        }
        inj.core();
        inj.timer();
        let sites = inj.site_decisions();
        assert_eq!(sites[0], ("ipi", 3));
        assert_eq!(sites[1], ("timer", 1));
        assert_eq!(sites[2], ("signal", 0));
        assert_eq!(sites[3], ("core", 1));
        let injected = inj.injected_counts();
        assert_eq!(injected[0], ("ipi_drop", 3));
        assert_eq!(injected[10], ("core_hog", 1));
        // The JSON export iterates the frozen arrays, so its bytes are
        // a pure function of the counts — never map order.
        let json = inj.occurrences_json();
        assert!(json.starts_with(
            "{\"sites\":{\"ipi\":3,\"timer\":1,\"signal\":0,\"core\":1},\"injected\":{\"ipi_drop\":3,"
        ));
        assert!(json.ends_with("\"core_hog\":1}}"));
    }

    #[test]
    fn decision_kinds_match_their_site() {
        let mut plan = FaultPlan::default();
        for k in FaultKind::ALL {
            *plan.rate_mut(k) = 1.0 / 8.0;
        }
        let mut inj = FaultInjector::new(plan, 5);
        for _ in 0..200 {
            if let Some(f) = inj.ipi() {
                assert_eq!(f.kind().site(), Site::Ipi);
            }
            if let Some(f) = inj.timer() {
                assert_eq!(f.kind().site(), Site::Timer);
            }
            if let Some(f) = inj.signal() {
                assert_eq!(f.kind().site(), Site::Signal);
            }
            if let Some(f) = inj.core() {
                assert_eq!(f.kind().site(), Site::Core);
            }
        }
    }
}
