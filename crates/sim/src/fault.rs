//! Deterministic fault injection for the mechanism stack.
//!
//! A [`FaultPlan`] declares *what* can go wrong (per-site probabilities
//! plus an exact occurrence schedule); a [`FaultInjector`] decides
//! *when*, drawing every decision from a dedicated
//! [`rng`](crate::rng) substream ([`streams::FAULTS`]) of the
//! experiment master seed — so faulty runs are byte-reproducible and a
//! disabled plan is a true no-op (no RNG draws, no state).
//!
//! The injector is consulted at four sites, one decision method each:
//!
//! * [`ipi`](FaultInjector::ipi) — before every `SENDUIPI`
//!   (drop / delay / duplicate / stuck `SN` / stale `NDST`);
//! * [`timer`](FaultInjector::timer) — at every kernel-timer arming
//!   (missed expiry / jitter spike / spurious fire);
//! * [`signal`](FaultInjector::signal) — before every kernel signal
//!   (lost delivery / runqueue-lock contention burst);
//! * [`core`](FaultInjector::core) — at every task launch
//!   (core stall/hog window that masks preemption delivery).
//!
//! The taxonomy, the recovery protocol each fault exercises, and the
//! watchdog parameters are documented in `docs/FAULTS.md`.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::rng::{rng, streams};
use crate::time::SimDur;

/// Every injectable fault, as a flat label.
///
/// The `u8` representation is the wire value of the `kind` field in
/// `fault_injected` events (see `docs/TRACING.md`), so the discriminants
/// are frozen: new kinds append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FaultKind {
    /// `SENDUIPI` silently dropped by the fabric; no UPID state changes.
    IpiDrop = 0,
    /// `SENDUIPI` delivery delayed by the plan's `ipi_delay_ns`.
    IpiDelay = 1,
    /// `SENDUIPI` issued twice; the second send must coalesce.
    IpiDuplicate = 2,
    /// The receiver's `SN` suppress bit is stuck set when the send
    /// arrives; notification suppressed until a repair clears it.
    StuckSn = 3,
    /// The UPID's `NDST` destination is stale: the vector posts but the
    /// notification is misdirected and never lands.
    StaleNdst = 4,
    /// The kernel timer never fires for this arming.
    TimerMiss = 5,
    /// The kernel timer fires late by the plan's `timer_spike_ns`.
    TimerSpike = 6,
    /// The kernel timer fires one extra, spurious time.
    TimerSpurious = 7,
    /// The kernel signal is lost before the handler runs.
    SignalLost = 8,
    /// A runqueue-lock contention burst: delivery sees the plan's
    /// `contention_waiters` extra waiters ahead of it.
    SignalContention = 9,
    /// The core hogs (stalls) for the plan's `core_hog_ns`, masking
    /// preemption delivery for the window.
    CoreHog = 10,
}

impl FaultKind {
    /// All kinds, in wire order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::IpiDrop,
        FaultKind::IpiDelay,
        FaultKind::IpiDuplicate,
        FaultKind::StuckSn,
        FaultKind::StaleNdst,
        FaultKind::TimerMiss,
        FaultKind::TimerSpike,
        FaultKind::TimerSpurious,
        FaultKind::SignalLost,
        FaultKind::SignalContention,
        FaultKind::CoreHog,
    ];

    /// Stable snake_case label (used in reports and docs).
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::IpiDrop => "ipi_drop",
            FaultKind::IpiDelay => "ipi_delay",
            FaultKind::IpiDuplicate => "ipi_duplicate",
            FaultKind::StuckSn => "stuck_sn",
            FaultKind::StaleNdst => "stale_ndst",
            FaultKind::TimerMiss => "timer_miss",
            FaultKind::TimerSpike => "timer_spike",
            FaultKind::TimerSpurious => "timer_spurious",
            FaultKind::SignalLost => "signal_lost",
            FaultKind::SignalContention => "signal_contention",
            FaultKind::CoreHog => "core_hog",
        }
    }

    /// The injection site this kind belongs to.
    pub const fn site(self) -> Site {
        match self {
            FaultKind::IpiDrop
            | FaultKind::IpiDelay
            | FaultKind::IpiDuplicate
            | FaultKind::StuckSn
            | FaultKind::StaleNdst => Site::Ipi,
            FaultKind::TimerMiss | FaultKind::TimerSpike | FaultKind::TimerSpurious => Site::Timer,
            FaultKind::SignalLost | FaultKind::SignalContention => Site::Signal,
            FaultKind::CoreHog => Site::Core,
        }
    }

    /// Inverse of the `u8` wire value; `None` for unknown codes.
    pub fn from_u8(v: u8) -> Option<FaultKind> {
        FaultKind::ALL.get(v as usize).copied()
    }
}

/// One of the four injection sites the runtime consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// `UintrDomain::senduipi` (one decision per send attempt).
    Ipi,
    /// `KernelTimer` arming (one decision per armed expiry).
    Timer,
    /// `SignalPath` delivery (one decision per signal send).
    Signal,
    /// Worker-core task launch (one decision per started slice).
    Core,
}

/// An exact, deterministic injection: fire `kind` at the site's
/// `occurrence`-th decision (0-based).
///
/// Schedule entries take precedence over the probabilistic rates, so a
/// test can say "drop exactly the third IPI" without touching any rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// What to inject.
    pub kind: FaultKind,
    /// Which decision at the kind's site (0-based occurrence index).
    pub occurrence: u64,
}

/// Declares which faults a run may see, and how hard.
///
/// All rates are per-decision probabilities in `[0, 1]`; magnitudes are
/// shared per site. The default plan is fully disabled: every rate is
/// `0.0` and the schedule is empty, and [`FaultPlan::enabled`] is
/// `false` — components must not even consult the injector then, so a
/// healthy run is byte-identical to one built before faults existed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// P(drop) per `SENDUIPI`.
    pub ipi_drop: f64,
    /// P(delayed delivery) per `SENDUIPI`.
    pub ipi_delay: f64,
    /// P(duplicated send) per `SENDUIPI`.
    pub ipi_duplicate: f64,
    /// P(stuck `SN` suppress bit) per `SENDUIPI`.
    pub ipi_stuck_sn: f64,
    /// P(stale `NDST` misdirection) per `SENDUIPI`.
    pub ipi_stale_ndst: f64,
    /// P(missed expiry) per kernel-timer arming.
    pub timer_miss: f64,
    /// P(jitter spike) per kernel-timer arming.
    pub timer_spike: f64,
    /// P(spurious extra fire) per kernel-timer arming.
    pub timer_spurious: f64,
    /// P(lost signal) per kernel-signal delivery.
    pub signal_lost: f64,
    /// P(contention burst) per kernel-signal delivery.
    pub signal_contention: f64,
    /// P(hog window) per started task slice.
    pub core_hog: f64,
    /// Extra delivery latency of an [`FaultKind::IpiDelay`].
    pub ipi_delay_ns: u64,
    /// Extra expiry latency of a [`FaultKind::TimerSpike`].
    pub timer_spike_ns: u64,
    /// Length of a [`FaultKind::CoreHog`] stall window.
    pub core_hog_ns: u64,
    /// Extra waiters a [`FaultKind::SignalContention`] burst simulates.
    pub contention_waiters: u32,
    /// Exact occurrence-indexed injections (checked before the rates).
    pub schedule: Vec<ScheduledFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            ipi_drop: 0.0,
            ipi_delay: 0.0,
            ipi_duplicate: 0.0,
            ipi_stuck_sn: 0.0,
            ipi_stale_ndst: 0.0,
            timer_miss: 0.0,
            timer_spike: 0.0,
            timer_spurious: 0.0,
            signal_lost: 0.0,
            signal_contention: 0.0,
            core_hog: 0.0,
            ipi_delay_ns: 5_000,
            timer_spike_ns: 50_000,
            core_hog_ns: 200_000,
            contention_waiters: 8,
            schedule: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The fully healthy plan (all rates zero, empty schedule).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting only `kind`, probabilistically at `rate`.
    pub fn only(kind: FaultKind, rate: f64) -> Self {
        let mut p = FaultPlan::default();
        *p.rate_mut(kind) = rate;
        p
    }

    /// A plan injecting only `kind`, exactly once, at the site's
    /// `occurrence`-th decision.
    pub fn once(kind: FaultKind, occurrence: u64) -> Self {
        let mut p = FaultPlan::default();
        p.schedule.push(ScheduledFault { kind, occurrence });
        p
    }

    /// Whether this plan can inject anything at all. Disabled plans must
    /// never reach a [`FaultInjector`] decision (callers gate on this),
    /// which is what keeps healthy runs byte-identical.
    pub fn enabled(&self) -> bool {
        !self.schedule.is_empty()
            || FaultKind::ALL.iter().any(|&k| self.rate(k) > 0.0)
    }

    /// The probabilistic rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::IpiDrop => self.ipi_drop,
            FaultKind::IpiDelay => self.ipi_delay,
            FaultKind::IpiDuplicate => self.ipi_duplicate,
            FaultKind::StuckSn => self.ipi_stuck_sn,
            FaultKind::StaleNdst => self.ipi_stale_ndst,
            FaultKind::TimerMiss => self.timer_miss,
            FaultKind::TimerSpike => self.timer_spike,
            FaultKind::TimerSpurious => self.timer_spurious,
            FaultKind::SignalLost => self.signal_lost,
            FaultKind::SignalContention => self.signal_contention,
            FaultKind::CoreHog => self.core_hog,
        }
    }

    fn rate_mut(&mut self, kind: FaultKind) -> &mut f64 {
        match kind {
            FaultKind::IpiDrop => &mut self.ipi_drop,
            FaultKind::IpiDelay => &mut self.ipi_delay,
            FaultKind::IpiDuplicate => &mut self.ipi_duplicate,
            FaultKind::StuckSn => &mut self.ipi_stuck_sn,
            FaultKind::StaleNdst => &mut self.ipi_stale_ndst,
            FaultKind::TimerMiss => &mut self.timer_miss,
            FaultKind::TimerSpike => &mut self.timer_spike,
            FaultKind::TimerSpurious => &mut self.timer_spurious,
            FaultKind::SignalLost => &mut self.signal_lost,
            FaultKind::SignalContention => &mut self.signal_contention,
            FaultKind::CoreHog => &mut self.core_hog,
        }
    }

    fn site_kinds(site: Site) -> &'static [FaultKind] {
        match site {
            Site::Ipi => &[
                FaultKind::IpiDrop,
                FaultKind::IpiDelay,
                FaultKind::IpiDuplicate,
                FaultKind::StuckSn,
                FaultKind::StaleNdst,
            ],
            Site::Timer => {
                &[FaultKind::TimerMiss, FaultKind::TimerSpike, FaultKind::TimerSpurious]
            }
            Site::Signal => &[FaultKind::SignalLost, FaultKind::SignalContention],
            Site::Core => &[FaultKind::CoreHog],
        }
    }
}

/// The decision at an IPI send site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiFault {
    /// Do not deliver; no UPID state changes.
    Drop,
    /// Deliver, but this much later.
    Delay(SimDur),
    /// Send twice back-to-back.
    Duplicate,
    /// Force the receiver's `SN` bit set before the send.
    StuckSn,
    /// Post the vector but misdirect the notification.
    StaleNdst,
}

impl IpiFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            IpiFault::Drop => FaultKind::IpiDrop,
            IpiFault::Delay(_) => FaultKind::IpiDelay,
            IpiFault::Duplicate => FaultKind::IpiDuplicate,
            IpiFault::StuckSn => FaultKind::StuckSn,
            IpiFault::StaleNdst => FaultKind::StaleNdst,
        }
    }
}

/// The decision at a kernel-timer arming site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerFault {
    /// The expiry never fires.
    Miss,
    /// The expiry fires this much later.
    JitterSpike(SimDur),
    /// One extra, spurious expiry fires too.
    Spurious,
}

impl TimerFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            TimerFault::Miss => FaultKind::TimerMiss,
            TimerFault::JitterSpike(_) => FaultKind::TimerSpike,
            TimerFault::Spurious => FaultKind::TimerSpurious,
        }
    }
}

/// The decision at a kernel-signal delivery site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalFault {
    /// The handler never runs.
    Lost,
    /// Delivery proceeds but sees this many extra lock waiters.
    ContentionBurst(u32),
}

impl SignalFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            SignalFault::Lost => FaultKind::SignalLost,
            SignalFault::ContentionBurst(_) => FaultKind::SignalContention,
        }
    }
}

/// The decision at a task-launch (core) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreFault {
    /// The core stalls for this window, masking preemption delivery.
    Hog(SimDur),
}

impl CoreFault {
    /// The flat label of this decision.
    pub const fn kind(self) -> FaultKind {
        match self {
            CoreFault::Hog(_) => FaultKind::CoreHog,
        }
    }
}

/// Samples a [`FaultPlan`] deterministically.
///
/// All randomness comes from the [`streams::FAULTS`] substream of the
/// master seed, so two runs with the same `(seed, plan)` inject the
/// same faults at the same decisions. Sites whose rates are all zero
/// (and have no schedule entry at the current occurrence) never draw
/// from the RNG at all, so a rate-0.0 plan samples identically to no
/// plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    ipi_n: u64,
    timer_n: u64,
    signal_n: u64,
    core_n: u64,
    /// Per-site sum of rates, precomputed so the per-decision hot path
    /// (consulted on every send in a faulty run) is a load and a
    /// compare instead of a match-dispatched re-sum.
    totals: [f64; 4],
    /// Per-site "the schedule mentions this site" flags; sites with no
    /// entry skip the occurrence bookkeeping entirely.
    scheduled: [bool; 4],
}

const fn site_index(site: Site) -> usize {
    match site {
        Site::Ipi => 0,
        Site::Timer => 1,
        Site::Signal => 2,
        Site::Core => 3,
    }
}

impl FaultInjector {
    /// Builds an injector for `plan`, seeded from the experiment
    /// `master` seed via the frozen [`streams::FAULTS`] substream.
    pub fn new(plan: FaultPlan, master: u64) -> Self {
        let mut totals = [0.0f64; 4];
        let mut scheduled = [false; 4];
        for k in FaultKind::ALL {
            totals[site_index(k.site())] += plan.rate(k);
        }
        for s in &plan.schedule {
            scheduled[site_index(s.kind.site())] = true;
        }
        FaultInjector {
            plan,
            rng: rng(master, streams::FAULTS),
            ipi_n: 0,
            timer_n: 0,
            signal_n: 0,
            core_n: 0,
            totals,
            scheduled,
        }
    }

    /// The plan this injector samples.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next `SENDUIPI`.
    pub fn ipi(&mut self) -> Option<IpiFault> {
        let kind = self.decide(Site::Ipi)?;
        Some(match kind {
            FaultKind::IpiDrop => IpiFault::Drop,
            FaultKind::IpiDelay => IpiFault::Delay(SimDur::nanos(self.plan.ipi_delay_ns)),
            FaultKind::IpiDuplicate => IpiFault::Duplicate,
            FaultKind::StuckSn => IpiFault::StuckSn,
            FaultKind::StaleNdst => IpiFault::StaleNdst,
            _ => unreachable!("non-IPI kind decided at the IPI site"),
        })
    }

    /// Decide the fate of the next kernel-timer arming.
    pub fn timer(&mut self) -> Option<TimerFault> {
        let kind = self.decide(Site::Timer)?;
        Some(match kind {
            FaultKind::TimerMiss => TimerFault::Miss,
            FaultKind::TimerSpike => {
                TimerFault::JitterSpike(SimDur::nanos(self.plan.timer_spike_ns))
            }
            FaultKind::TimerSpurious => TimerFault::Spurious,
            _ => unreachable!("non-timer kind decided at the timer site"),
        })
    }

    /// Decide the fate of the next kernel-signal delivery.
    pub fn signal(&mut self) -> Option<SignalFault> {
        let kind = self.decide(Site::Signal)?;
        Some(match kind {
            FaultKind::SignalLost => SignalFault::Lost,
            FaultKind::SignalContention => {
                SignalFault::ContentionBurst(self.plan.contention_waiters)
            }
            _ => unreachable!("non-signal kind decided at the signal site"),
        })
    }

    /// Decide the fate of the next task launch on a worker core.
    pub fn core(&mut self) -> Option<CoreFault> {
        let kind = self.decide(Site::Core)?;
        Some(match kind {
            FaultKind::CoreHog => CoreFault::Hog(SimDur::nanos(self.plan.core_hog_ns)),
            _ => unreachable!("non-core kind decided at the core site"),
        })
    }

    /// One decision at `site`: schedule entries first (exact occurrence
    /// match wins, earliest-declared entry breaks ties), then one
    /// uniform draw partitioned by the site's cumulative rates — a
    /// single draw per decision keeps the stream consumption pattern
    /// independent of which kinds are enabled.
    fn decide(&mut self, site: Site) -> Option<FaultKind> {
        let idx = site_index(site);
        // Occurrence bookkeeping only exists to match schedule entries;
        // a site the schedule never mentions skips it.
        if self.scheduled[idx] {
            let counter = match site {
                Site::Ipi => &mut self.ipi_n,
                Site::Timer => &mut self.timer_n,
                Site::Signal => &mut self.signal_n,
                Site::Core => &mut self.core_n,
            };
            let n = *counter;
            *counter += 1;
            if let Some(s) = self
                .plan
                .schedule
                .iter()
                .find(|s| s.kind.site() == site && s.occurrence == n)
            {
                return Some(s.kind);
            }
        }
        if self.totals[idx] <= 0.0 {
            return None; // no draw: rate-0 sites are true no-ops
        }
        let kinds = FaultPlan::site_kinds(site);
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        for &k in kinds {
            acc += self.plan.rate(k);
            if x < acc {
                return Some(k);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for (i, &k) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(k as u8, i as u8, "{k:?} code drifted");
            assert_eq!(FaultKind::from_u8(i as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(FaultKind::from_u8(200), None);
        let mut names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len(), "duplicate kind names");
    }

    #[test]
    fn default_plan_is_disabled() {
        let p = FaultPlan::default();
        assert!(!p.enabled());
        assert_eq!(p, FaultPlan::disabled());
        assert!(FaultPlan::only(FaultKind::IpiDrop, 0.5).enabled());
        assert!(FaultPlan::once(FaultKind::TimerMiss, 3).enabled());
        assert!(!FaultPlan::only(FaultKind::IpiDrop, 0.0).enabled());
    }

    #[test]
    fn disabled_plan_never_injects() {
        let mut inj = FaultInjector::new(FaultPlan::disabled(), 42);
        for _ in 0..100 {
            assert_eq!(inj.ipi(), None);
            assert_eq!(inj.timer(), None);
            assert_eq!(inj.signal(), None);
            assert_eq!(inj.core(), None);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let plan = {
            let mut p = FaultPlan::only(FaultKind::IpiDrop, 0.3);
            p.timer_miss = 0.2;
            p.signal_lost = 0.1;
            p.core_hog = 0.25;
            p
        };
        let mut a = FaultInjector::new(plan.clone(), 7);
        let mut b = FaultInjector::new(plan, 7);
        for _ in 0..200 {
            assert_eq!(a.ipi(), b.ipi());
            assert_eq!(a.timer(), b.timer());
            assert_eq!(a.signal(), b.signal());
            assert_eq!(a.core(), b.core());
        }
    }

    #[test]
    fn schedule_fires_exactly_once_at_its_occurrence() {
        let mut inj = FaultInjector::new(FaultPlan::once(FaultKind::StuckSn, 2), 1);
        assert_eq!(inj.ipi(), None);
        assert_eq!(inj.ipi(), None);
        assert_eq!(inj.ipi(), Some(IpiFault::StuckSn));
        for _ in 0..32 {
            assert_eq!(inj.ipi(), None);
        }
        // Scheduling at the IPI site does not disturb the others.
        let mut inj = FaultInjector::new(FaultPlan::once(FaultKind::IpiDrop, 0), 1);
        assert_eq!(inj.timer(), None);
        assert_eq!(inj.signal(), None);
        assert_eq!(inj.ipi(), Some(IpiFault::Drop));
    }

    #[test]
    fn rate_one_always_fires_and_carries_magnitudes() {
        let mut plan = FaultPlan::only(FaultKind::IpiDelay, 1.0);
        plan.ipi_delay_ns = 777;
        plan.timer_spike = 1.0;
        plan.timer_spike_ns = 888;
        plan.signal_contention = 1.0;
        plan.contention_waiters = 9;
        plan.core_hog = 1.0;
        plan.core_hog_ns = 999;
        let mut inj = FaultInjector::new(plan, 3);
        assert_eq!(inj.ipi(), Some(IpiFault::Delay(SimDur::nanos(777))));
        assert_eq!(inj.timer(), Some(TimerFault::JitterSpike(SimDur::nanos(888))));
        assert_eq!(inj.signal(), Some(SignalFault::ContentionBurst(9)));
        assert_eq!(inj.core(), Some(CoreFault::Hog(SimDur::nanos(999))));
    }

    #[test]
    fn probabilistic_rate_hits_near_expectation() {
        let mut inj = FaultInjector::new(FaultPlan::only(FaultKind::SignalLost, 0.5), 11);
        let hits = (0..2_000).filter(|_| inj.signal().is_some()).count();
        assert!((800..1_200).contains(&hits), "{hits} hits at rate 0.5");
    }

    #[test]
    fn decision_kinds_match_their_site() {
        let mut plan = FaultPlan::default();
        for k in FaultKind::ALL {
            *plan.rate_mut(k) = 1.0 / 8.0;
        }
        let mut inj = FaultInjector::new(plan, 5);
        for _ in 0..200 {
            if let Some(f) = inj.ipi() {
                assert_eq!(f.kind().site(), Site::Ipi);
            }
            if let Some(f) = inj.timer() {
                assert_eq!(f.kind().site(), Site::Timer);
            }
            if let Some(f) = inj.signal() {
                assert_eq!(f.kind().site(), Site::Signal);
            }
            if let Some(f) = inj.core() {
                assert_eq!(f.kind().site(), Site::Core);
            }
        }
    }
}
