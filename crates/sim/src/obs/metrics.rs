//! The always-on counter/gauge registry.
//!
//! Counters are a fixed `u64` array indexed by [`Counter`]; bumping one
//! is an array add, so they stay enabled even when the event ring is
//! off. [`Metrics::account`] is the single source of truth for how an
//! [`Event`] maps onto counters — the event stream and the counters can
//! never disagree.

use super::event::Event;

/// Monotonic counters. Most count events; the `Core*Ns` family
/// accumulates nanoseconds charged to each core time class (the
/// metrics-side view of `lp-hw`'s `CoreClock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names are the documentation; see docs/TRACING.md
pub enum Counter {
    UipiSent,
    UipiDelivered,
    UipiCoalesced,
    UipiPended,
    UipiSuppressed,
    KernelAssistWakes,
    SignalsSent,
    KtimersArmed,
    KtimersFired,
    IpcSamples,
    DeadlinesArmed,
    DeadlinesDisarmed,
    TimerPolls,
    DeadlinesFired,
    Arrivals,
    Drops,
    TaskStarts,
    TaskResumes,
    TaskFinishes,
    Preemptions,
    SpuriousPreemptions,
    QuantumAdjustments,
    Markers,
    CoreWorkNs,
    CorePreemptionNs,
    CoreDispatchNs,
    CoreTimerPollNs,
    CoreKernelNs,
    FaultsInjected,
    PreemptRetries,
    MechDegradations,
    MechRecoveries,
    PolicyDispatches,
    SlicesGranted,
    PreemptsIssued,
    PreemptsLanded,
    MechBrownouts,
    Sheds,
    Admissions,
    FiberSwitches,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 40] = [
        Counter::UipiSent,
        Counter::UipiDelivered,
        Counter::UipiCoalesced,
        Counter::UipiPended,
        Counter::UipiSuppressed,
        Counter::KernelAssistWakes,
        Counter::SignalsSent,
        Counter::KtimersArmed,
        Counter::KtimersFired,
        Counter::IpcSamples,
        Counter::DeadlinesArmed,
        Counter::DeadlinesDisarmed,
        Counter::TimerPolls,
        Counter::DeadlinesFired,
        Counter::Arrivals,
        Counter::Drops,
        Counter::TaskStarts,
        Counter::TaskResumes,
        Counter::TaskFinishes,
        Counter::Preemptions,
        Counter::SpuriousPreemptions,
        Counter::QuantumAdjustments,
        Counter::Markers,
        Counter::CoreWorkNs,
        Counter::CorePreemptionNs,
        Counter::CoreDispatchNs,
        Counter::CoreTimerPollNs,
        Counter::CoreKernelNs,
        Counter::FaultsInjected,
        Counter::PreemptRetries,
        Counter::MechDegradations,
        Counter::MechRecoveries,
        Counter::PolicyDispatches,
        Counter::SlicesGranted,
        // New counters append here: the snapshot JSONL key order is
        // pinned by tests (and downstream diffs) to the order above.
        Counter::PreemptsIssued,
        Counter::PreemptsLanded,
        Counter::MechBrownouts,
        Counter::Sheds,
        Counter::Admissions,
        Counter::FiberSwitches,
    ];

    /// Stable snake_case name (the JSONL/snapshot key).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::UipiSent => "uipi_sent",
            Counter::UipiDelivered => "uipi_delivered",
            Counter::UipiCoalesced => "uipi_coalesced",
            Counter::UipiPended => "uipi_pended",
            Counter::UipiSuppressed => "uipi_suppressed",
            Counter::KernelAssistWakes => "kernel_assist_wakes",
            Counter::SignalsSent => "signals_sent",
            Counter::KtimersArmed => "ktimers_armed",
            Counter::KtimersFired => "ktimers_fired",
            Counter::IpcSamples => "ipc_samples",
            Counter::DeadlinesArmed => "deadlines_armed",
            Counter::DeadlinesDisarmed => "deadlines_disarmed",
            Counter::TimerPolls => "timer_polls",
            Counter::DeadlinesFired => "deadlines_fired",
            Counter::Arrivals => "arrivals",
            Counter::Drops => "drops",
            Counter::TaskStarts => "task_starts",
            Counter::TaskResumes => "task_resumes",
            Counter::TaskFinishes => "task_finishes",
            Counter::Preemptions => "preemptions",
            Counter::SpuriousPreemptions => "spurious_preemptions",
            Counter::QuantumAdjustments => "quantum_adjustments",
            Counter::Markers => "markers",
            Counter::CoreWorkNs => "core_work_ns",
            Counter::CorePreemptionNs => "core_preemption_ns",
            Counter::CoreDispatchNs => "core_dispatch_ns",
            Counter::CoreTimerPollNs => "core_timer_poll_ns",
            Counter::CoreKernelNs => "core_kernel_ns",
            Counter::FaultsInjected => "faults_injected",
            Counter::PreemptRetries => "preempt_retries",
            Counter::MechDegradations => "mech_degradations",
            Counter::MechRecoveries => "mech_recoveries",
            Counter::PolicyDispatches => "policy_dispatches",
            Counter::SlicesGranted => "slices_granted",
            Counter::PreemptsIssued => "preempts_issued",
            Counter::PreemptsLanded => "preempts_landed",
            Counter::MechBrownouts => "mech_brownouts",
            Counter::Sheds => "sheds",
            Counter::Admissions => "admissions",
            Counter::FiberSwitches => "fiber_switches",
        }
    }
}

/// Point-in-time gauges (last-write-wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Current global time quantum, nanoseconds.
    QuantumNs,
    /// Timer-core package power draw, watts (§V-B).
    TimerPowerW,
}

impl Gauge {
    /// Every gauge, in snapshot order.
    pub const ALL: [Gauge; 2] = [Gauge::QuantumNs, Gauge::TimerPowerW];

    /// Stable snake_case name.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::QuantumNs => "quantum_ns",
            Gauge::TimerPowerW => "timer_power_w",
        }
    }
}

/// The registry itself: one `u64` per [`Counter`], one `f64` per
/// [`Gauge`]. Plain arrays — no allocation, ever.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counters: [0; Counter::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
        }
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `c` by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Adds `n` to `c` (saturating — a counter never wraps).
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        let slot = &mut self.counters[c as usize];
        *slot = slot.saturating_add(n);
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Sets gauge `g`.
    #[inline]
    pub fn set_gauge(&mut self, g: Gauge, v: f64) {
        self.gauges[g as usize] = v;
    }

    /// Current value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges[g as usize]
    }

    /// Applies an event's counter side effects. Called by
    /// [`Observer::emit`](super::Observer::emit) for every event, so
    /// counters stay consistent with the event stream by construction.
    #[inline]
    pub fn account(&mut self, ev: &Event) {
        match *ev {
            Event::UipiSent { .. } => self.bump(Counter::UipiSent),
            Event::UipiDelivered { coalesced, .. } => {
                self.bump(Counter::UipiDelivered);
                if coalesced {
                    self.bump(Counter::UipiCoalesced);
                }
            }
            Event::UipiPended { .. } => self.bump(Counter::UipiPended),
            Event::UipiSuppressed { .. } => self.bump(Counter::UipiSuppressed),
            Event::KernelAssistWake { .. } => self.bump(Counter::KernelAssistWakes),
            Event::SignalSent { .. } => self.bump(Counter::SignalsSent),
            Event::KtimerArmed { .. } => self.bump(Counter::KtimersArmed),
            Event::KtimerFired { .. } => self.bump(Counter::KtimersFired),
            Event::IpcSampled { .. } => self.bump(Counter::IpcSamples),
            Event::DeadlineArmed { .. } => self.bump(Counter::DeadlinesArmed),
            Event::DeadlineDisarmed { .. } => self.bump(Counter::DeadlinesDisarmed),
            Event::TimerPoll { expired } => {
                self.bump(Counter::TimerPolls);
                self.add(Counter::DeadlinesFired, expired as u64);
            }
            Event::Arrival { .. } => self.bump(Counter::Arrivals),
            Event::Drop { .. } => self.bump(Counter::Drops),
            Event::TaskStart { resumed, .. } => {
                self.bump(Counter::TaskStarts);
                if resumed {
                    self.bump(Counter::TaskResumes);
                }
            }
            Event::TaskFinish { .. } => self.bump(Counter::TaskFinishes),
            Event::Preempt { .. } => self.bump(Counter::Preemptions),
            Event::SpuriousPreempt { .. } => self.bump(Counter::SpuriousPreemptions),
            Event::PolicyDispatch { .. } => self.bump(Counter::PolicyDispatches),
            Event::SliceGranted { .. } => self.bump(Counter::SlicesGranted),
            Event::QuantumAdjusted { new_ns, .. } => {
                self.bump(Counter::QuantumAdjustments);
                self.set_gauge(Gauge::QuantumNs, new_ns as f64);
            }
            Event::Marker { .. } => self.bump(Counter::Markers),
            Event::FaultInjected { .. } => self.bump(Counter::FaultsInjected),
            Event::PreemptIssued { .. } => self.bump(Counter::PreemptsIssued),
            Event::PreemptLanded { .. } => self.bump(Counter::PreemptsLanded),
            Event::PreemptRetry { .. } => self.bump(Counter::PreemptRetries),
            Event::MechDegraded { .. } => self.bump(Counter::MechDegradations),
            Event::MechRecovered { .. } => self.bump(Counter::MechRecoveries),
            Event::MechBrownout { .. } => self.bump(Counter::MechBrownouts),
            Event::Shed { .. } => self.bump(Counter::Sheds),
            Event::Admitted { .. } => self.bump(Counter::Admissions),
            Event::SwitchBegin { .. } => self.bump(Counter::FiberSwitches),
        }
    }

    /// A frozen copy for reports.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).collect(),
            gauges: Gauge::ALL.iter().map(|&g| (g.name(), self.gauge(g))).collect(),
        }
    }
}

/// A frozen, by-name view of the registry, carried in run reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, f64)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 for unknown names, so reports from
    /// before a counter existed read naturally).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// One JSON object with all counters and gauges, keys in snapshot
    /// order (deterministic bytes).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{name}\":{v}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_add_get() {
        let mut m = Metrics::new();
        m.bump(Counter::Arrivals);
        m.bump(Counter::Arrivals);
        m.add(Counter::CoreWorkNs, 500);
        assert_eq!(m.get(Counter::Arrivals), 2);
        assert_eq!(m.get(Counter::CoreWorkNs), 500);
        assert_eq!(m.get(Counter::Drops), 0);
        m.add(Counter::CoreWorkNs, u64::MAX);
        assert_eq!(m.get(Counter::CoreWorkNs), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn account_maps_events_to_counters() {
        let mut m = Metrics::new();
        m.account(&Event::UipiDelivered { worker: 0, coalesced: true });
        m.account(&Event::UipiDelivered { worker: 0, coalesced: false });
        m.account(&Event::TimerPoll { expired: 3 });
        m.account(&Event::TaskStart { worker: 0, fiber: 1, resumed: true, switch_ns: 0 });
        m.account(&Event::TaskStart { worker: 0, fiber: 2, resumed: false, switch_ns: 0 });
        m.account(&Event::QuantumAdjusted { old_ns: 30_000, new_ns: 25_000 });
        assert_eq!(m.get(Counter::UipiDelivered), 2);
        assert_eq!(m.get(Counter::UipiCoalesced), 1);
        assert_eq!(m.get(Counter::TimerPolls), 1);
        assert_eq!(m.get(Counter::DeadlinesFired), 3);
        assert_eq!(m.get(Counter::TaskStarts), 2);
        assert_eq!(m.get(Counter::TaskResumes), 1);
        assert_eq!(m.get(Counter::QuantumAdjustments), 1);
        assert_eq!(m.gauge(Gauge::QuantumNs), 25_000.0);
    }

    #[test]
    fn snapshot_lookup_and_unknown_names() {
        let mut m = Metrics::new();
        m.bump(Counter::Preemptions);
        m.set_gauge(Gauge::TimerPowerW, 1.2);
        let s = m.snapshot();
        assert_eq!(s.counter("preemptions"), 1);
        assert_eq!(s.counter("not_a_counter"), 0);
        assert_eq!(s.gauge("timer_power_w"), Some(1.2));
        assert_eq!(s.gauge("nope"), None);
        assert_eq!(s.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn snapshot_jsonl_is_deterministic() {
        let mut m = Metrics::new();
        m.bump(Counter::Arrivals);
        let a = m.snapshot().to_jsonl();
        let b = m.snapshot().to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"counters\":{\"uipi_sent\":0"));
        assert!(a.contains("\"arrivals\":1"));
        assert!(a.ends_with("}}"));
    }
}
